//! Property test: conflict-graph parallel batch admission produces
//! **byte-identical** `BatchOutcome`s to the paper's sequential greedy
//! admission — across random cities, fleets, warm-up assignments and
//! bursts; across runtime pool sizes {1, 2, 4}; and on both distance
//! backends (`Alt` and `Ch`).
//!
//! The two engines of each comparison are constructed identically and
//! replay the same warm-up sequence, so they enter the burst in identical
//! vehicle/index states. Their oracle *cache histories* are allowed to
//! diverge inside the burst — the oracle's canonical-direction folds make
//! every answer a pure function of the pair (see the canonical-fold notes
//! in `ptrider_roadnet::oracle`), which is precisely what this test pins
//! down. The selector is stateful on purpose: admission must invoke it in
//! request order with bit-equal option slices for the call sequences to
//! line up.

use proptest::prelude::*;
use ptrider::datagen::{synthetic_city, CityConfig, TripConfig, TripGenerator};
use ptrider::{
    BatchAdmission, BatchOutcome, DistanceBackend, EngineConfig, GridConfig, MatcherKind, PtRider,
    VertexId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds one engine and replays the deterministic warm-up so both sides of
/// a comparison enter the burst in identical states.
fn build_engine(
    seed: u64,
    num_vehicles: usize,
    warm_requests: usize,
    config: EngineConfig,
    matcher: MatcherKind,
) -> PtRider {
    let city = synthetic_city(&CityConfig::tiny(seed));
    let mut engine = PtRider::new(city, GridConfig::with_dimensions(4, 4), config);
    engine.set_matcher(matcher);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xba7c4);
    let n = engine.network().num_vertices() as u32;
    for _ in 0..num_vehicles {
        engine.add_vehicle(VertexId(rng.gen_range(0..n)));
    }
    // Warm-up: assign some trips so a share of the fleet is non-empty (the
    // interesting case for conflict edges through schedule-dependent
    // pruning).
    let warm = TripGenerator::new(
        engine.network(),
        TripConfig {
            num_trips: warm_requests,
            seed: seed ^ 0x3a,
            ..TripConfig::default()
        },
    )
    .generate();
    for (i, trip) in warm.iter().enumerate() {
        let (id, options) = engine.submit(trip.origin, trip.destination, trip.riders, i as f64);
        if let Some(first) = options.first().cloned() {
            let _ = engine.choose(id, &first, i as f64);
        } else {
            let _ = engine.decline(id);
        }
    }
    engine
}

/// A deterministic, *stateful* selector: alternates between the earliest
/// and the cheapest end of the skyline and declines every fifth call.
fn make_selector() -> impl FnMut(&[ptrider::RideOption]) -> Option<usize> {
    let mut calls = 0usize;
    move |options| {
        calls += 1;
        if options.is_empty() || calls.is_multiple_of(5) {
            None
        } else if calls.is_multiple_of(2) {
            Some(options.len() - 1)
        } else {
            Some(0)
        }
    }
}

/// Bit-level equality of two outcome lists (ids, choices, and full option
/// skylines including schedules).
fn assert_outcomes_identical(
    seq: &[BatchOutcome],
    par: &[BatchOutcome],
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(seq.len(), par.len(), "outcome count ({})", label);
    for (i, (a, b)) in seq.iter().zip(par).enumerate() {
        prop_assert_eq!(a.request, b.request, "request id #{} ({})", i, label);
        prop_assert_eq!(a.chosen, b.chosen, "chosen #{} ({})", i, label);
        prop_assert_eq!(
            a.options.len(),
            b.options.len(),
            "option count #{} ({})",
            i,
            label
        );
        for (x, y) in a.options.iter().zip(&b.options) {
            prop_assert_eq!(x.vehicle, y.vehicle, "vehicle #{} ({})", i, label);
            prop_assert_eq!(
                x.pickup_dist.to_bits(),
                y.pickup_dist.to_bits(),
                "pickup bits #{} ({})",
                i,
                label
            );
            prop_assert_eq!(
                x.price.to_bits(),
                y.price.to_bits(),
                "price bits #{} ({})",
                i,
                label
            );
            prop_assert_eq!(&x.schedule, &y.schedule, "schedule #{} ({})", i, label);
        }
    }
    Ok(())
}

fn run_scenario(
    seed: u64,
    num_vehicles: usize,
    warm_requests: usize,
    burst_size: usize,
    backend: DistanceBackend,
) -> Result<(), TestCaseError> {
    let matcher = match seed % 3 {
        0 => MatcherKind::Naive,
        1 => MatcherKind::SingleSide,
        _ => MatcherKind::DualSide,
    };
    let base = EngineConfig::paper_defaults().with_distance_backend(backend);

    let burst: Vec<(VertexId, VertexId, u32)> = TripGenerator::new(
        &synthetic_city(&CityConfig::tiny(seed)),
        TripConfig {
            num_trips: burst_size,
            seed: seed ^ 0xb057,
            ..TripConfig::default()
        },
    )
    .generate()
    .iter()
    .map(|t| (t.origin, t.destination, t.riders))
    .collect();

    let mut reference = build_engine(
        seed,
        num_vehicles,
        warm_requests,
        base.with_batch_admission(BatchAdmission::Sequential)
            .with_pool_size(1),
        matcher,
    );
    let seq = reference.submit_batch_greedy(&burst, 1_000.0, make_selector());

    for pool_size in [1usize, 2, 4] {
        let mut engine = build_engine(
            seed,
            num_vehicles,
            warm_requests,
            base.with_batch_admission(BatchAdmission::ConflictGraph)
                .with_pool_size(pool_size),
            matcher,
        );
        let par = engine.submit_batch_greedy(&burst, 1_000.0, make_selector());
        let label = format!("{backend:?} pool {pool_size} matcher {matcher}");
        assert_outcomes_identical(&seq, &par, &label)?;

        // The committed world states agree too: every vehicle carries the
        // same requests over the same best schedule distance.
        for vehicle in reference.vehicles() {
            let twin = engine.vehicle(vehicle.id()).expect("same fleet");
            prop_assert_eq!(
                vehicle.num_requests(),
                twin.num_requests(),
                "vehicle {} load ({})",
                vehicle.id(),
                &label
            );
            prop_assert_eq!(
                vehicle.current_best_distance().to_bits(),
                twin.current_best_distance().to_bits(),
                "vehicle {} schedule length ({})",
                vehicle.id(),
                &label
            );
        }
        prop_assert_eq!(
            reference.stats().requests_chosen,
            engine.stats().requests_chosen
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn conflict_graph_admission_is_bit_identical_on_alt(
        seed in 0u64..1_000_000,
        num_vehicles in 1usize..20,
        warm_requests in 0usize..6,
        burst_size in 1usize..10,
    ) {
        run_scenario(seed, num_vehicles, warm_requests, burst_size, DistanceBackend::Alt)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn conflict_graph_admission_is_bit_identical_on_ch(
        seed in 0u64..1_000_000,
        num_vehicles in 1usize..16,
        warm_requests in 0usize..5,
        burst_size in 1usize..8,
    ) {
        run_scenario(seed, num_vehicles, warm_requests, burst_size, DistanceBackend::Ch)?;
    }
}

#[test]
fn conflict_graph_matches_sequential_on_a_dense_fixed_burst() {
    // Large enough that phase 1 spans several pool chunks, partitions
    // genuinely overlap, and re-matches occur.
    run_scenario(20090529, 48, 16, 32, DistanceBackend::Alt).unwrap();
    run_scenario(20090529, 32, 8, 24, DistanceBackend::Ch).unwrap();
}
