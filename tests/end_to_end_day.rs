//! End-to-end simulation test: a compressed "day" on a small synthetic city,
//! checking the global invariants the paper's constraints imply and that the
//! statistics panel numbers are consistent with each other.

use ptrider::datagen::{CityConfig, TripConfig, Workload, WorkloadConfig};
use ptrider::{
    ChoicePolicy, EngineConfig, GridConfig, MatcherKind, SimConfig, SimulationReport, Simulator,
};

fn run_day(matcher: MatcherKind, choice: ChoicePolicy, seed: u64) -> (Simulator, SimulationReport) {
    let workload = Workload::generate(WorkloadConfig {
        city: CityConfig::tiny(seed),
        num_vehicles: 15,
        trips: TripConfig {
            num_trips: 120,
            day_secs: 3600.0,
            seed,
            ..TripConfig::default()
        },
        seed,
    });
    let engine_config = EngineConfig::paper_defaults()
        .with_detour_factor(0.3)
        .with_max_wait_secs(420.0);
    let sim_config = SimConfig {
        dt_secs: 5.0,
        start_secs: 0.0,
        end_secs: 3600.0,
        choice,
        matcher,
        grid: GridConfig::with_dimensions(4, 4),
        idle_roaming: true,
        cross_check: false,
        burst_admission: false,
        traffic: None,
        seed,
    };
    let mut sim = Simulator::new(workload, engine_config, sim_config);
    let report = sim.run();
    (sim, report)
}

#[test]
fn simulated_hour_produces_consistent_statistics() {
    let (_sim, report) = run_day(
        MatcherKind::DualSide,
        ChoicePolicy::Weighted { alpha: 0.5 },
        31,
    );

    assert_eq!(report.requests, 120);
    assert!(report.answered <= report.requests);
    assert!(report.assigned <= report.answered);
    assert!(report.completed <= report.assigned);
    assert!(report.shared_trips <= report.completed);
    assert!(report.answer_rate >= 0.0 && report.answer_rate <= 1.0);
    assert!(report.sharing_rate >= 0.0 && report.sharing_rate <= 1.0);
    assert!(report.assigned > 0, "a one-hour workload must assign trips");
    assert!(report.completed > 0, "trips must complete within the hour");
    assert!(report.avg_response_ms >= 0.0);
    assert!(report.fleet_distance_m > 0.0);
    // Engine counters line up with the report.
    assert_eq!(report.engine.requests_submitted, report.requests);
    assert_eq!(report.engine.dropoffs, report.completed);
}

#[test]
fn service_and_waiting_constraints_hold_for_every_completed_trip() {
    let (sim, _report) = run_day(MatcherKind::SingleSide, ChoicePolicy::Cheapest, 47);
    let detour_cap = 1.0 + 0.3;
    let max_wait_secs = 420.0;

    for outcome in sim.outcomes().values() {
        // Service constraint (Definition 2, condition 4).
        if let Some(ratio) = outcome.detour_ratio() {
            assert!(
                ratio <= detour_cap + 1e-6,
                "request {:?}: detour ratio {ratio} exceeds 1 + delta",
                outcome.id
            );
        }
        // Waiting-time constraint (Definition 2, condition 3): the actual
        // pickup happens no later than the planned pickup plus w (allowing
        // one simulation step of slack for the discrete clock).
        if let (Some(planned), Some(picked)) = (outcome.planned_pickup_secs, outcome.picked_up_at) {
            let planned_abs = outcome.submitted_at + planned;
            assert!(
                picked <= planned_abs + max_wait_secs + 5.0 + 1e-6,
                "request {:?}: picked up at {picked} but planned {planned_abs} + w {max_wait_secs}",
                outcome.id
            );
        }
        // Prices are recorded for every assigned request and are positive.
        if let Some(price) = outcome.price {
            assert!(price > 0.0);
        }
    }
}

#[test]
fn cheapest_riders_pay_no_more_than_fastest_riders_on_average() {
    let (_s1, cheap) = run_day(MatcherKind::DualSide, ChoicePolicy::Cheapest, 77);
    let (_s2, fast) = run_day(MatcherKind::DualSide, ChoicePolicy::Fastest, 77);
    // Same workload, same matcher: riders who always pick the cheapest
    // option cannot end up with a higher average price than riders who
    // always pick the fastest one (prices per request are chosen from the
    // same skylines; small divergence can accumulate as assignments change
    // future states, so allow 10% slack).
    assert!(
        cheap.avg_price <= fast.avg_price * 1.10 + 1e-9,
        "cheapest policy {} vs fastest policy {}",
        cheap.avg_price,
        fast.avg_price
    );
}

#[test]
fn all_matchers_sustain_the_same_workload() {
    let mut completed = Vec::new();
    for matcher in MatcherKind::all() {
        let (_sim, report) = run_day(matcher, ChoicePolicy::Fastest, 55);
        assert!(report.assigned > 0, "{matcher} assigned no trips");
        completed.push(report.completed);
    }
    // All matchers produce identical option sets; with a deterministic choice
    // policy the whole simulation evolves identically.
    assert_eq!(completed[0], completed[1]);
    assert_eq!(completed[1], completed[2]);
}
