//! End-to-end telemetry: a spans-level service driven through the full
//! session lifecycle (with a journal and an event cursor attached) must
//! expose every subsystem in `metrics_text()` / `metrics_json()`, fill
//! the per-stage histograms and the trace ring — and the seqlock-mirrored
//! `stats()` snapshot must never tear under concurrent load.

use ptrider::datagen::{synthetic_city, CityConfig};
use ptrider::roadnet::{DistanceOracle, GridIndex};
use ptrider::{
    Decision, EngineConfig, GridConfig, Journal, JournalConfig, PtRider, RideService,
    ServiceConfig, TelemetryConfig, TelemetryLevel, VertexId,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ptrider-telemetry-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A service over the tiny city with an explicit telemetry level —
/// explicit so the test is immune to `PTRIDER_TELEMETRY` in the
/// environment (the CI matrix sets it).
fn service_with(level: TelemetryConfig) -> RideService {
    let net = Arc::new(synthetic_city(&CityConfig::tiny(7)));
    let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(4, 4)));
    let config = EngineConfig::paper_defaults();
    let oracle = DistanceOracle::with_backend(
        Arc::clone(&net),
        Arc::clone(&grid),
        None,
        config.distance_backend,
    );
    let engine = PtRider::with_oracle_and_telemetry(net, grid, oracle, config, level);
    RideService::from_engine(engine)
        .with_service_config(ServiceConfig::default().with_offer_ttl_secs(5.0))
}

/// Drives a few full sessions: submits, one choose, one decline, one
/// abandoned offer expired by `tick`.
fn drive(service: &RideService) {
    let n = service.network().num_vertices() as u32;
    for v in 0..4 {
        service.add_vehicle(VertexId(v * 7 % n));
    }
    let mut clock = 0.0;
    let mut offers = Vec::new();
    for i in 0..6u32 {
        clock += 1.0;
        let (o, d) = ((i * 13 + 5) % n, (i * 29 + 60) % n);
        if o == d {
            continue;
        }
        if let Ok(offer) = service.submit(VertexId(o), VertexId(d), 1, clock) {
            offers.push(offer);
        }
    }
    if let Some(offer) = offers.first() {
        if let Some((id, _)) = offer.iter_ids().next() {
            let _ = service.respond(offer.session, Decision::Choose(id), clock);
        }
    }
    if let Some(offer) = offers.get(1) {
        let _ = service.respond(offer.session, Decision::Decline, clock);
    }
    let _ = service.tick(clock + 100.0);
}

#[test]
fn metrics_text_covers_every_subsystem() {
    let dir = temp_dir();
    let journal = Journal::create(&dir, JournalConfig::default()).expect("temp dir is writable");
    let service = service_with(TelemetryConfig::spans()).with_journal(journal);
    let mut cursor = service.subscribe();
    drive(&service);
    let _ = service.poll_events(&mut cursor);

    let text = service.metrics_text();
    // One representative metric per subsystem.
    for needle in [
        "ptrider_service_requests_submitted_total", // service
        "ptrider_service_open_offers",
        "ptrider_match_vehicles_verified_total",   // matcher
        "ptrider_oracle_exact_computations_total", // oracle
        "ptrider_oracle_backend_fallback{",
        "ptrider_pool_queue_depth",                   // worker pool
        "ptrider_journal_fsync_failed 0",             // journal, healthy
        "ptrider_events_published_total",             // event log
        "ptrider_events_cursor_missed_total{cursor=", // per-cursor lag
        "ptrider_telemetry_uptime_seconds",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // Spans level: per-stage histograms for the driven stages.
    for stage in ["service_submit", "service_respond", "service_tick"] {
        let name = format!("ptrider_stage_{stage}_seconds_count");
        assert!(text.contains(&name), "missing {name} in:\n{text}");
    }
    assert!(
        text.contains("ptrider_stage_journal_append_seconds_count"),
        "journal append stage missing:\n{text}"
    );

    // The trace ring captured the driven spans.
    let events = service.telemetry().trace_dump();
    assert!(!events.is_empty(), "trace ring is empty at spans level");
    assert!(events.iter().any(|e| e.request != 0));

    let json = service.metrics_json();
    for key in [
        "\"service\"",
        "\"oracle\"",
        "\"pool\"",
        "\"journal\"",
        "\"events\"",
        "\"stages\"",
        "\"telemetry\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    assert!(json.contains("\"fsync_failed\":false"));
    // Crude structural validity: balanced braces outside strings (the
    // exposition never emits braces inside string values).
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced JSON:\n{json}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_off_is_inert_but_stats_metrics_remain() {
    let service = service_with(TelemetryConfig::off());
    drive(&service);
    assert_eq!(service.telemetry().level(), TelemetryLevel::Off);

    let text = service.metrics_text();
    // Engine statistics are ledger-derived and always exposed...
    assert!(text.contains("ptrider_service_requests_submitted_total"));
    // ...but no stage histograms and no trace events exist.
    assert!(!text.contains("ptrider_stage_"));
    assert!(service.telemetry().trace_dump().is_empty());
    assert_eq!(
        service
            .telemetry()
            .stage_snapshot(ptrider::Stage::ServiceSubmit)
            .count(),
        0
    );

    let json = service.metrics_json();
    assert!(json.contains("\"journal\":null"));
    assert!(json.contains("\"level\":\"off\""));
}

/// Regression test for stats-snapshot tearing: `stats()` used to read the
/// ledger fields without the mutex, so a reader racing a submit could see
/// `offers_made` ahead of `requests_submitted`. The seqlock mirror makes
/// every read a consistent point-in-time copy; these cross-field
/// invariants each hold inside any single ledger critical section, so a
/// violation can only come from a torn read.
#[test]
fn stats_snapshot_never_tears_under_load() {
    let service = Arc::new(service_with(TelemetryConfig::counters()));
    let n = service.network().num_vertices() as u32;
    for v in 0..6 {
        service.add_vehicle(VertexId(v * 11 % n));
    }
    std::thread::scope(|scope| {
        for t in 0..2u32 {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                for i in 0..150u32 {
                    let (o, d) = ((i * 13 + t * 3 + 5) % n, (i * 29 + 60) % n);
                    if o == d {
                        continue;
                    }
                    if let Ok(offer) = service.submit(VertexId(o), VertexId(d), 1, f64::from(i)) {
                        let _ = service.respond(offer.session, Decision::Decline, f64::from(i));
                    }
                }
            });
        }
        let service = Arc::clone(&service);
        scope.spawn(move || {
            let mut last_submitted = 0u64;
            for _ in 0..2_000 {
                let s = service.stats();
                assert!(
                    s.offers_made <= s.requests_submitted,
                    "torn snapshot: offers_made {} > requests_submitted {}",
                    s.offers_made,
                    s.requests_submitted
                );
                assert!(s.requests_with_options <= s.requests_submitted);
                assert!(
                    s.offers_confirmed + s.offers_declined + s.offers_expired <= s.offers_made,
                    "torn snapshot: more offers resolved than made"
                );
                assert!(
                    s.requests_submitted >= last_submitted,
                    "snapshot went backwards"
                );
                last_submitted = s.requests_submitted;
            }
        });
    });
}
