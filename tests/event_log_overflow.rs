//! Regression coverage for `EventLog` overflow accounting: a slow
//! observer's `EventCursor::missed` must count **exactly** the events the
//! bounded log dropped on it — no more, no less — and observers that keep
//! up, or subscribe late, miss nothing.
//!
//! The log is driven through the public `RideService` surface (the only
//! publisher), with a tiny retention capacity so a handful of session
//! lifecycles overflows it deterministically: every submit/decline cycle
//! publishes exactly three events (`Submitted`, `Offered`, `Declined`).

use ptrider::datagen::{synthetic_city, CityConfig};
use ptrider::{
    Decision, EngineConfig, EngineEvent, GridConfig, RideService, ServiceConfig, VertexId,
};

const CAPACITY: usize = 4;

fn tiny_service() -> RideService {
    let city = synthetic_city(&CityConfig::tiny(3));
    let service = RideService::new(
        city,
        GridConfig::with_dimensions(4, 4),
        EngineConfig::paper_defaults(),
    )
    .with_service_config(
        ServiceConfig::default()
            .with_offer_ttl_secs(1e9)
            .with_event_capacity(CAPACITY),
    );
    service.add_vehicle(VertexId(0));
    service
}

/// One submit + decline = exactly three published events.
fn run_cycle(service: &RideService, k: u64) {
    let offer = service
        .submit(VertexId(10), VertexId(60), 1, k as f64)
        .expect("probe request is valid");
    service
        .respond(offer.session, Decision::Decline, k as f64)
        .expect("open offer accepts a decline");
}

#[test]
fn slow_cursor_missed_counts_exactly_the_dropped_events() {
    let service = tiny_service();
    // Subscribe *before* the flood: this cursor is owed every event.
    let mut slow = service.subscribe();
    let drained = service.poll_events(&mut slow);
    assert_eq!(drained.len(), 1, "only the VehicleAdded event so far");

    let cycles = 7u64;
    for k in 0..cycles {
        run_cycle(&service, k);
    }
    let published = service.events_published();
    assert_eq!(published, 1 + 3 * cycles, "3 events per cycle");

    // The bounded log retains only the last CAPACITY events; everything
    // older was dropped on this cursor, and `missed` must equal that count
    // exactly: published - already_seen - retained.
    let events = service.poll_events(&mut slow);
    assert_eq!(events.len(), CAPACITY);
    assert_eq!(slow.missed(), published - 1 - CAPACITY as u64);
    // The delivered tail is the newest suffix, in publish order: the last
    // cycle's Offered + Declined preceded by the one before.
    assert!(matches!(events.last(), Some(EngineEvent::Declined { .. })));
    assert!(matches!(
        events[events.len() - 2],
        EngineEvent::Offered { .. }
    ));

    // Once caught up, a further in-capacity burst loses nothing more.
    run_cycle(&service, cycles);
    let events = service.poll_events(&mut slow);
    assert_eq!(events.len(), 3);
    assert_eq!(
        slow.missed(),
        published - 1 - CAPACITY as u64,
        "no new loss"
    );
}

#[test]
fn keeping_up_and_late_subscribers_miss_nothing() {
    let service = tiny_service();
    let mut keeper = service.subscribe();
    let mut seen = 0usize;
    for k in 0..6u64 {
        run_cycle(&service, k);
        // Polling every cycle stays within the retention window.
        seen += service.poll_events(&mut keeper).len();
        assert_eq!(keeper.missed(), 0, "a keeping-up cursor never misses");
    }
    assert_eq!(seen as u64, service.events_published());

    // A late subscriber starts at the oldest *retained* event and is owed
    // nothing older.
    let mut late = service.subscribe();
    let events = service.poll_events(&mut late);
    assert_eq!(events.len(), CAPACITY);
    assert_eq!(late.missed(), 0);
}

#[test]
fn missed_accumulates_over_repeated_overflows() {
    let service = tiny_service();
    let mut slow = service.subscribe();
    assert_eq!(service.poll_events(&mut slow).len(), 1);

    let mut expected_missed = 0u64;
    let mut seen_since = 0u64;
    for round in 1..=3u64 {
        for k in 0..4u64 {
            run_cycle(&service, round * 10 + k);
        }
        // 12 events published per round, 4 retained: 8 dropped each time,
        // minus nothing — the cursor drained the window last round.
        let events = service.poll_events(&mut slow);
        assert_eq!(events.len(), CAPACITY);
        seen_since += events.len() as u64;
        expected_missed += 12 - CAPACITY as u64;
        assert_eq!(
            slow.missed(),
            expected_missed,
            "round {round}: drops accumulate exactly"
        );
    }
    assert_eq!(service.events_published(), 1 + 36);
    assert_eq!(seen_since + expected_missed + 1, 1 + 36);
}
