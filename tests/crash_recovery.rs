//! Crash-recovery chaos property: kill the service at an arbitrary
//! injected panic site and hit index, recover from the journal, and the
//! recovered state is **bit-identical** to an observed pre-crash state.
//!
//! The run records `fingerprint()` after every completed operation, keyed
//! by the journal sequence number. A [`fault::FaultPlan::panic_once`] is
//! armed at a proptest-chosen `(site, hit)`; until that hit fires the run
//! is byte-identical to a fault-free one, so the recorded trail *is* the
//! reference — including the environmental accumulators (wall-clock match
//! seconds, oracle cache misses) that no separate run could reproduce.
//!
//! After the crash the torn service is dropped and recovered twice over
//! fresh engines:
//!
//! * both recoveries must agree bit for bit (replay is deterministic);
//! * if the killed operation died *before* its journal append
//!   ([`fault::MID_COMMIT`], [`fault::POOL_JOB`]) — or the scheduled hit
//!   was never reached — the recovered `journal_next_seq()` indexes a
//!   recorded fingerprint, which must match exactly: the torn in-memory
//!   op simply never happened;
//! * if it died *after* the append ([`fault::POST_APPEND`]) the journal
//!   holds one record nobody observed live; the recovered seq is then
//!   exactly one past the recorded trail, and determinism plus continued
//!   service (a fresh submit/confirm round-trip) stand in for the missing
//!   observation.
//!
//! Covered across both distance backends and runtime pools {1, 4}, with
//! capacity holds on and off and frequent automatic snapshots so the
//! snapshot + tail path is exercised, not just from-genesis replay.
//!
//! This binary owns the process-global fault plan: it must stay the only
//! test in its file.

use proptest::prelude::*;
use ptrider::roadnet::RoadNetworkBuilder;
use ptrider::{
    fault, Decision, DistanceBackend, EngineConfig, GridConfig, Journal, JournalConfig, OptionId,
    PtRider, RideService, RoadNetwork, ServiceConfig, SessionId, VertexId,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A 5x5 lattice with 1 km edges — big enough for multi-stop schedules,
/// small enough that a CH builds in microseconds.
fn lattice() -> RoadNetwork {
    let side = 5usize;
    let mut b = RoadNetworkBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_vertex(x as f64 * 1000.0, y as f64 * 1000.0));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let u = ids[y * side + x];
            if x + 1 < side {
                b.add_bidirectional_edge(u, ids[y * side + x + 1], 1000.0);
            }
            if y + 1 < side {
                b.add_bidirectional_edge(u, ids[(y + 1) * side + x], 1000.0);
            }
        }
    }
    b.build().unwrap()
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ptrider-crash-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One scripted admission operation. The script is pure data so a case is
/// reproducible from its seed alone.
#[derive(Clone, Copy, Debug)]
enum ScriptOp {
    Submit {
        origin: u32,
        destination: u32,
        riders: u32,
        at: f64,
    },
    Respond {
        submit_index: usize,
        choose: bool,
        at: f64,
    },
    Tick {
        at: f64,
    },
    Prune,
}

/// Derives a deterministic script from a seed with a tiny xorshift
/// (the vendored proptest has no shrinking, so readable scripts matter
/// more than minimal ones).
fn script(seed: u64, len: usize) -> Vec<ScriptOp> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move |bound: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % bound
    };
    let mut ops = Vec::with_capacity(len);
    let mut submits = 0usize;
    let mut clock = 0.0f64;
    for _ in 0..len {
        clock += 1.0;
        let roll = next(10);
        if submits == 0 || roll < 4 {
            let origin = next(25) as u32;
            let mut destination = next(25) as u32;
            if destination == origin {
                destination = (destination + 1) % 25;
            }
            ops.push(ScriptOp::Submit {
                origin,
                destination,
                riders: 1 + next(2) as u32,
                at: clock,
            });
            submits += 1;
        } else if roll < 8 {
            ops.push(ScriptOp::Respond {
                submit_index: next(submits as u64) as usize,
                choose: next(3) > 0,
                at: clock,
            });
        } else if roll == 8 {
            // Jump the clock so open offers cross the TTL.
            clock += 10.0;
            ops.push(ScriptOp::Tick { at: clock });
        } else {
            ops.push(ScriptOp::Prune);
        }
    }
    ops
}

fn build_service(
    engine_config: EngineConfig,
    service_config: ServiceConfig,
    dir: &PathBuf,
) -> RideService {
    let journal = Journal::create(dir, JournalConfig::default().with_snapshot_every_ops(6))
        .expect("journal dir is writable");
    RideService::new(lattice(), GridConfig::with_dimensions(3, 3), engine_config)
        .with_service_config(service_config)
        .with_journal(journal)
}

/// Runs the script, calling `observe` after every completed operation.
/// Returns `false` if an operation died on an injected panic.
fn run_script(svc: &RideService, ops: &[ScriptOp], mut observe: impl FnMut(&RideService)) -> bool {
    let mut sessions: Vec<SessionId> = Vec::new();
    for op in ops {
        let outcome = catch_unwind(AssertUnwindSafe(|| match *op {
            ScriptOp::Submit {
                origin,
                destination,
                riders,
                at,
            } => {
                let offer = svc
                    .submit(VertexId(origin), VertexId(destination), riders, at)
                    .expect("scripted probes are valid");
                Some(offer.session)
            }
            ScriptOp::Respond {
                submit_index,
                choose,
                at,
            } => {
                if let Some(&session) = sessions.get(submit_index) {
                    let decision = if choose {
                        Decision::Choose(OptionId(0))
                    } else {
                        Decision::Decline
                    };
                    // Re-responds, expiries and empty skylines yield typed
                    // errors; all are legal script outcomes.
                    let _ = svc.respond(session, decision, at);
                }
                None
            }
            ScriptOp::Tick { at } => {
                svc.tick(at);
                None
            }
            ScriptOp::Prune => {
                svc.prune_resolved();
                None
            }
        }));
        match outcome {
            Ok(Some(session)) => sessions.push(session),
            Ok(None) => {}
            Err(_) => return false,
        }
        observe(svc);
    }
    true
}

fn recover_once(
    engine_config: EngineConfig,
    service_config: ServiceConfig,
    dir: &PathBuf,
) -> RideService {
    let engine = PtRider::new(lattice(), GridConfig::with_dimensions(3, 3), engine_config);
    RideService::recover(
        engine,
        service_config,
        dir,
        JournalConfig::default().with_snapshot_every_ops(6),
    )
    .expect("recovery succeeds")
}

fn run_case(
    seed: u64,
    site_index: usize,
    panic_at: u64,
    backend: DistanceBackend,
    pool_size: usize,
    hold_offers: bool,
) -> Result<(), TestCaseError> {
    let engine_config = EngineConfig::default()
        .with_distance_backend(backend)
        .with_pool_size(pool_size);
    let service_config = ServiceConfig::default()
        .with_offer_ttl_secs(8.0)
        .with_hold_offers(hold_offers);
    let ops = script(seed, 28);
    let site = fault::PANIC_SITES[site_index % fault::PANIC_SITES.len()];
    let dir = temp_dir();

    // Chaos run, recording its own reference trail: every fingerprint is
    // observed *before* the scheduled panic fires, while the run is still
    // byte-identical to a fault-free one.
    let mut fingerprints: HashMap<u64, u64> = HashMap::new();
    let mut max_seq = 0u64;
    {
        let svc = build_service(engine_config, service_config, &dir);
        svc.add_vehicle(VertexId(0));
        svc.add_vehicle(VertexId(24));
        let mut record = |svc: &RideService| {
            let seq = svc.journal_next_seq().expect("journal attached");
            let fp = svc.fingerprint();
            max_seq = max_seq.max(seq);
            if let Some(prev) = fingerprints.insert(seq, fp) {
                // An op that appends nothing must also change nothing.
                assert_eq!(prev, fp, "seq {seq} observed with two states");
            }
        };
        record(&svc);
        fault::arm(fault::FaultPlan::panic_once(site, panic_at));
        let _completed = run_script(&svc, &ops, &mut record);
        fault::disarm();
    }

    // Recover twice over fresh engines; wherever the crash landed, replay
    // must be deterministic.
    let recovered = recover_once(engine_config, service_config, &dir);
    let again = recover_once(engine_config, service_config, &dir);
    let seq = recovered.journal_next_seq().expect("journal attached");
    prop_assert_eq!(
        again.journal_next_seq().expect("journal attached"),
        seq,
        "both recoveries replay the same journal position"
    );
    prop_assert_eq!(
        recovered.fingerprint(),
        again.fingerprint(),
        "replay is deterministic ({} hit {}, backend {:?}, pool {}, holds {})",
        site,
        panic_at,
        backend,
        pool_size,
        hold_offers
    );

    match fingerprints.get(&seq).copied() {
        // The crash predates the killed op's append (or never fired): the
        // recovered state is one the live run observed, bit for bit.
        Some(expected) => prop_assert_eq!(
            recovered.fingerprint(),
            expected,
            "recovery diverged at seq {} ({} hit {}, backend {:?}, pool {}, holds {})",
            seq,
            site,
            panic_at,
            backend,
            pool_size,
            hold_offers
        ),
        // The op was journaled and *then* killed: its post-state was never
        // observed live, so the journal is exactly one record past the
        // trail. Determinism (above) plus continued service (below) cover
        // the unobserved state.
        None => prop_assert_eq!(
            seq,
            max_seq + 1,
            "a post-append death journals exactly the killed op ({} hit {})",
            site,
            panic_at
        ),
    }

    // Whatever it recovered to, the service keeps serving and journaling.
    // (A decline is legal even when saturated holds leave the skyline
    // empty, so it probes liveness without assuming spare capacity.)
    let offer = recovered
        .submit(VertexId(0), VertexId(24), 1, 1e6)
        .expect("the recovered service accepts new work");
    let resolved = recovered
        .respond(offer.session, Decision::Decline, 1e6)
        .expect("the recovered service resolves new work");
    prop_assert!(resolved.is_none(), "a decline resolves without a pickup");
    prop_assert!(
        recovered.journal_next_seq().expect("journal attached") > seq,
        "the recovered service appends past the crash point"
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn crashed_service_recovers_to_an_observed_state(
        seed in 0u64..1_000_000,
        site_index in 0usize..3,
        panic_at in 0u64..12,
    ) {
        let hold_offers = seed % 2 == 0;
        for backend in [DistanceBackend::Alt, DistanceBackend::Ch] {
            for pool_size in [1usize, 4] {
                run_case(seed, site_index, panic_at, backend, pool_size, hold_offers)?;
            }
        }
    }
}
