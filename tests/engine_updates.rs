//! Integration tests of the engine's update flow (Fig. 2): request →
//! options → choice → location / pickup / drop-off updates, index
//! consistency and capacity handling across crates.

use ptrider::datagen::{synthetic_city, CityConfig};
use ptrider::roadnet::dijkstra;
use ptrider::vehicles::StopEvent;
use ptrider::{EngineConfig, GridConfig, MatcherKind, PtRider, VertexId};

fn small_city_engine(matcher: MatcherKind) -> PtRider {
    let city = synthetic_city(&CityConfig::tiny(5));
    let mut engine = PtRider::new(
        city,
        GridConfig::with_dimensions(4, 4),
        EngineConfig::paper_defaults().with_detour_factor(0.5),
    );
    engine.set_matcher(matcher);
    engine
}

/// Drives a vehicle along shortest paths, serving stops until it is empty.
fn drive_until_idle(engine: &mut PtRider, vehicle: ptrider::VehicleId) -> Vec<StopEvent> {
    let mut events = Vec::new();
    let net = engine.oracle().network_arc();
    for _ in 0..64 {
        let Some(stop) = engine.vehicle(vehicle).unwrap().next_stop() else {
            break;
        };
        let loc = engine.vehicle(vehicle).unwrap().location();
        if loc != stop.location {
            let (dist, path) = dijkstra::shortest_path(&net, loc, stop.location).unwrap();
            // Jump vertex by vertex so location updates stay incremental.
            let mut prev = loc;
            for v in path.into_iter().skip(1) {
                let leg = dijkstra::distance(&net, prev, v).unwrap();
                engine.location_update(vehicle, v, leg).unwrap();
                prev = v;
            }
            assert!(dist >= 0.0);
        }
        if let Some(event) = engine.vehicle_arrived(vehicle).unwrap() {
            events.push(event);
        }
    }
    events
}

#[test]
fn shared_ride_of_two_requests_completes_in_order() {
    let mut engine = small_city_engine(MatcherKind::DualSide);
    let taxi = engine.add_vehicle(VertexId(0));

    // Two overlapping trips along the same corridor.
    let (r1, opts1) = engine.submit(VertexId(2), VertexId(8), 1, 0.0);
    engine.choose(r1, &opts1[0], 0.0).unwrap();
    let (r2, opts2) = engine.submit(VertexId(3), VertexId(9), 2, 10.0);
    assert!(
        !opts2.is_empty(),
        "the busy taxi must still offer an option"
    );
    let own = opts2.iter().find(|o| o.vehicle == taxi).unwrap();
    engine.choose(r2, own, 10.0).unwrap();

    assert_eq!(engine.vehicle(taxi).unwrap().num_requests(), 2);
    let events = drive_until_idle(&mut engine, taxi);
    // Two pickups and two drop-offs, each pickup before its drop-off.
    assert_eq!(events.len(), 4);
    let pickups = events
        .iter()
        .filter(|e| matches!(e, StopEvent::PickedUp { .. }))
        .count();
    assert_eq!(pickups, 2);
    assert!(engine.vehicle(taxi).unwrap().is_empty());
    assert_eq!(engine.stats().pickups, 2);
    assert_eq!(engine.stats().dropoffs, 2);
    // At some point both parties were on board together (the corridor
    // overlaps), so the ride was genuinely shared.
    let max_onboard = events
        .iter()
        .scan(0i32, |acc, e| {
            match e {
                StopEvent::PickedUp { riders, .. } => *acc += *riders as i32,
                StopEvent::DroppedOff { request, .. } => *acc -= request.riders as i32,
            }
            Some(*acc)
        })
        .max()
        .unwrap();
    assert!(
        max_onboard >= 3,
        "rides should overlap, max onboard {max_onboard}"
    );
}

#[test]
fn capacity_limits_how_many_requests_a_vehicle_accepts() {
    let city = synthetic_city(&CityConfig::tiny(5));
    let mut engine = PtRider::new(
        city,
        GridConfig::with_dimensions(4, 4),
        EngineConfig::paper_defaults()
            .with_capacity(2)
            .with_detour_factor(1.0),
    );
    let taxi = engine.add_vehicle(VertexId(0));

    // First group of 2 fills the taxi for the overlapping segment.
    let (r1, opts) = engine.submit(VertexId(1), VertexId(9), 2, 0.0);
    engine.choose(r1, &opts[0], 0.0).unwrap();

    // A second group of 2 on the same corridor: the only way to serve it is
    // strictly after the first group is dropped off (no seat overlap), which
    // the waiting-time constraint may or may not allow — but a group of 3 can
    // never be served at all.
    let (_r3, opts3) = engine.submit(VertexId(2), VertexId(8), 3, 5.0);
    assert!(
        opts3.is_empty(),
        "a 3-rider group cannot fit a capacity-2 taxi: {opts3:?}"
    );
    assert_eq!(engine.vehicle(taxi).unwrap().num_requests(), 1);
}

#[test]
fn vehicle_index_tracks_empty_and_non_empty_transitions() {
    let mut engine = small_city_engine(MatcherKind::SingleSide);
    let taxi = engine.add_vehicle(VertexId(0));
    assert_eq!(engine.vehicle_index().is_registered_empty(taxi), Some(true));

    let (r1, opts) = engine.submit(VertexId(4), VertexId(9), 1, 0.0);
    engine.choose(r1, &opts[0], 0.0).unwrap();
    assert_eq!(
        engine.vehicle_index().is_registered_empty(taxi),
        Some(false)
    );
    // A non-empty vehicle is registered in at least the cells of its stops.
    let cells = engine.vehicle_index().cells_of(taxi);
    assert!(!cells.is_empty());

    // Complete the trip: the vehicle becomes empty again and is re-registered
    // in exactly one cell.
    let events = drive_until_idle(&mut engine, taxi);
    assert_eq!(events.len(), 2);
    assert_eq!(engine.vehicle_index().is_registered_empty(taxi), Some(true));
    assert_eq!(engine.vehicle_index().cells_of(taxi).len(), 1);
}

#[test]
fn location_updates_keep_matching_consistent() {
    let mut engine = small_city_engine(MatcherKind::DualSide);
    let taxi = engine.add_vehicle(VertexId(0));

    // Before moving, a request near vertex 90 is expensive/far for the taxi.
    let (probe1, far_options) = engine.submit(VertexId(90), VertexId(95), 1, 0.0);
    engine.decline(probe1).unwrap();

    // Drive the empty taxi across the city with location updates.
    let net = engine.oracle().network_arc();
    let (_, path) = dijkstra::shortest_path(&net, VertexId(0), VertexId(90)).unwrap();
    let mut prev = VertexId(0);
    for v in path.into_iter().skip(1) {
        let leg = dijkstra::distance(&net, prev, v).unwrap();
        engine.location_update(taxi, v, leg).unwrap();
        prev = v;
    }
    assert_eq!(engine.vehicle(taxi).unwrap().location(), VertexId(90));

    // The same request is now much closer.
    let (probe2, near_options) = engine.submit(VertexId(90), VertexId(95), 1, 60.0);
    engine.decline(probe2).unwrap();
    let far_pickup = far_options
        .first()
        .map(|o| o.pickup_dist)
        .unwrap_or(f64::MAX);
    let near_pickup = near_options.first().map(|o| o.pickup_dist).unwrap();
    assert!(near_pickup < far_pickup);
    assert_eq!(near_pickup, 0.0, "the taxi is standing at the origin");
    // One location update per vertex crossed on the way to v90.
    assert!(engine.stats().location_updates > 0);
}

#[test]
fn rejected_and_declined_requests_leave_no_state_behind() {
    let mut engine = small_city_engine(MatcherKind::Naive);
    let taxi = engine.add_vehicle(VertexId(50));

    // A request no vehicle can reach within the pickup radius.
    let city = synthetic_city(&CityConfig::tiny(5));
    drop(city);
    let tight = EngineConfig::paper_defaults().with_max_pickup_dist(100.0);
    let mut tight_engine = PtRider::new(
        synthetic_city(&CityConfig::tiny(5)),
        GridConfig::with_dimensions(4, 4),
        tight,
    );
    let far_taxi = tight_engine.add_vehicle(VertexId(0));
    let (req, options) = tight_engine.submit(VertexId(99), VertexId(90), 1, 0.0);
    assert!(options.is_empty());
    tight_engine.decline(req).unwrap();
    assert!(tight_engine.vehicle(far_taxi).unwrap().is_empty());
    assert_eq!(tight_engine.pending_requests(), 0);

    // Declining after options keeps the vehicle untouched.
    let (req, options) = engine.submit(VertexId(52), VertexId(58), 1, 0.0);
    assert!(!options.is_empty());
    engine.decline(req).unwrap();
    assert!(engine.vehicle(taxi).unwrap().is_empty());
    assert_eq!(engine.stats().requests_chosen, 0);
}
