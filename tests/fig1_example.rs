//! Experiment E1: the worked example of Section 2 / Fig. 1.
//!
//! The paper states that request `R2 = ⟨v12, v17, 2, 5, 0.2⟩` — submitted
//! while vehicle `c1` (at `v1`) serves `R1 = ⟨v2, v16, 2, 5, 0.2⟩` with trip
//! schedule `⟨v1, v2, v16⟩` and vehicle `c2` (at `v13`) is empty — receives
//! exactly two non-dominated options: `r1 = ⟨c1, 14, 4⟩` and
//! `r2 = ⟨c2, 8, 8.8⟩`, with `c1`'s new schedule `⟨v1, v2, v12, v16, v17⟩`.
//! This test replays the scenario against every matcher.

use ptrider::datagen::{fig1_vertex, Fig1Scenario};
use ptrider::{GridConfig, MatcherKind, PtRider, StopKind, VehicleId};

fn build_engine(scenario: &Fig1Scenario, kind: MatcherKind) -> (PtRider, VehicleId, VehicleId) {
    let mut engine = PtRider::new(
        scenario.network.clone(),
        GridConfig::with_dimensions(4, 4),
        scenario.config,
    );
    engine.set_matcher(kind);
    let c1 = engine.add_vehicle(scenario.c1_start);
    let c2 = engine.add_vehicle(scenario.c2_start);
    (engine, c1, c2)
}

/// Assigns R1 to c1, reproducing the paper's starting state.
fn assign_r1(engine: &mut PtRider, c1: VehicleId, scenario: &Fig1Scenario) {
    let (r1, options) = engine.submit(scenario.r1.0, scenario.r1.1, scenario.r1.2, 0.0);
    // c1 dominates c2 for R1 (pickup 6 vs 16, price 12 vs 16), so exactly one
    // option is returned and it belongs to c1.
    assert_eq!(options.len(), 1, "R1 must receive exactly c1's option");
    assert_eq!(options[0].vehicle, c1);
    assert_eq!(options[0].pickup_dist, 6.0);
    assert!((options[0].price - 12.0).abs() < 1e-9);
    engine.choose(r1, &options[0], 0.0).unwrap();

    // c1's committed schedule is the paper's tr1 = <v1, v2, v16> (the vehicle
    // is at v1, the schedule lists the remaining stops v2 then v16).
    let schedule = engine.vehicle(c1).unwrap().current_schedule();
    let locations: Vec<_> = schedule.iter().map(|s| s.location).collect();
    assert_eq!(locations, vec![fig1_vertex(2), fig1_vertex(16)]);
}

#[test]
fn fig1_example_reproduces_with_every_matcher() {
    let scenario = Fig1Scenario::new();
    for kind in MatcherKind::all() {
        let (mut engine, c1, c2) = build_engine(&scenario, kind);
        assign_r1(&mut engine, c1, &scenario);

        let (_r2, options) = engine.submit(scenario.r2.0, scenario.r2.1, scenario.r2.2, 0.0);
        assert_eq!(
            options.len(),
            2,
            "{kind}: R2 must receive the paper's two options, got {options:?}"
        );

        let by_c1 = options
            .iter()
            .find(|o| o.vehicle == c1)
            .unwrap_or_else(|| panic!("{kind}: c1 must offer an option"));
        let by_c2 = options
            .iter()
            .find(|o| o.vehicle == c2)
            .unwrap_or_else(|| panic!("{kind}: c2 must offer an option"));

        // r1 = <c1, 14, 4>: pick-up distance 14, price 4.
        assert_eq!(by_c1.pickup_dist, 14.0, "{kind}: c1 pickup distance");
        assert!(
            (by_c1.price - 4.0).abs() < 1e-9,
            "{kind}: c1 price {}",
            by_c1.price
        );
        // The new schedule is tr2 = <v1, v2, v12, v16, v17> — from the
        // vehicle location v1, the remaining stops are v2, v12, v16, v17.
        let schedule: Vec<_> = by_c1.schedule.iter().map(|s| s.location).collect();
        assert_eq!(
            schedule,
            vec![
                fig1_vertex(2),
                fig1_vertex(12),
                fig1_vertex(16),
                fig1_vertex(17)
            ],
            "{kind}: c1's offered schedule"
        );

        // r2 = <c2, 8, 8.8>.
        assert_eq!(by_c2.pickup_dist, 8.0, "{kind}: c2 pickup distance");
        assert!(
            (by_c2.price - 8.8).abs() < 1e-9,
            "{kind}: c2 price {}",
            by_c2.price
        );

        // Neither option dominates the other (Definition 4).
        assert!(!by_c1.dominates(by_c2));
        assert!(!by_c2.dominates(by_c1));
    }
}

#[test]
fn fig1_price_model_example_of_definition_3() {
    // Definition 3's example computes the price of inserting R2 into c1's
    // schedule directly: f_2 · (dist_tr2 − dist_tr1 + dist(v12, v17)) = 4.
    let scenario = Fig1Scenario::new();
    let (mut engine, c1, _c2) = build_engine(&scenario, MatcherKind::Naive);
    assign_r1(&mut engine, c1, &scenario);

    let dist_tr1 = engine.vehicle(c1).unwrap().current_best_distance();
    assert_eq!(dist_tr1, 18.0); // 6 + 12

    let (_r2, options) = engine.submit(scenario.r2.0, scenario.r2.1, scenario.r2.2, 0.0);
    let by_c1 = options.iter().find(|o| o.vehicle == c1).unwrap();
    assert_eq!(by_c1.new_total_dist, 21.0); // 6 + 8 + 4 + 3
    assert_eq!(by_c1.old_total_dist, 18.0);
    let direct = 7.0; // dist(v12, v17)
    let expected = scenario.config.price.price(2, by_c1.detour_dist(), direct);
    assert!((expected - 4.0).abs() < 1e-9);
    assert!((by_c1.price - expected).abs() < 1e-9);
}

#[test]
fn fig1_choosing_the_cheaper_option_extends_c1() {
    let scenario = Fig1Scenario::new();
    let (mut engine, c1, _c2) = build_engine(&scenario, MatcherKind::DualSide);
    assign_r1(&mut engine, c1, &scenario);
    let (r2, options) = engine.submit(scenario.r2.0, scenario.r2.1, scenario.r2.2, 0.0);
    let cheap = options
        .iter()
        .min_by(|a, b| a.price.partial_cmp(&b.price).unwrap())
        .unwrap();
    assert_eq!(cheap.vehicle, c1);
    engine.choose(r2, cheap, 0.0).unwrap();

    let v = engine.vehicle(c1).unwrap();
    assert_eq!(v.num_requests(), 2);
    // The committed best schedule now serves both requests in the paper's
    // order: pickup R1 at v2, pickup R2 at v12, drop R1 at v16, drop R2 at v17.
    let schedule = v.current_schedule();
    let kinds: Vec<_> = schedule.iter().map(|s| (s.location, s.kind)).collect();
    assert_eq!(
        kinds,
        vec![
            (fig1_vertex(2), StopKind::Pickup),
            (fig1_vertex(12), StopKind::Pickup),
            (fig1_vertex(16), StopKind::Dropoff),
            (fig1_vertex(17), StopKind::Dropoff),
        ]
    );
    assert_eq!(v.current_best_distance(), 21.0);
}
