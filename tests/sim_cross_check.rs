//! Regression test: the matching algorithms stay equivalent *while the
//! world moves* — vehicles drive, pick riders up, drop them off, and their
//! kinetic trees are recomputed along the way.
//!
//! This once failed: the simulator credited abandoned partial-edge progress
//! to on-board budgets, the affected vehicle's kinetic tree emptied, and the
//! matchers treated the broken vehicle inconsistently (naive/single-side
//! offered a schedule that ignored its committed riders, dual-side pruned
//! it). The fix landed in three places: the simulator's motion accounting,
//! a kinetic-tree recompute that never abandons committed riders, and a
//! guard that a vehicle without a valid schedule offers no options. The
//! simulator's cross-check mode re-verifies all three matchers on every
//! submitted request and panics on any disagreement.

use ptrider::datagen::{CityConfig, TripConfig, Workload, WorkloadConfig};
use ptrider::{ChoicePolicy, EngineConfig, GridConfig, MatcherKind, SimConfig, Simulator};

fn run_with_cross_check(seed: u64, choice: ChoicePolicy, minutes: f64) {
    let workload = Workload::generate(WorkloadConfig {
        city: CityConfig::tiny(seed),
        num_vehicles: 15,
        trips: TripConfig {
            num_trips: 120,
            day_secs: 3600.0,
            seed,
            ..TripConfig::default()
        },
        seed,
    });
    let engine_config = EngineConfig::paper_defaults()
        .with_detour_factor(0.3)
        .with_max_wait_secs(420.0);
    let sim_config = SimConfig {
        dt_secs: 5.0,
        start_secs: 0.0,
        end_secs: minutes * 60.0,
        choice,
        matcher: MatcherKind::DualSide,
        grid: GridConfig::with_dimensions(4, 4),
        idle_roaming: true,
        cross_check: true,
        burst_admission: false,
        traffic: None,
        seed,
    };
    let mut sim = Simulator::new(workload, engine_config, sim_config);
    let report = sim.run();
    assert!(report.assigned > 0);
}

#[test]
fn matchers_stay_equivalent_in_the_original_failing_scenario() {
    // Seed 55 is the workload that originally exposed the divergence at
    // t ≈ 669 s; run well past that point.
    run_with_cross_check(55, ChoicePolicy::Fastest, 25.0);
}

#[test]
fn matchers_stay_equivalent_with_a_cheapest_rider_population() {
    run_with_cross_check(101, ChoicePolicy::Cheapest, 20.0);
}

#[test]
fn no_vehicle_is_left_without_a_schedule_for_its_riders() {
    let workload = Workload::generate(WorkloadConfig {
        city: CityConfig::tiny(55),
        num_vehicles: 15,
        trips: TripConfig {
            num_trips: 150,
            day_secs: 2400.0,
            seed: 55,
            ..TripConfig::default()
        },
        seed: 55,
    });
    let sim_config = SimConfig {
        dt_secs: 5.0,
        start_secs: 0.0,
        end_secs: 2400.0,
        choice: ChoicePolicy::Weighted { alpha: 0.3 },
        matcher: MatcherKind::DualSide,
        grid: GridConfig::with_dimensions(4, 4),
        idle_roaming: true,
        cross_check: false,
        burst_admission: false,
        traffic: None,
        seed: 55,
    };
    let mut sim = Simulator::new(
        workload,
        EngineConfig::paper_defaults().with_detour_factor(0.3),
        sim_config,
    );
    while sim.clock() < 2400.0 {
        sim.step();
        let clock = sim.clock();
        sim.service().with_vehicles(|vehicles| {
            for vehicle in vehicles {
                assert!(
                    vehicle.is_empty() || !vehicle.all_schedules().is_empty(),
                    "vehicle {} has {} committed requests but no valid schedule at t={clock}",
                    vehicle.id(),
                    vehicle.num_requests(),
                );
            }
        });
    }
}
