//! Property test: on networks with one-way edges — where the forward-only
//! grid tables are not admissible bounds — the single-side and dual-side
//! searches still return exactly the naive matcher's skyline. The grid
//! search must detect the directed network and degrade its cell-level
//! pruning to direction-safe bounds rather than silently dropping options.

use proptest::prelude::*;
use ptrider::{EngineConfig, GridConfig, MatcherKind, PtRider, Request, RideOption, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A jittered lattice with extra *one-way* shortcut edges, including cheap
/// one-way edges paired with expensive reverses (the pattern that breaks
/// symmetric bounds hardest).
fn directed_city(side: usize, one_way: usize, seed: u64) -> ptrider::RoadNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = ptrider::roadnet::RoadNetworkBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_vertex(x as f64 * 500.0, y as f64 * 500.0));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let u = ids[y * side + x];
            if x + 1 < side {
                b.add_bidirectional_edge(u, ids[y * side + x + 1], rng.gen_range(400.0..900.0));
            }
            if y + 1 < side {
                b.add_bidirectional_edge(u, ids[(y + 1) * side + x], rng.gen_range(400.0..900.0));
            }
        }
    }
    for _ in 0..one_way {
        let u = ids[rng.gen_range(0..ids.len())];
        let v = ids[rng.gen_range(0..ids.len())];
        if u != v {
            // Cheap forward, very expensive reverse: maximal asymmetry.
            b.add_directed_edge(u, v, rng.gen_range(100.0..300.0));
            b.add_directed_edge(v, u, rng.gen_range(5_000.0..9_000.0));
        }
    }
    b.build().unwrap()
}

fn canonical(options: &[RideOption]) -> Vec<(u32, i64, i64)> {
    let mut v: Vec<(u32, i64, i64)> = options
        .iter()
        .map(|o| {
            (
                o.vehicle.0,
                (o.pickup_dist * 1e6).round() as i64,
                (o.price * 1e9).round() as i64,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

fn run_scenario(
    seed: u64,
    side: usize,
    one_way: usize,
    num_vehicles: usize,
    num_requests: usize,
) -> Result<(), TestCaseError> {
    let city = directed_city(side, one_way, seed);
    prop_assert!(!city.is_undirected(), "scenario must be directed");
    // A tight pickup radius: an inflated (inadmissible) cell bound crosses
    // it and wrongly terminates the grid expansion, which is exactly the
    // regression this test exists to catch.
    let config = EngineConfig::paper_defaults().with_max_pickup_dist(2_500.0);

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xd1);
    let n = city.num_vertices() as u32;
    let vehicle_locations: Vec<VertexId> = (0..num_vehicles)
        .map(|_| VertexId(rng.gen_range(0..n)))
        .collect();
    let requests: Vec<(VertexId, VertexId)> = (0..num_requests)
        .map(|_| loop {
            let o = VertexId(rng.gen_range(0..n));
            let d = VertexId(rng.gen_range(0..n));
            if o != d {
                return (o, d);
            }
        })
        .collect();

    let mut engines: Vec<PtRider> = MatcherKind::all()
        .iter()
        .map(|kind| {
            let mut e = PtRider::new(city.clone(), GridConfig::with_dimensions(3, 3), config);
            e.set_matcher(*kind);
            for &loc in &vehicle_locations {
                e.add_vehicle(loc);
            }
            e
        })
        .collect();

    for (i, &(origin, destination)) in requests.iter().enumerate() {
        let mut all_options = Vec::new();
        for engine in engines.iter_mut() {
            let id = ptrider::RequestId(i as u64);
            let request = Request::new(id, origin, destination, 1, i as f64);
            let result = engine.submit_request(request).expect("valid request");
            all_options.push(result.options);
        }
        let reference = canonical(&all_options[0]);
        for (engine_idx, options) in all_options.iter().enumerate().skip(1) {
            prop_assert_eq!(
                &reference,
                &canonical(options),
                "matcher {} disagrees with naive on directed request #{} ({} -> {})",
                MatcherKind::all()[engine_idx],
                i,
                origin,
                destination
            );
        }
        if !all_options[0].is_empty() {
            for (engine, options) in engines.iter_mut().zip(&all_options) {
                engine
                    .choose(ptrider::RequestId(i as u64), &options[0], i as f64)
                    .expect("chosen option must be assignable");
            }
        } else {
            for engine in engines.iter_mut() {
                let _ = engine.decline(ptrider::RequestId(i as u64));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, max_shrink_iters: 0, ..ProptestConfig::default() })]

    #[test]
    fn matchers_agree_on_one_way_networks(
        seed in 0u64..1_000_000,
        side in 3usize..6,
        one_way in 1usize..8,
        num_vehicles in 1usize..12,
        num_requests in 1usize..6,
    ) {
        run_scenario(seed, side, one_way, num_vehicles, num_requests)?;
    }
}

#[test]
fn matchers_agree_on_a_fixed_one_way_scenario() {
    run_scenario(20090529, 5, 6, 16, 8).unwrap();
}

/// Deterministic adversarial case: a vehicle sits far from the pickup by
/// lattice distance but has a cheap one-way road straight to it. The
/// forward-built grid tables bound the vehicle's cell far beyond the pickup
/// radius, so an ungated cell-level prune (P1/P4 with symmetric-only
/// bounds) would silently drop the only feasible vehicle that the naive
/// scan finds.
#[test]
fn one_way_shortcut_vehicle_is_not_lost_to_cell_pruning() {
    let side = 6usize;
    let spacing = 1000.0;
    let mut b = ptrider::roadnet::RoadNetworkBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_vertex(x as f64 * spacing, y as f64 * spacing));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let u = ids[y * side + x];
            if x + 1 < side {
                b.add_bidirectional_edge(u, ids[y * side + x + 1], spacing);
            }
            if y + 1 < side {
                b.add_bidirectional_edge(u, ids[(y + 1) * side + x], spacing);
            }
        }
    }
    let pickup = ids[0]; // corner (0,0)
    let dropoff = ids[1];
    let far = ids[side * side - 1]; // opposite corner, 10 km by lattice
    b.add_directed_edge(far, pickup, 500.0); // cheap one-way chord
    let city = b.build().unwrap();
    assert!(!city.is_undirected());

    // Pickup radius far below the lattice distance but above the chord.
    let config = EngineConfig::paper_defaults().with_max_pickup_dist(2_000.0);
    let mut per_matcher = Vec::new();
    for kind in MatcherKind::all() {
        let mut e = PtRider::new(city.clone(), GridConfig::with_dimensions(3, 3), config);
        e.set_matcher(kind);
        e.add_vehicle(far);
        let (_, options) = e.submit(pickup, dropoff, 1, 0.0);
        per_matcher.push((kind, canonical(&options)));
    }
    let (_, reference) = &per_matcher[0];
    assert!(
        !reference.is_empty(),
        "naive must find the one-way-shortcut vehicle"
    );
    for (kind, options) in &per_matcher[1..] {
        assert_eq!(
            options, reference,
            "{kind} lost the one-way-shortcut vehicle to cell pruning"
        );
    }
}
