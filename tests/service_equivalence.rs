//! Property tests for the service-layer front door.
//!
//! **Concurrent `&self` submits are bit-identical to the sequential
//! facade.** N submitter threads hammer one `RideService` over a fixed
//! world while a `PtRider` built identically answers the same requests one
//! by one — the per-request option skylines must agree bit for bit
//! (vehicle ids, pickup-distance and price bit patterns, full schedules),
//! across runtime pool sizes {1, 4} and both distance backends. The two
//! sides' oracle *cache histories* diverge wildly (the service's cache is
//! raced by every submitter), which is exactly what the canonical-
//! direction folds of `ptrider_roadnet::oracle` make irrelevant.
//!
//! On top of the equivalence property, the integration tests drive the
//! full session lifecycle concurrently and check the conservation
//! invariants (every session resolved, no leaked pending state).

use proptest::prelude::*;
use ptrider::datagen::{synthetic_city, CityConfig, TripConfig, TripGenerator};
use ptrider::{
    Decision, DistanceBackend, EngineConfig, EngineEvent, GridConfig, MatcherKind, OptionId,
    PtRider, RideOption, RideService, ServiceConfig, SessionState, VertexId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds an engine with a deterministic fleet and warm-up, so every
/// instance constructed from the same inputs reaches an identical world.
fn build_engine(
    seed: u64,
    num_vehicles: usize,
    warm_requests: usize,
    config: EngineConfig,
    matcher: MatcherKind,
) -> PtRider {
    let city = synthetic_city(&CityConfig::tiny(seed));
    let mut engine = PtRider::new(city, GridConfig::with_dimensions(4, 4), config);
    engine.set_matcher(matcher);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5e55);
    let n = engine.network().num_vertices() as u32;
    for _ in 0..num_vehicles.max(1) {
        engine.add_vehicle(VertexId(rng.gen_range(0..n)));
    }
    let warm = TripGenerator::new(
        engine.network(),
        TripConfig {
            num_trips: warm_requests,
            seed: seed ^ 0x77,
            ..TripConfig::default()
        },
    )
    .generate();
    for (i, trip) in warm.iter().enumerate() {
        let (id, options) = engine.submit(trip.origin, trip.destination, trip.riders, i as f64);
        if let Some(first) = options.first().cloned() {
            let _ = engine.choose(id, &first, i as f64);
        } else {
            let _ = engine.decline(id);
        }
    }
    engine
}

/// Bit-level equality of two skylines, modulo the *submitting request's own
/// id*: request ids are allocated in arrival order, which legitimately
/// differs between the sequential replay and a racy concurrent submission —
/// every other byte of every option (vehicles, pickup/price bit patterns,
/// schedule shapes, co-riders' ids) must agree exactly.
fn assert_options_bit_identical(
    a: &[RideOption],
    self_a: ptrider::RequestId,
    b: &[RideOption],
    self_b: ptrider::RequestId,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "option count ({})", label);
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.vehicle, y.vehicle, "vehicle ({})", label);
        prop_assert_eq!(
            x.pickup_dist.to_bits(),
            y.pickup_dist.to_bits(),
            "pickup bits ({})",
            label
        );
        prop_assert_eq!(
            x.price.to_bits(),
            y.price.to_bits(),
            "price bits ({})",
            label
        );
        prop_assert_eq!(
            x.schedule.len(),
            y.schedule.len(),
            "schedule len ({})",
            label
        );
        for (sx, sy) in x.schedule.iter().zip(&y.schedule) {
            prop_assert_eq!(sx.location, sy.location, "stop location ({})", label);
            prop_assert_eq!(sx.kind, sy.kind, "stop kind ({})", label);
            prop_assert_eq!(sx.riders, sy.riders, "stop riders ({})", label);
            let own_x = sx.request == self_a;
            let own_y = sy.request == self_b;
            prop_assert_eq!(own_x, own_y, "stop ownership ({})", label);
            if !own_x {
                prop_assert_eq!(sx.request, sy.request, "co-rider id ({})", label);
            }
        }
    }
    Ok(())
}

fn run_scenario(
    seed: u64,
    num_vehicles: usize,
    warm_requests: usize,
    num_probes: usize,
    backend: DistanceBackend,
) -> Result<(), TestCaseError> {
    let matcher = match seed % 3 {
        0 => MatcherKind::Naive,
        1 => MatcherKind::SingleSide,
        _ => MatcherKind::DualSide,
    };
    let base = EngineConfig::paper_defaults().with_distance_backend(backend);
    let probes: Vec<(VertexId, VertexId, u32)> = TripGenerator::new(
        &synthetic_city(&CityConfig::tiny(seed)),
        TripConfig {
            num_trips: num_probes,
            seed: seed ^ 0xface,
            ..TripConfig::default()
        },
    )
    .generate()
    .iter()
    .map(|t| (t.origin, t.destination, t.riders))
    .filter(|(o, d, _)| o != d)
    .collect();
    if probes.is_empty() {
        return Ok(());
    }

    // Reference: the sequential facade answers every probe one by one,
    // never committing, so the world stays fixed.
    let mut reference = build_engine(seed, num_vehicles, warm_requests, base, matcher);
    let expected: Vec<(ptrider::RequestId, Vec<RideOption>)> = probes
        .iter()
        .map(|&(o, d, riders)| reference.submit(o, d, riders, 1_000.0))
        .collect();

    for pool_size in [1usize, 4] {
        let service = RideService::from_engine(build_engine(
            seed,
            num_vehicles,
            warm_requests,
            base.with_pool_size(pool_size),
            matcher,
        ));
        // Concurrent submitters: every probe is submitted from one of 4
        // threads, racing on the shared `&self` service (and, transitively,
        // on the oracle's sharded cache and the worker pool).
        let submitters = 4usize;
        let mut results: Vec<(usize, ptrider::RequestId, Vec<RideOption>)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..submitters {
                let service = &service;
                let probes = &probes;
                handles.push(scope.spawn(move || {
                    let mut mine = Vec::new();
                    for (i, &(o, d, riders)) in probes.iter().enumerate() {
                        if i % submitters == t {
                            let offer = service
                                .submit(o, d, riders, 1_000.0)
                                .expect("probe requests are valid");
                            mine.push((i, offer.request, offer.options));
                        }
                    }
                    mine
                }));
            }
            for handle in handles {
                results.extend(handle.join().expect("submitter thread"));
            }
        });
        prop_assert_eq!(results.len(), probes.len());
        for (i, request, options) in results {
            let label = format!("{backend:?} pool {pool_size} matcher {matcher} probe {i}");
            let (expected_id, expected_options) = &expected[i];
            assert_options_bit_identical(
                expected_options,
                *expected_id,
                &options,
                request,
                &label,
            )?;
        }
        prop_assert_eq!(
            service.open_offers(),
            probes.len(),
            "every probe left an open offer"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_submits_match_sequential_facade_on_alt(
        seed in 0u64..1_000_000,
        num_vehicles in 1usize..16,
        warm_requests in 0usize..6,
        num_probes in 1usize..10,
    ) {
        run_scenario(seed, num_vehicles, warm_requests, num_probes, DistanceBackend::Alt)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_submits_match_sequential_facade_on_ch(
        seed in 0u64..1_000_000,
        num_vehicles in 1usize..12,
        warm_requests in 0usize..5,
        num_probes in 1usize..8,
    ) {
        run_scenario(seed, num_vehicles, warm_requests, num_probes, DistanceBackend::Ch)?;
    }
}

/// A concurrent submit/respond storm: sessions race on the world write
/// lock, yet every session ends in a terminal-or-offered state consistent
/// with its observed response, the fleet carries exactly the confirmed
/// requests, and no pending bookkeeping leaks.
#[test]
fn concurrent_lifecycle_storm_preserves_invariants() {
    let engine = build_engine(
        42,
        12,
        4,
        EngineConfig::paper_defaults(),
        MatcherKind::DualSide,
    );
    let service = RideService::from_engine(engine)
        .with_service_config(ServiceConfig::default().with_offer_ttl_secs(1e9));
    let probes: Vec<(VertexId, VertexId, u32)> = TripGenerator::new(
        service.network(),
        TripConfig {
            num_trips: 64,
            seed: 0xabcd,
            ..TripConfig::default()
        },
    )
    .generate()
    .iter()
    .map(|t| (t.origin, t.destination, t.riders))
    .filter(|(o, d, _)| o != d)
    .collect();

    let confirmed = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let service = &service;
            let probes = &probes;
            let confirmed = &confirmed;
            scope.spawn(move || {
                for (i, &(o, d, riders)) in probes.iter().enumerate() {
                    if i % 4 != t {
                        continue;
                    }
                    let offer = service.submit(o, d, riders, 0.0).expect("valid probe");
                    let decision = if offer.options.is_empty() || i % 3 == 0 {
                        Decision::Decline
                    } else {
                        Decision::Choose(OptionId(0))
                    };
                    match service.respond(offer.session, decision, 0.0) {
                        Ok(Some(_)) => {
                            confirmed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Ok(None) => {}
                        Err(_) => {
                            // Assignment raced with a competing commit; the
                            // session stays offered — decline to settle it.
                            let _ = service.respond(offer.session, Decision::Decline, 0.0);
                        }
                    }
                }
            });
        }
    });

    let confirmed = confirmed.load(std::sync::atomic::Ordering::Relaxed);
    let stats = service.stats();
    assert_eq!(stats.offers_made as usize, probes.len());
    assert_eq!(stats.offers_confirmed as usize, confirmed);
    assert_eq!(service.open_offers(), 0, "every session was settled");
    assert_eq!(
        service.ledger_pending_requests(),
        0,
        "no leaked pending state"
    );
    // The fleet carries exactly the confirmed requests (the warm-up load
    // rode in from the engine before the storm).
    let warm_load: usize = 4; // warm_requests above, all confirmable or not
    let fleet_load =
        service.with_vehicles(|vehicles| vehicles.map(|v| v.num_requests()).sum::<usize>());
    // Warm-up trips may or may not have been assigned; derive their count
    // from the carried-over stats instead of assuming.
    let _ = warm_load;
    let warm_confirmed = (stats.requests_chosen - stats.offers_confirmed) as usize;
    let served: usize = (stats.pickups + stats.dropoffs) as usize; // storm serves no stops
    assert_eq!(served, 0);
    assert_eq!(fleet_load, warm_confirmed + confirmed);

    // The event log saw one Submitted + one Offered per probe and one
    // terminal event per settled session.
    let mut cursor = service.subscribe();
    let events = service.poll_events(&mut cursor);
    let submitted = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::Submitted { .. }))
        .count();
    let offered = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::Offered { .. }))
        .count();
    let terminal = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                EngineEvent::Confirmed { .. } | EngineEvent::Declined { .. }
            )
        })
        .count();
    assert_eq!(submitted, probes.len());
    assert_eq!(offered, probes.len());
    assert_eq!(terminal, probes.len());
}

/// The same storm with capacity holds on: option 0's seats are reserved at
/// offer time inside the write critical section, so a rider choosing the
/// held option can never lose the race to a competing commit — every
/// choose succeeds outright and `assignments_failed` stays at zero.
#[test]
fn concurrent_lifecycle_storm_with_holds_never_fails_an_assignment() {
    let engine = build_engine(
        42,
        12,
        0,
        EngineConfig::paper_defaults(),
        MatcherKind::DualSide,
    );
    let service = RideService::from_engine(engine).with_service_config(
        ServiceConfig::default()
            .with_offer_ttl_secs(1e9)
            .with_hold_offers(true),
    );
    let probes: Vec<(VertexId, VertexId, u32)> = TripGenerator::new(
        service.network(),
        TripConfig {
            num_trips: 64,
            seed: 0xabcd,
            ..TripConfig::default()
        },
    )
    .generate()
    .iter()
    .map(|t| (t.origin, t.destination, t.riders))
    .filter(|(o, d, _)| o != d)
    .collect();

    let confirmed = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let service = &service;
            let probes = &probes;
            let confirmed = &confirmed;
            scope.spawn(move || {
                for (i, &(o, d, riders)) in probes.iter().enumerate() {
                    if i % 4 != t {
                        continue;
                    }
                    let offer = service.submit(o, d, riders, 0.0).expect("valid probe");
                    let decision = if offer.options.is_empty() || i % 3 == 0 {
                        Decision::Decline
                    } else {
                        Decision::Choose(OptionId(0))
                    };
                    match service.respond(offer.session, decision, 0.0) {
                        Ok(Some(_)) => {
                            confirmed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Ok(None) => {}
                        Err(e) => panic!("a held option can never fail to commit: {e:?}"),
                    }
                }
            });
        }
    });

    let confirmed = confirmed.load(std::sync::atomic::Ordering::Relaxed);
    let stats = service.stats();
    assert_eq!(stats.offers_made as usize, probes.len());
    assert_eq!(stats.offers_confirmed as usize, confirmed);
    assert_eq!(
        stats.assignments_failed, 0,
        "holds reserve capacity at offer time"
    );
    assert_eq!(service.open_offers(), 0, "every session was settled");
    assert_eq!(service.ledger_pending_requests(), 0);
    // Declined holds released their seats: the fleet carries exactly the
    // confirmed requests.
    let fleet_load =
        service.with_vehicles(|vehicles| vehicles.map(|v| v.num_requests()).sum::<usize>());
    assert_eq!(fleet_load, confirmed);
}

/// Expiry under a finite TTL: offers left unanswered expire on `tick`, and
/// a rider coming back later is turned away with a typed error — while a
/// resubmission gets a fresh request id (the request-state-leak
/// regression, service edition).
#[test]
fn expired_offers_release_state_across_backends() {
    for backend in [DistanceBackend::Alt, DistanceBackend::Ch] {
        let engine = build_engine(
            7,
            6,
            0,
            EngineConfig::paper_defaults().with_distance_backend(backend),
            MatcherKind::DualSide,
        );
        let service = RideService::from_engine(engine)
            .with_service_config(ServiceConfig::default().with_offer_ttl_secs(30.0));
        let first = service.submit(VertexId(3), VertexId(90), 1, 0.0).unwrap();
        assert_eq!(service.tick(30.0), 0, "the deadline itself is inclusive");
        assert_eq!(service.tick(31.0), 1);
        assert_eq!(
            service.session_state(first.session),
            Some(SessionState::Expired)
        );
        assert!(service
            .respond(first.session, Decision::Choose(OptionId(0)), 32.0)
            .is_err());
        assert_eq!(service.open_offers(), 0);
        assert_eq!(service.ledger_pending_requests(), 0);

        let second = service.submit(VertexId(3), VertexId(90), 1, 40.0).unwrap();
        assert_ne!(
            first.request, second.request,
            "fresh RequestId ({backend:?})"
        );
        assert_ne!(first.session, second.session);
        // The re-offered skyline is reproduced bit-identically: nothing
        // stale from the expired session influences matching.
        assert_eq!(first.options.len(), second.options.len());
        for (a, b) in first.options.iter().zip(&second.options) {
            assert_eq!(a.vehicle, b.vehicle);
            assert_eq!(a.price.to_bits(), b.price.to_bits());
        }
        assert_eq!(service.stats().offers_expired, 1);
    }
}
