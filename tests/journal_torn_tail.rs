//! Torn-tail property: however the WAL or snapshot file is cut or
//! corrupted, `Journal::open` either recovers a valid prefix of the
//! record stream or reports a typed [`JournalError`] — it never panics
//! and never fabricates records.
//!
//! The crash model is a kill mid-`write(2)`: the on-disk file is an
//! arbitrary prefix of what the writer intended (truncation), possibly
//! with a damaged sector (bit flip). Both are enumerated exhaustively
//! over a reference WAL of varied-size records.

use ptrider::{Journal, JournalConfig, JournalError};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptrider-torn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a reference journal of `n` varied-size records and returns the
/// payloads plus the raw WAL bytes.
fn reference_wal(n: u64) -> (Vec<Vec<u8>>, Vec<u8>) {
    let dir = temp_dir("reference");
    let mut journal = Journal::create(&dir, JournalConfig::default()).unwrap();
    let mut payloads = Vec::new();
    for i in 0..n {
        let len = 3 + (i * 11) % 40;
        let payload: Vec<u8> = (0..len)
            .map(|k| (k as u8).wrapping_mul(31).wrapping_add(i as u8 ^ 0x5a))
            .collect();
        assert_eq!(journal.append(&payload).unwrap(), i);
        payloads.push(payload);
    }
    journal.sync().unwrap();
    drop(journal);
    let bytes = std::fs::read(dir.join("wal.bin")).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (payloads, bytes)
}

/// Opens a directory holding exactly `wal` as its WAL and checks the
/// prefix property; returns how many records survived (or `None` for a
/// typed error).
fn open_and_check(dir: &PathBuf, wal: &[u8], payloads: &[Vec<u8>], label: &str) -> Option<usize> {
    std::fs::write(dir.join("wal.bin"), wal).unwrap();
    match Journal::open(dir, JournalConfig::default()) {
        Ok((recovered, journal)) => {
            assert!(
                recovered.ops.len() <= payloads.len(),
                "{label}: more records than were written"
            );
            for (i, (seq, payload)) in recovered.ops.iter().enumerate() {
                assert_eq!(*seq, i as u64, "{label}: sequence gap");
                assert_eq!(payload, &payloads[i], "{label}: record {i} altered");
            }
            assert_eq!(
                journal.next_seq(),
                recovered.ops.len() as u64,
                "{label}: journal must resume where the valid prefix ends"
            );
            Some(recovered.ops.len())
        }
        // A typed refusal is a legal outcome; a panic is not.
        Err(JournalError::Corrupt(_)) | Err(JournalError::Io(_)) => None,
    }
}

#[test]
fn truncation_at_every_byte_yields_a_valid_prefix_or_a_typed_error() {
    let (payloads, bytes) = reference_wal(8);
    let dir = temp_dir("truncate");
    let mut recovered_counts = Vec::new();
    for cut in 0..=bytes.len() {
        let label = format!("cut at {cut}/{}", bytes.len());
        if let Some(n) = open_and_check(&dir, &bytes[..cut], &payloads, &label) {
            recovered_counts.push(n);
        }
    }
    // Monotone recovery: longer prefixes never recover fewer records, and
    // the full file recovers everything.
    assert!(recovered_counts.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(recovered_counts.last(), Some(&payloads.len()));
    assert_eq!(recovered_counts.first(), Some(&0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_flipped_byte_never_panics_and_never_fabricates_records() {
    let (payloads, bytes) = reference_wal(6);
    let dir = temp_dir("bitflip");
    for pos in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x40;
        let label = format!("flip at {pos}/{}", bytes.len());
        // The checksum stops the scan at (or before) the damaged record;
        // every record the open does return is a verbatim prefix.
        let _ = open_and_check(&dir, &damaged, &payloads, &label);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_snapshot_is_refused_with_a_typed_error_not_a_panic() {
    // Build a journal with records and a snapshot, then cut snapshot.bin
    // at every byte. Open must return the intact snapshot (full length),
    // a typed error (torn), or — for a zero-length file the rename never
    // completed on — anything but a panic.
    let dir = temp_dir("snapcut");
    let mut journal = Journal::create(&dir, JournalConfig::default()).unwrap();
    for i in 0..5u64 {
        journal.append(&[i as u8; 9]).unwrap();
    }
    let snapshot_payload = b"snapshot state image".to_vec();
    journal.write_snapshot(5, &snapshot_payload).unwrap();
    journal.append(&[0xEE; 4]).unwrap();
    journal.sync().unwrap();
    drop(journal);
    let snap_bytes = std::fs::read(dir.join("snapshot.bin")).unwrap();

    for cut in 0..=snap_bytes.len() {
        std::fs::write(dir.join("snapshot.bin"), &snap_bytes[..cut]).unwrap();
        match Journal::open(&dir, JournalConfig::default()) {
            Ok((recovered, _journal)) => {
                let (watermark, payload) = recovered
                    .snapshot
                    .expect("an openable snapshot file is the intact one");
                assert_eq!(cut, snap_bytes.len(), "only the full file is intact");
                assert_eq!(watermark, 5);
                assert_eq!(payload, snapshot_payload);
                assert_eq!(recovered.ops.len(), 6, "the WAL still replays fully");
            }
            Err(JournalError::Corrupt(_)) | Err(JournalError::Io(_)) => {
                assert_ne!(cut, snap_bytes.len(), "the intact file must open");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
