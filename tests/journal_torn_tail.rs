//! Torn-tail property: however the WAL or snapshot file is cut or
//! corrupted, `Journal::open` either recovers a valid prefix of the
//! record stream or reports a typed [`JournalError`] — it never panics
//! and never fabricates records.
//!
//! The crash model is a kill mid-`write(2)`: the on-disk file is an
//! arbitrary prefix of what the writer intended (truncation), possibly
//! with a damaged sector (bit flip). Both are enumerated exhaustively
//! over a reference WAL of varied-size records.

use ptrider::{Journal, JournalConfig, JournalError};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptrider-torn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a reference journal of `n` varied-size records and returns the
/// payloads plus the raw WAL bytes.
fn reference_wal(n: u64) -> (Vec<Vec<u8>>, Vec<u8>) {
    let dir = temp_dir("reference");
    let mut journal = Journal::create(&dir, JournalConfig::default()).unwrap();
    let mut payloads = Vec::new();
    for i in 0..n {
        let len = 3 + (i * 11) % 40;
        let payload: Vec<u8> = (0..len)
            .map(|k| (k as u8).wrapping_mul(31).wrapping_add(i as u8 ^ 0x5a))
            .collect();
        assert_eq!(journal.append(&payload).unwrap(), i);
        payloads.push(payload);
    }
    journal.sync().unwrap();
    drop(journal);
    let bytes = std::fs::read(dir.join("wal.bin")).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (payloads, bytes)
}

/// Opens a directory holding exactly `wal` as its WAL and checks the
/// prefix property; returns how many records survived (or `None` for a
/// typed error).
fn open_and_check(dir: &PathBuf, wal: &[u8], payloads: &[Vec<u8>], label: &str) -> Option<usize> {
    std::fs::write(dir.join("wal.bin"), wal).unwrap();
    match Journal::open(dir, JournalConfig::default()) {
        Ok((recovered, journal)) => {
            assert!(
                recovered.ops.len() <= payloads.len(),
                "{label}: more records than were written"
            );
            for (i, (seq, payload)) in recovered.ops.iter().enumerate() {
                assert_eq!(*seq, i as u64, "{label}: sequence gap");
                assert_eq!(payload, &payloads[i], "{label}: record {i} altered");
            }
            assert_eq!(
                journal.next_seq(),
                recovered.ops.len() as u64,
                "{label}: journal must resume where the valid prefix ends"
            );
            Some(recovered.ops.len())
        }
        // A typed refusal is a legal outcome; a panic is not.
        Err(JournalError::Corrupt(_)) | Err(JournalError::Io(_)) => None,
    }
}

#[test]
fn truncation_at_every_byte_yields_a_valid_prefix_or_a_typed_error() {
    let (payloads, bytes) = reference_wal(8);
    let dir = temp_dir("truncate");
    let mut recovered_counts = Vec::new();
    for cut in 0..=bytes.len() {
        let label = format!("cut at {cut}/{}", bytes.len());
        if let Some(n) = open_and_check(&dir, &bytes[..cut], &payloads, &label) {
            recovered_counts.push(n);
        }
    }
    // Monotone recovery: longer prefixes never recover fewer records, and
    // the full file recovers everything.
    assert!(recovered_counts.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(recovered_counts.last(), Some(&payloads.len()));
    assert_eq!(recovered_counts.first(), Some(&0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_flipped_byte_never_panics_and_never_fabricates_records() {
    let (payloads, bytes) = reference_wal(6);
    let dir = temp_dir("bitflip");
    for pos in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x40;
        let label = format!("flip at {pos}/{}", bytes.len());
        // The checksum stops the scan at (or before) the damaged record;
        // every record the open does return is a verbatim prefix.
        let _ = open_and_check(&dir, &damaged, &payloads, &label);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_snapshot_is_refused_with_a_typed_error_not_a_panic() {
    // Build a journal with records and a snapshot, then cut snapshot.bin
    // at every byte. Open must return the intact snapshot (full length),
    // a typed error (torn), or — for a zero-length file the rename never
    // completed on — anything but a panic.
    let dir = temp_dir("snapcut");
    let mut journal = Journal::create(&dir, JournalConfig::default()).unwrap();
    for i in 0..5u64 {
        journal.append(&[i as u8; 9]).unwrap();
    }
    let snapshot_payload = b"snapshot state image".to_vec();
    journal.write_snapshot(5, &snapshot_payload).unwrap();
    journal.append(&[0xEE; 4]).unwrap();
    journal.sync().unwrap();
    drop(journal);
    let snap_bytes = std::fs::read(dir.join("snapshot.bin")).unwrap();

    for cut in 0..=snap_bytes.len() {
        std::fs::write(dir.join("snapshot.bin"), &snap_bytes[..cut]).unwrap();
        match Journal::open(&dir, JournalConfig::default()) {
            Ok((recovered, _journal)) => {
                let (watermark, payload) = recovered
                    .snapshot
                    .expect("an openable snapshot file is the intact one");
                assert_eq!(cut, snap_bytes.len(), "only the full file is intact");
                assert_eq!(watermark, 5);
                assert_eq!(payload, snapshot_payload);
                // The rotation at the snapshot pruned the five covered
                // records; only the post-snapshot record remains.
                assert_eq!(recovered.ops.len(), 1, "the post-snapshot tail replays");
                assert_eq!(recovered.ops[0].0, 5);
            }
            Err(JournalError::Corrupt(_)) | Err(JournalError::Io(_)) => {
                assert_ne!(cut, snap_bytes.len(), "the intact file must open");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds a two-segment journal: records 0..4 in a sealed segment (the
/// snapshot watermark 2 leaves it partially uncovered, so rotation keeps
/// it) and records 4..8 in the active WAL. Returns the payloads, the
/// sealed segment's bytes, the active WAL's bytes, and the directory
/// layout's file names.
fn reference_segmented() -> (Vec<Vec<u8>>, Vec<u8>, Vec<u8>, String) {
    let dir = temp_dir("segmented-reference");
    let mut journal = Journal::create(&dir, JournalConfig::default()).unwrap();
    let mut payloads = Vec::new();
    for i in 0..4u64 {
        let payload: Vec<u8> = (0..7 + i).map(|k| (k as u8) ^ (i as u8) ^ 0xa5).collect();
        journal.append(&payload).unwrap();
        payloads.push(payload);
    }
    journal.write_snapshot(2, b"segmented snapshot").unwrap();
    for i in 4..8u64 {
        let payload: Vec<u8> = (0..5 + i)
            .map(|k| (k as u8).wrapping_add(i as u8))
            .collect();
        journal.append(&payload).unwrap();
        payloads.push(payload);
    }
    journal.sync().unwrap();
    drop(journal);
    let mut segment_name = None;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        if name.starts_with("segment-") {
            segment_name = Some(name);
        }
    }
    let segment_name = segment_name.expect("the snapshot sealed one segment");
    let sealed = std::fs::read(dir.join(&segment_name)).unwrap();
    let active = std::fs::read(dir.join("wal.bin")).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (payloads, sealed, active, segment_name)
}

/// Writes the two-segment layout into `dir` (no snapshot file — the
/// record scan is what is under test) and opens it, asserting the prefix
/// property against `payloads`.
fn open_segmented_and_check(
    dir: &PathBuf,
    segment_name: &str,
    sealed: &[u8],
    active: &[u8],
    payloads: &[Vec<u8>],
    label: &str,
) -> Option<usize> {
    // Remove leftovers from previous iterations: open() may itself prune
    // or truncate files, and a stale segment would corrupt the layout.
    for entry in std::fs::read_dir(dir).unwrap() {
        let _ = std::fs::remove_file(entry.unwrap().path());
    }
    std::fs::write(dir.join(segment_name), sealed).unwrap();
    std::fs::write(dir.join("wal.bin"), active).unwrap();
    match Journal::open(dir, JournalConfig::default()) {
        Ok((recovered, journal)) => {
            assert!(
                recovered.ops.len() <= payloads.len(),
                "{label}: more records than were written"
            );
            for (i, (seq, payload)) in recovered.ops.iter().enumerate() {
                assert_eq!(*seq, i as u64, "{label}: sequence gap");
                assert_eq!(payload, &payloads[i], "{label}: record {i} altered");
            }
            assert_eq!(
                journal.next_seq(),
                recovered.ops.len() as u64,
                "{label}: journal must resume where the valid prefix ends"
            );
            Some(recovered.ops.len())
        }
        Err(JournalError::Corrupt(_)) | Err(JournalError::Io(_)) => None,
    }
}

#[test]
fn truncating_the_active_wal_of_a_segmented_journal_keeps_the_sealed_prefix() {
    let (payloads, sealed, active, segment_name) = reference_segmented();
    let dir = temp_dir("segmented-active-cut");
    let mut recovered_counts = Vec::new();
    for cut in 0..=active.len() {
        let label = format!("active cut at {cut}/{}", active.len());
        if let Some(n) = open_segmented_and_check(
            &dir,
            &segment_name,
            &sealed,
            &active[..cut],
            &payloads,
            &label,
        ) {
            // The sealed segment always survives a torn active WAL.
            assert!(n >= 4, "{label}: sealed records lost");
            recovered_counts.push(n);
        }
    }
    assert!(recovered_counts.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(recovered_counts.last(), Some(&payloads.len()));
    assert_eq!(recovered_counts.first(), Some(&4));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncating_a_sealed_segment_drops_everything_after_the_tear() {
    let (payloads, sealed, active, segment_name) = reference_segmented();
    let dir = temp_dir("segmented-sealed-cut");
    let mut recovered_counts = Vec::new();
    for cut in 0..=sealed.len() {
        let label = format!("sealed cut at {cut}/{}", sealed.len());
        if let Some(n) = open_segmented_and_check(
            &dir,
            &segment_name,
            &sealed[..cut],
            &active,
            &payloads,
            &label,
        ) {
            // A tear inside the sealed segment invalidates the active WAL
            // too: the recovered stream is a prefix of the sealed records.
            assert!(
                n <= 4 || cut == sealed.len(),
                "{label}: active records must not survive a sealed tear"
            );
            recovered_counts.push(n);
        }
    }
    assert!(recovered_counts.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(recovered_counts.last(), Some(&payloads.len()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flips_across_a_segmented_journal_never_panic_or_fabricate() {
    let (payloads, sealed, active, segment_name) = reference_segmented();
    let dir = temp_dir("segmented-bitflip");
    for pos in 0..sealed.len() {
        let mut damaged = sealed.clone();
        damaged[pos] ^= 0x40;
        let label = format!("sealed flip at {pos}/{}", sealed.len());
        let _ = open_segmented_and_check(&dir, &segment_name, &damaged, &active, &payloads, &label);
    }
    for pos in 0..active.len() {
        let mut damaged = active.clone();
        damaged[pos] ^= 0x40;
        let label = format!("active flip at {pos}/{}", active.len());
        let _ = open_segmented_and_check(&dir, &segment_name, &sealed, &damaged, &payloads, &label);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
