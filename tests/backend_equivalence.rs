//! Property test: swapping the exact distance backend (`Alt` ↔ `Ch`) never
//! changes matcher results.
//!
//! Both backends answer exact shortest-path queries, so matching one request
//! on one identical world must return the same skyline either way. The
//! comparison is **bit-exact**: the CH backend unpacks shortcut paths and
//! re-folds original edge weights in path order, so every distance it
//! returns is bit-for-bit the value Dijkstra/ALT computes — and the skyline
//! (a tie-sensitive structure) must therefore agree down to the exact
//! option multiset, duplicates included.
//!
//! The world is driven by a single ALT engine (submit + choose) so both
//! backends are probed read-only on identical vehicle states. Both probes
//! run through *fresh* oracles (one per backend) rather than the engine's
//! warm one: the memo cache mirrors `(u,v)` onto `(v,u)` on undirected
//! networks, and the reverse-direction fold of the same path can differ in
//! the last bit — so two oracles only agree bit-for-bit when they process
//! the same query sequence from the same (cold) cache state. That is a
//! property of the memoisation layer, not of the backends.

use proptest::prelude::*;
use ptrider::datagen::{synthetic_city, CityConfig, TripConfig, TripGenerator};
use ptrider::roadnet::DistanceOracle;
use ptrider::{DistanceBackend, EngineConfig, GridConfig, MatcherKind, PtRider, Request, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Canonical form of an option set: the sorted multiset of (vehicle,
/// pickup-bits, price-bits) triples — bit-exact, duplicates included.
fn canonical(options: &[ptrider::RideOption]) -> Vec<(u32, u64, u64)> {
    let mut v: Vec<(u32, u64, u64)> = options
        .iter()
        .map(|o| (o.vehicle.0, o.pickup_dist.to_bits(), o.price.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

fn run_scenario(
    seed: u64,
    num_vehicles: usize,
    num_warm: usize,
    num_probes: usize,
) -> Result<(), TestCaseError> {
    let city = synthetic_city(&CityConfig::tiny(seed));

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbac);
    let mut engine = PtRider::new(
        city,
        GridConfig::with_dimensions(4, 4),
        EngineConfig::paper_defaults(),
    );
    engine.set_matcher(MatcherKind::DualSide);
    for _ in 0..num_vehicles {
        engine.add_vehicle(VertexId(
            rng.gen_range(0..engine.network().num_vertices() as u32),
        ));
    }
    let trips = TripGenerator::new(
        engine.network(),
        TripConfig {
            num_trips: num_warm + num_probes,
            seed: seed ^ 0x71,
            ..TripConfig::default()
        },
    )
    .generate();

    // Warm phase: make a realistic share of the fleet non-empty, driven
    // exclusively by the ALT engine.
    for (i, trip) in trips.iter().take(num_warm).enumerate() {
        let (id, options) = engine.submit(trip.origin, trip.destination, trip.riders, i as f64);
        if let Some(first) = options.first() {
            let _ = engine.choose(id, first, i as f64);
        } else {
            let _ = engine.decline(id);
        }
    }

    // Fresh oracles over the same network and grid, one per backend. Tiny
    // cities always contract, so the second must genuinely run the CH
    // backend (otherwise the test silently compares Alt with Alt).
    let alt_oracle = DistanceOracle::with_backend(
        engine.oracle().network_arc(),
        engine.oracle().grid_arc(),
        None,
        DistanceBackend::Alt,
    );
    let ch_oracle = DistanceOracle::with_backend(
        engine.oracle().network_arc(),
        engine.oracle().grid_arc(),
        None,
        DistanceBackend::Ch,
    );
    prop_assert_eq!(ch_oracle.backend(), DistanceBackend::Ch);

    for (i, trip) in trips.iter().skip(num_warm).enumerate() {
        let request = Request::new(
            ptrider::RequestId(1000 + i as u64),
            trip.origin,
            trip.destination,
            trip.riders,
            i as f64,
        );
        for kind in MatcherKind::all() {
            let alt = engine
                .match_request_with_oracle(kind, &request, &alt_oracle)
                .expect("valid request");
            let ch = engine
                .match_request_with_oracle(kind, &request, &ch_oracle)
                .expect("valid request");
            prop_assert_eq!(
                &canonical(&alt.options),
                &canonical(&ch.options),
                "backend skylines diverge: matcher {} probe #{} ({} -> {})",
                kind,
                i,
                trip.origin,
                trip.destination
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn alt_and_ch_backends_return_identical_skylines(
        seed in 0u64..1_000_000,
        num_vehicles in 1usize..14,
        num_warm in 0usize..10,
        num_probes in 1usize..6,
    ) {
        run_scenario(seed, num_vehicles, num_warm, num_probes)?;
    }
}

#[test]
fn backends_agree_on_a_busy_fixed_scenario() {
    run_scenario(20090529, 24, 20, 12).unwrap();
}
