//! Property tests for the live-traffic subsystem at the `tests/` (skyline)
//! level: option skylines under traffic are **bit-identical** across the
//! `{Alt, Ch}` distance backends after every epoch of a random traffic
//! sequence, and the engine/service write paths account the epochs.
//!
//! Two mirrored engines (one per backend) are driven through the *same*
//! sequence of vehicle placements, warm assignments and traffic epochs.
//! Because both backends are exact and bit-identical per query (the CH
//! repair path unpacks and re-folds original scaled weights in path
//! order), the mirrored worlds stay bit-identical state for state — which
//! this test asserts via the option multisets of probe requests matched
//! after each epoch.

use proptest::prelude::*;
use ptrider::datagen::{
    synthetic_city, CityConfig, CongestionConfig, CongestionProfile, TripConfig, TripGenerator,
};
use ptrider::{
    DistanceBackend, EngineConfig, GridConfig, MatcherKind, PtRider, TrafficModel, VertexId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Canonical form of an option set: the sorted multiset of (vehicle,
/// pickup-bits, price-bits) triples — bit-exact, duplicates included.
fn canonical(options: &[ptrider::RideOption]) -> Vec<(u32, u64, u64)> {
    let mut v: Vec<(u32, u64, u64)> = options
        .iter()
        .map(|o| (o.vehicle.0, o.pickup_dist.to_bits(), o.price.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

fn run_scenario(seed: u64, num_vehicles: usize, epochs: usize) -> Result<(), TestCaseError> {
    let make_engine = |backend: DistanceBackend| {
        let city = synthetic_city(&CityConfig::tiny(seed));
        let mut engine = PtRider::new(
            city,
            GridConfig::with_dimensions(4, 4),
            EngineConfig::paper_defaults().with_distance_backend(backend),
        );
        engine.set_matcher(MatcherKind::DualSide);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbac);
        for _ in 0..num_vehicles {
            engine.add_vehicle(VertexId(
                rng.gen_range(0..engine.network().num_vertices() as u32),
            ));
        }
        engine
    };
    let mut alt = make_engine(DistanceBackend::Alt);
    let mut ch = make_engine(DistanceBackend::Ch);
    prop_assert_eq!(ch.oracle().backend(), DistanceBackend::Ch);

    let trips = TripGenerator::new(
        alt.network(),
        TripConfig {
            num_trips: 24,
            seed: seed ^ 0x7aff1c,
            ..TripConfig::default()
        },
    )
    .generate();

    let profile = CongestionProfile::build(
        alt.network(),
        CongestionConfig {
            seed,
            ..CongestionConfig::default()
        },
    );
    let mut model = TrafficModel::free_flow(alt.network());
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xcafe);
    let mut expected_customizations = 0u64;

    for epoch in 0..epochs {
        // Every epoch: a rush-hour snapshot at a random time of day, with
        // occasional resets to free flow so the restore path is exercised.
        if epoch > 0 && rng.gen_bool(0.25) {
            model.reset();
        } else {
            let t = rng.gen_range(0.0..86_400.0);
            profile.update_model(alt.network(), t, &mut model);
        }
        let congested = model.congested_arcs() > 0;
        expected_customizations += congested as u64;
        let alt_outcome = alt.apply_traffic_update(&model);
        let ch_outcome = ch.apply_traffic_update(&model);
        prop_assert_eq!(alt_outcome.epoch, ch_outcome.epoch);
        prop_assert!(!alt_outcome.ch_repaired, "ALT engine never repairs");
        // Congested epochs run a customization pass; free-flow resets
        // reinstate the retained build-time hierarchy instead.
        prop_assert_eq!(ch_outcome.ch_repaired, congested);

        // Probe (and commit a subset, so the mirrored worlds evolve):
        // skylines must agree bit for bit under the current traffic.
        for (k, trip) in trips.iter().enumerate() {
            let now = epoch as f64;
            let (alt_req, alt_options) =
                alt.submit(trip.origin, trip.destination, trip.riders, now);
            let (ch_req, ch_options) = ch.submit(trip.origin, trip.destination, trip.riders, now);
            prop_assert_eq!(
                canonical(&alt_options),
                canonical(&ch_options),
                "epoch {} trip {} ({} -> {})",
                epoch,
                k,
                trip.origin,
                trip.destination
            );
            // Commit every fourth trip on both worlds identically (the
            // first option of a bit-identical skyline is the same option).
            if k % 4 == 0 && !alt_options.is_empty() {
                let ok_a = alt.choose(alt_req, &alt_options[0], now).is_ok();
                let ok_c = ch.choose(ch_req, &ch_options[0], now).is_ok();
                prop_assert_eq!(ok_a, ok_c);
            } else {
                let _ = alt.decline(alt_req);
                let _ = ch.decline(ch_req);
            }
        }
    }
    prop_assert_eq!(alt.stats().traffic_epochs, epochs as u64);
    prop_assert_eq!(ch.stats().ch_customizations, expected_customizations);
    prop_assert_eq!(ch.oracle().traffic_epoch() >= epochs as u64, true);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn skylines_under_traffic_are_bit_identical_across_backends(
        seed in 0u64..300,
        num_vehicles in 6usize..14,
        epochs in 1usize..4,
    ) {
        run_scenario(seed, num_vehicles, epochs)?;
    }
}

/// Deterministic end-to-end regression on the service layer: epochs applied
/// through `RideService::apply_traffic_update` are observable (event +
/// stats), affect subsequent offers, and a free-flow reset restores the
/// original bits.
#[test]
fn service_traffic_lifecycle_round_trips() {
    use ptrider::{Decision, EngineEvent, RideService};
    let city = synthetic_city(&CityConfig::tiny(5));
    let service = RideService::new(
        city,
        GridConfig::with_dimensions(4, 4),
        EngineConfig::paper_defaults().with_distance_backend(DistanceBackend::Ch),
    );
    service.add_vehicle(VertexId(0));
    let mut cursor = service.subscribe();
    // Under `PTRIDER_TRAFFIC_EPOCHS` the engine construction itself applies
    // synthetic epochs, so all epoch assertions are relative to this base.
    let epoch0 = service.oracle().traffic_epoch();

    let base = service.submit(VertexId(40), VertexId(80), 1, 0.0).unwrap();
    assert!(!base.options.is_empty());
    service
        .respond(base.session, Decision::Decline, 0.0)
        .unwrap();
    let base_sig = canonical(&base.options);

    let outcome = service.apply_traffic_update(&TrafficModel::uniform(service.network(), 2.0), 1.0);
    assert_eq!(outcome.epoch, epoch0 + 1);
    assert!(outcome.ch_repaired);
    let congested = service.submit(VertexId(40), VertexId(80), 1, 2.0).unwrap();
    assert_ne!(
        canonical(&congested.options),
        base_sig,
        "2x traffic must re-price"
    );
    service
        .respond(congested.session, Decision::Decline, 2.0)
        .unwrap();

    let outcome = service.apply_traffic_update(&TrafficModel::free_flow(service.network()), 3.0);
    assert_eq!(outcome.epoch, epoch0 + 2);
    assert!(
        !outcome.ch_repaired,
        "free flow reinstates the build-time hierarchy without a pass"
    );
    let restored = service.submit(VertexId(40), VertexId(80), 1, 4.0).unwrap();
    assert_eq!(
        canonical(&restored.options),
        base_sig,
        "free flow restores the base bits"
    );
    service
        .respond(restored.session, Decision::Decline, 4.0)
        .unwrap();

    let stats = service.stats();
    assert_eq!(stats.traffic_epochs, 2);
    assert_eq!(stats.ch_customizations, 1, "the free-flow reset needs none");
    let traffic_events: Vec<_> = service
        .poll_events(&mut cursor)
        .into_iter()
        .filter(|e| matches!(e, EngineEvent::TrafficUpdated { .. }))
        .collect();
    assert_eq!(traffic_events.len(), 2);
}
