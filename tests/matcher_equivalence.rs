//! Property test: the single-side and dual-side searches return exactly the
//! same skyline of options as the naive kinetic-tree scan, on randomly
//! generated cities, fleets and request sequences.
//!
//! This is the key correctness invariant of the reproduction: the pruning
//! bounds (P1–P5 in DESIGN.md) are admissible, so they only reduce work and
//! never change the result. The engines are fed identical request sequences
//! (with the rider always choosing the first option), so their vehicle
//! states stay in lockstep and every subsequent matching call is compared on
//! identical worlds.

use proptest::prelude::*;
use ptrider::datagen::{synthetic_city, CityConfig, TripConfig, TripGenerator};
use ptrider::{EngineConfig, GridConfig, MatcherKind, PtRider, Request, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Canonical form of an option set for comparison (vehicle, rounded pickup,
/// rounded price).
fn canonical(options: &[ptrider::RideOption]) -> Vec<(u32, i64, i64)> {
    let mut v: Vec<(u32, i64, i64)> = options
        .iter()
        .map(|o| {
            (
                o.vehicle.0,
                (o.pickup_dist * 1e6).round() as i64,
                (o.price * 1e9).round() as i64,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

fn run_scenario(
    seed: u64,
    num_vehicles: usize,
    num_requests: usize,
    detour: f64,
    wait_secs: f64,
) -> Result<(), TestCaseError> {
    let city = synthetic_city(&CityConfig::tiny(seed));
    let config = EngineConfig::paper_defaults()
        .with_detour_factor(detour)
        .with_max_wait_secs(wait_secs);

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
    let vehicle_locations: Vec<VertexId> = (0..num_vehicles)
        .map(|_| VertexId(rng.gen_range(0..city.num_vertices() as u32)))
        .collect();
    let trips = TripGenerator::new(
        &city,
        TripConfig {
            num_trips: num_requests,
            seed: seed ^ 0x17,
            ..TripConfig::default()
        },
    )
    .generate();

    // One engine per matcher, fed identical inputs.
    let mut engines: Vec<PtRider> = MatcherKind::all()
        .iter()
        .map(|kind| {
            let mut e = PtRider::new(city.clone(), GridConfig::with_dimensions(4, 4), config);
            e.set_matcher(*kind);
            for &loc in &vehicle_locations {
                e.add_vehicle(loc);
            }
            e
        })
        .collect();

    for (i, trip) in trips.iter().enumerate() {
        let mut all_options = Vec::new();
        for engine in engines.iter_mut() {
            let id = ptrider::RequestId(i as u64);
            let request = Request::new(
                id,
                trip.origin,
                trip.destination,
                trip.riders,
                trip.time_secs,
            );
            let result = engine.submit_request(request).expect("valid request");
            all_options.push(result.options);
        }
        let reference = canonical(&all_options[0]);
        for (engine_idx, options) in all_options.iter().enumerate().skip(1) {
            prop_assert_eq!(
                &reference,
                &canonical(options),
                "matcher {} disagrees with naive on request #{} ({} -> {})",
                MatcherKind::all()[engine_idx],
                i,
                trip.origin,
                trip.destination
            );
        }
        // Every option set is a valid skyline: no option dominates another.
        for options in &all_options {
            for a in options.iter() {
                for b in options.iter() {
                    if !std::ptr::eq(a, b) {
                        prop_assert!(!a.dominates(b), "dominated option returned: {a:?} vs {b:?}");
                    }
                }
            }
        }

        // The rider deterministically takes the first (earliest-pickup)
        // option so all engines evolve identically.
        if !all_options[0].is_empty() {
            let choice_idx = 0usize;
            for (engine, options) in engines.iter_mut().zip(&all_options) {
                let id = ptrider::RequestId(i as u64);
                engine
                    .choose(id, &options[choice_idx], trip.time_secs)
                    .expect("chosen option must be assignable");
            }
        } else {
            for engine in engines.iter_mut() {
                let _ = engine.decline(ptrider::RequestId(i as u64));
            }
        }
    }

    // After the whole sequence the pruned matchers did no more verification
    // work than the naive one.
    let naive_verified = engines[0].stats().match_work.vehicles_verified;
    for engine in engines.iter().skip(1) {
        assert!(
            engine.stats().match_work.vehicles_verified <= naive_verified,
            "pruned matcher verified more vehicles than the naive scan"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn matchers_return_identical_skylines(
        seed in 0u64..1_000_000,
        num_vehicles in 1usize..16,
        num_requests in 1usize..10,
        detour in 0.1f64..0.8,
        wait_mins in 2.0f64..12.0,
    ) {
        run_scenario(seed, num_vehicles, num_requests, detour, wait_mins * 60.0)?;
    }
}

#[test]
fn matchers_agree_on_a_busy_fixed_scenario() {
    // A deterministic, denser scenario exercised on every test run.
    run_scenario(20090529, 24, 20, 0.3, 360.0).unwrap();
}
