//! Property test: forcing the parallel candidate-verification path produces
//! byte-identical skylines to the sequential reference, for all three
//! matchers, on randomly generated cities, fleets and request sequences.
//!
//! The parallel path partitions surviving candidate vehicles across worker
//! threads with per-thread skylines merged at the end; because skyline
//! membership is insertion-order independent and one vehicle's options stay
//! on one thread, the merged result must equal the sequential one exactly
//! (full `RideOption` equality, schedules included).
//!
//! All comparisons run inside a single `#[test]` per scenario family:
//! `set_parallel_mode` is process-global, so interleaving it with other
//! tests in the same binary would race. This file contains only these
//! tests, and each flips the mode around every matching call it makes.

use proptest::prelude::*;
use ptrider::datagen::{synthetic_city, CityConfig, TripConfig, TripGenerator};
use ptrider::{
    EngineConfig, GridConfig, MatcherKind, ParallelMode, PtRider, Request, RideOption, VertexId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn match_all(
    engine: &PtRider,
    request: &Request,
    mode: ParallelMode,
) -> Vec<(MatcherKind, Vec<RideOption>)> {
    ptrider::core::set_parallel_mode(mode);
    let out = MatcherKind::all()
        .iter()
        .map(|&kind| {
            (
                kind,
                engine
                    .match_request_with(kind, request)
                    .expect("valid request")
                    .options,
            )
        })
        .collect();
    ptrider::core::set_parallel_mode(ParallelMode::Auto);
    out
}

fn run_scenario(seed: u64, num_vehicles: usize, num_requests: usize) -> Result<(), TestCaseError> {
    let city = synthetic_city(&CityConfig::tiny(seed));
    let config = EngineConfig::paper_defaults();
    let mut engine = PtRider::new(city, GridConfig::with_dimensions(4, 4), config);
    engine.set_matcher(MatcherKind::DualSide);

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9a11e1);
    let n = engine.network().num_vertices() as u32;
    for _ in 0..num_vehicles {
        engine.add_vehicle(VertexId(rng.gen_range(0..n)));
    }
    let trips = TripGenerator::new(
        engine.network(),
        TripConfig {
            num_trips: num_requests,
            seed: seed ^ 0x77,
            ..TripConfig::default()
        },
    )
    .generate();

    for (i, trip) in trips.iter().enumerate() {
        let id = engine.allocate_request_id();
        let request = Request::new(id, trip.origin, trip.destination, trip.riders, i as f64);

        let sequential = match_all(&engine, &request, ParallelMode::Sequential);
        let parallel = match_all(&engine, &request, ParallelMode::Parallel);
        for ((kind, seq), (_, par)) in sequential.iter().zip(&parallel) {
            prop_assert_eq!(
                seq,
                par,
                "matcher {} parallel skyline differs on request #{}",
                kind,
                i
            );
        }

        // Assign via the normal engine path so later requests see busy
        // vehicles (the interesting case for verification batches).
        let (rid, options) = engine.submit(trip.origin, trip.destination, trip.riders, i as f64);
        if let Some(first) = options.first() {
            let _ = engine.choose(rid, first, i as f64);
        } else {
            let _ = engine.decline(rid);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn parallel_and_sequential_skylines_are_identical(
        seed in 0u64..1_000_000,
        num_vehicles in 1usize..24,
        num_requests in 1usize..8,
    ) {
        run_scenario(seed, num_vehicles, num_requests)?;
    }
}

#[test]
fn parallel_matches_sequential_on_a_dense_fixed_scenario() {
    // Large enough that every matcher's verification batches actually span
    // multiple worker threads.
    run_scenario(20090529, 48, 12).unwrap();
}
