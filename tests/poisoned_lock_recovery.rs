//! A panic inside the admission critical section must degrade into typed
//! errors, not cascading panics — and the journal must bring the service
//! back untorn.
//!
//! The scenario: an injected [`fault::MID_COMMIT`] panic kills a `respond`
//! *after* the vehicle accepted the insertion but *before* the spatial
//! index was updated and before anything was journaled. The sessions and
//! world locks poison. From there:
//!
//! * session-lifecycle calls surface [`ServiceError::Unavailable`];
//! * read-only accessors (`stats`, `session_state`, `fingerprint`) stay
//!   live by re-entering the poisoned locks;
//! * `RideService::recover` over the journal reproduces the exact
//!   pre-crash state — the half-committed respond was never journaled, so
//!   it simply never happened, and the rider's offer is still open.
//!
//! This test owns its process's global fault plan; it lives in its own
//! test binary so no concurrently running test can observe the armed plan.

use ptrider::roadnet::RoadNetworkBuilder;
use ptrider::{
    fault, Decision, EngineConfig, GridConfig, Journal, JournalConfig, OptionId, PtRider,
    RideService, RoadNetwork, ServiceConfig, ServiceError, SessionState, VertexId,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// A 5x5 lattice with 1 km edges.
fn lattice() -> RoadNetwork {
    let side = 5usize;
    let mut b = RoadNetworkBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_vertex(x as f64 * 1000.0, y as f64 * 1000.0));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let u = ids[y * side + x];
            if x + 1 < side {
                b.add_bidirectional_edge(u, ids[y * side + x + 1], 1000.0);
            }
            if y + 1 < side {
                b.add_bidirectional_edge(u, ids[(y + 1) * side + x], 1000.0);
            }
        }
    }
    b.build().unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptrider-poison-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn poisoned_locks_surface_unavailable_and_recovery_rebuilds_the_service() {
    let dir = temp_dir("mid-commit");
    let config = ServiceConfig::default().with_offer_ttl_secs(1e9);
    let journal = Journal::create(&dir, JournalConfig::default()).unwrap();
    let svc = RideService::new(
        lattice(),
        GridConfig::with_dimensions(3, 3),
        EngineConfig::default(),
    )
    .with_service_config(config)
    .with_journal(journal);

    svc.add_vehicle(VertexId(0));
    let offer = svc.submit(VertexId(6), VertexId(8), 1, 0.0).unwrap();
    assert!(!offer.options.is_empty());
    let pre_crash = svc.fingerprint();
    let pre_seq = svc.journal_next_seq().unwrap();

    // Kill the confirm mid-commit: the vehicle has accepted the insertion,
    // the index update and the journal append have not happened yet.
    fault::arm(fault::FaultPlan::panic_once(fault::MID_COMMIT, 0));
    let crash = catch_unwind(AssertUnwindSafe(|| {
        svc.respond(offer.session, Decision::Choose(OptionId(0)), 1.0)
    }));
    fault::disarm();
    assert!(crash.is_err(), "the injected mid-commit panic must fire");

    // Mutating session calls refuse the torn state with a typed error.
    match svc.submit(VertexId(12), VertexId(14), 1, 2.0) {
        Err(ServiceError::Unavailable(lock)) => {
            assert!(["sessions", "world", "ledger"].contains(&lock), "{lock}")
        }
        other => panic!("expected Unavailable, got {other:?}"),
    }
    assert!(matches!(
        svc.respond(offer.session, Decision::Decline, 2.0),
        Err(ServiceError::Unavailable(_))
    ));

    // Read-only accessors keep answering on the poisoned service.
    assert_eq!(svc.stats().offers_made, 1);
    assert_eq!(svc.num_vehicles(), 1);
    assert_eq!(
        svc.session_state(offer.session),
        Some(SessionState::Offered),
        "the session never resolved: the panic predates the state change"
    );
    assert_eq!(
        svc.journal_next_seq(),
        Some(pre_seq),
        "nothing was journaled by the killed respond"
    );

    drop(svc);

    // Recovery: the torn in-memory commit was never journaled, so replay
    // reconstructs the exact pre-crash state with the offer still open.
    let engine = PtRider::new(
        lattice(),
        GridConfig::with_dimensions(3, 3),
        EngineConfig::default(),
    );
    let recovered = RideService::recover(engine, config, &dir, JournalConfig::default())
        .expect("recovery succeeds");
    assert_eq!(recovered.fingerprint(), pre_crash, "bit-identical recovery");
    assert_eq!(
        recovered.session_state(offer.session),
        Some(SessionState::Offered)
    );

    // The rider's confirm now succeeds on the recovered service.
    let confirmation = recovered
        .respond(offer.session, Decision::Choose(OptionId(0)), 1.0)
        .unwrap()
        .expect("the surviving offer confirms");
    assert_eq!(confirmation.request, offer.request);
    assert_eq!(recovered.stats().offers_confirmed, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
