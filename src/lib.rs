//! PTRider — a price-and-time-aware ridesharing system (VLDB 2018),
//! reproduced in Rust.
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`roadnet`] — road network, shortest paths, grid index
//!   (`ptrider-roadnet`);
//! * [`vehicles`] — vehicles, kinetic trees, vehicle index
//!   (`ptrider-vehicles`);
//! * [`core`] — price model, skyline options, matchers and the engine
//!   (`ptrider-core`);
//! * [`datagen`] — synthetic Shanghai-like workloads and the Fig. 1 example
//!   (`ptrider-datagen`);
//! * [`sim`] — the day simulator and its statistics (`ptrider-sim`).
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! ```
//! use ptrider::{EngineConfig, GridConfig, MatcherKind, PtRider};
//! use ptrider::datagen::{synthetic_city, CityConfig};
//!
//! let city = synthetic_city(&CityConfig::tiny(1));
//! let mut engine = PtRider::new(city, GridConfig::with_dimensions(4, 4),
//!                               EngineConfig::paper_defaults());
//! engine.set_matcher(MatcherKind::DualSide);
//! let taxi = engine.add_vehicle(ptrider::VertexId(0));
//! let (request, options) = engine.submit(ptrider::VertexId(55), ptrider::VertexId(99), 2, 0.0);
//! assert!(!options.is_empty());
//! engine.choose(request, &options[0], 0.0).unwrap();
//! assert!(!engine.vehicle(taxi).unwrap().is_empty());
//! ```

#![warn(missing_docs)]

/// Road-network substrate (re-export of `ptrider-roadnet`).
pub use ptrider_roadnet as roadnet;

/// Vehicle substrate (re-export of `ptrider-vehicles`).
pub use ptrider_vehicles as vehicles;

/// Engine, matchers, price model and skyline (re-export of `ptrider-core`).
pub use ptrider_core as core;

/// Synthetic workloads and the Fig. 1 scenario (re-export of
/// `ptrider-datagen`).
pub use ptrider_datagen as datagen;

/// Day simulator and statistics (re-export of `ptrider-sim`).
pub use ptrider_sim as sim;

pub use ptrider_core::{
    BatchAdmission, BatchOutcome, DistanceBackend, EngineConfig, EngineStats, GridConfig,
    LandmarkIndex, MatchResult, MatchRuntime, MatchStats, Matcher, MatcherKind, ParallelMode,
    PriceModel, PtRider, Request, RequestId, RideOption, RoadNetwork, Skyline, Speed, Stop,
    StopKind, Vehicle, VehicleId, VertexId,
};
pub use ptrider_roadnet::ContractionHierarchy;
pub use ptrider_sim::{ChoicePolicy, SimConfig, SimulationReport, Simulator};
