//! PTRider — a price-and-time-aware ridesharing system (VLDB 2018),
//! reproduced in Rust.
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`roadnet`] — road network, shortest paths, grid index
//!   (`ptrider-roadnet`);
//! * [`vehicles`] — vehicles, kinetic trees, vehicle index
//!   (`ptrider-vehicles`);
//! * [`core`] — price model, skyline options, matchers and the engine
//!   (`ptrider-core`);
//! * [`datagen`] — synthetic Shanghai-like workloads and the Fig. 1 example
//!   (`ptrider-datagen`);
//! * [`sim`] — the day simulator and its statistics (`ptrider-sim`).
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! The front door is the [`RideService`]: a concurrent (`&self`) facade
//! exposing PTRider's two-phase interaction as a typed session lifecycle —
//! `submit` returns an [`Offer`] with a [`SessionId`] and a deadline, the
//! rider answers with [`Decision::Choose`] / [`Decision::Decline`], and
//! `tick` expires offers the rider abandoned:
//!
//! ```
//! use ptrider::{Decision, EngineConfig, GridConfig, OptionId, RideService, VertexId};
//! use ptrider::datagen::{synthetic_city, CityConfig};
//!
//! let city = synthetic_city(&CityConfig::tiny(1));
//! let service = RideService::new(city, GridConfig::with_dimensions(4, 4),
//!                                EngineConfig::paper_defaults());
//! let taxi = service.add_vehicle(VertexId(0));
//!
//! // Submit → Offer: the price/time skyline plus a typed session handle.
//! let offer = service.submit(VertexId(55), VertexId(99), 2, 0.0).unwrap();
//! assert!(!offer.options.is_empty());
//!
//! // The rider picks the cheapest option and confirms the session.
//! let (cheapest, _) = offer
//!     .iter_ids()
//!     .min_by(|(_, a), (_, b)| a.price.partial_cmp(&b.price).unwrap())
//!     .unwrap();
//! let confirmation = service
//!     .respond(offer.session, Decision::Choose(cheapest), 0.0)
//!     .unwrap()
//!     .unwrap();
//! assert_eq!(confirmation.request, offer.request);
//! assert!(service.with_vehicle(taxi, |v| !v.is_empty()).unwrap());
//!
//! // Double responses are rejected by the session state machine.
//! assert!(service.respond(offer.session, Decision::Choose(OptionId(0)), 0.0).is_err());
//! ```
//!
//! The original sequential facade ([`PtRider`], `&mut self`,
//! `submit`/`choose`) remains available as a thin shim over the same
//! engine internals — the service is property-tested to produce bit-
//! identical option skylines.
//!
//! For remote clients the [`server`] module (re-export of
//! `ptrider-server`) puts the same lifecycle behind a zero-dependency
//! HTTP/1.1 front door — JSON endpoints, SSE event streams, Prometheus
//! exposition, bounded backpressure and graceful shutdown. See
//! `examples/wire_quickstart.rs` for a client-and-server walkthrough and
//! DESIGN.md ("Network front door") for the threading and shedding model.

#![warn(missing_docs)]

/// Road-network substrate (re-export of `ptrider-roadnet`).
pub use ptrider_roadnet as roadnet;

/// Vehicle substrate (re-export of `ptrider-vehicles`).
pub use ptrider_vehicles as vehicles;

/// Engine, matchers, price model and skyline (re-export of `ptrider-core`).
pub use ptrider_core as core;

/// Synthetic workloads and the Fig. 1 scenario (re-export of
/// `ptrider-datagen`).
pub use ptrider_datagen as datagen;

/// Day simulator and statistics (re-export of `ptrider-sim`).
pub use ptrider_sim as sim;

/// HTTP/JSON front door with SSE streaming (re-export of
/// `ptrider-server`).
pub use ptrider_server as server;

pub use ptrider_core::{
    BatchAdmission, BatchOutcome, Confirmation, Decision, DistanceBackend, EngineConfig,
    EngineEvent, EngineStats, EventCursor, EventLog, GridConfig, Journal, JournalConfig,
    JournalError, LandmarkIndex, MatchResult, MatchRuntime, MatchStats, Matcher, MatcherKind,
    Offer, OptionId, ParallelMode, PriceModel, PtRider, Request, RequestId, RideOption,
    RideService, RoadNetwork, ServiceConfig, ServiceError, SessionId, SessionState, Skyline, Speed,
    Stop, StopKind, TrafficEdge, TrafficModel, TrafficUpdateOutcome, Vehicle, VehicleId, VertexId,
};
pub use ptrider_core::{
    Histogram, HistogramSnapshot, Span, Stage, Telemetry, TelemetryConfig, TelemetryLevel,
    TraceEvent,
};
pub use ptrider_roadnet::fault;
pub use ptrider_roadnet::{CchTopology, ContractionHierarchy};
pub use ptrider_server::{Server, ServerConfig, ServerHandle};
pub use ptrider_sim::{ChoicePolicy, SimConfig, SimulationReport, Simulator, TrafficSimConfig};
