//! Offline vendored mini-criterion.
//!
//! Implements the benchmark-harness surface the E2–E10 benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! group knobs (`sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` / `bench_with_input`, `BenchmarkId` and `Bencher::iter`
//! — with a simple wall-clock sampler that prints mean / min / max
//! iteration time per benchmark. No statistical analysis, plots or HTML
//! reports; replace with the real crate when a registry is reachable.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Trait unifying `&str` and [`BenchmarkId`] arguments.
pub trait IntoBenchmarkId {
    /// The rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (batches) measured per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for measurement.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a routine.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), &mut f);
        self
    }

    /// Benchmarks a routine parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
            iters: 0,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id);
        if bencher.samples_ns.is_empty() {
            println!("bench {full:<60} (no samples: Bencher::iter never called)");
            return;
        }
        let mean = bencher.samples_ns.iter().sum::<f64>() / bencher.samples_ns.len() as f64;
        let min = bencher
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = bencher
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "bench {full:<60} mean {:>12} min {:>12} max {:>12} ({} iters)",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            bencher.iters
        );
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Measures a closure's wall-clock time per iteration.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly: warm-up for the configured duration, then
    /// `sample_size` timed batches within the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Choose a batch size so all samples fit the measurement budget.
        let budget = self.measurement_time.as_secs_f64();
        let total_iters = (budget / per_iter.max(1e-9)).ceil() as u64;
        let batch = (total_iters / self.sample_size as u64).max(1);

        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / batch as f64);
            self.iters += batch;
            if measure_start.elapsed().as_secs_f64() > budget * 2.0 {
                break; // Routine got slower than estimated; stop over-budget.
            }
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").into_id(), "p");
    }
}
