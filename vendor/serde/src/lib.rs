//! Offline vendored stub of `serde`.
//!
//! Provides `Serialize` and `Deserialize` as marker traits plus the derive
//! macros from the sibling `serde_derive` stub. The workspace derives these
//! traits throughout for forward compatibility, but nothing serialises
//! through serde yet (machine-readable reports are hand-rendered JSON), so
//! marker semantics are sufficient. Replace `vendor/serde*` with the real
//! crates once a crate registry is reachable from the build environment.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
