//! Offline vendored `rand_chacha` stub: a genuine ChaCha8 keystream
//! generator implementing the vendored `rand` traits.
//!
//! The cipher core follows RFC 7539's state layout (constants, 256-bit key,
//! 64-bit block counter, 64-bit stream id) with 8 rounds instead of 20.
//! Output words are not byte-for-byte identical to upstream `rand_chacha`
//! (which applies its own seeding and word-ordering conventions); everything
//! in this workspace only needs a deterministic, well-mixed stream.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds, buffered one 16-word block at a time.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Words 0..4 constants, 4..12 key, 12..14 counter, 14..16 stream id.
    initial: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    cursor: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.initial;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &i)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.initial.iter()))
        {
            *out = w.wrapping_add(i);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.initial[12] as u64 | ((self.initial[13] as u64) << 32)).wrapping_add(1);
        self.initial[12] = counter as u32;
        self.initial[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.buffer[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut initial = [0u32; 16];
        initial[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            initial[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter and stream id start at zero.
        ChaCha8Rng {
            initial,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn blocks_advance_the_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x = rng.gen_range(10..20u32);
        assert!((10..20).contains(&x));
        let f = rng.gen_range(0.0f64..1.0);
        assert!((0.0..1.0).contains(&f));
    }
}
