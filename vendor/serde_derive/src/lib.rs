//! Offline vendored stub of `serde_derive`.
//!
//! The container this repository builds in has no crates.io access, so the
//! real serde is unavailable. The workspace only needs `Serialize` /
//! `Deserialize` as *marker* traits today (nothing serialises yet; JSON
//! reports are hand-rendered), so the derive macros simply emit empty marker
//! impls. Swap `vendor/serde*` for the real crates when a registry is
//! available.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a derive was applied to.
///
/// Scans only top-level tokens, so `struct`/`enum` appearing inside
/// attribute groups or doc comments cannot confuse it. Panics on generic
/// types: nothing in this workspace derives serde on a generic type, and a
/// marker impl for one would need bound plumbing this stub does not carry.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = &tok {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde stub: expected type name, got {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        panic!("serde stub: generic type `{name}` is not supported");
                    }
                }
                return name;
            }
        }
    }
    panic!("serde stub: no struct/enum/union found in derive input");
}

/// Stub `#[derive(Serialize)]`: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Stub `#[derive(Deserialize)]`: emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
