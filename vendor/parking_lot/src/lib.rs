//! Offline vendored stub of `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's non-poisoning
//! API (`lock()`, `read()`, `write()` return guards directly). A poisoned
//! std lock is recovered with `into_inner`, matching parking_lot's
//! behaviour of not propagating panics through locks. Replace with the real
//! crate when a registry is reachable; call sites need no changes.

use std::fmt;
use std::sync::{self, TryLockError};

/// Non-poisoning mutex with the `parking_lot::Mutex` API subset the
/// workspace uses.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` API
/// subset the workspace uses.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unlocks() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
