//! Offline vendored mini-proptest.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! `ProptestConfig`, `TestCaseError`, the `Strategy` trait with `prop_map`,
//! range and tuple strategies, and `collection::vec`. Differences from the
//! real crate: cases are generated from a deterministic per-test seed (no
//! env-controlled RNG, no persisted failure files) and failing cases are
//! reported but **not shrunk**. That is acceptable here because every test
//! prints its generated inputs on failure.

use rand::{RngCore, SplitMix64};
use std::fmt;
use std::ops::Range;

/// Runner configuration; only `cases` is honoured (`max_shrink_iters` is
/// accepted for source compatibility — this stub never shrinks).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Ignored (no shrinking in the stub).
    pub max_shrink_iters: u32,
    /// Ignored.
    pub timeout: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            timeout: 0,
        }
    }
}

/// Error produced by a failing `prop_assert!` (or returned manually).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG used to generate test cases.
pub struct TestRng(SplitMix64);

impl TestRng {
    /// Derives a per-test RNG from the test's fully qualified name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SplitMix64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// A fixed value as a (degenerate) strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fails the current property with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Fails the current property unless both expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Declares property tests.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u32..10, v in proptest::collection::vec(0f64..1.0, 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    // Render inputs before the body runs: the body may move
                    // or shadow the bindings.
                    let mut __inputs = String::new();
                    $(__inputs.push_str(&format!(
                        "\n    {} = {:?}",
                        stringify!($arg),
                        $arg
                    ));)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\n  inputs:{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in -4i64..4, f in 0.5f64..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_strategy_obeys_length(v in proptest::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_prop_map_compose(
            p in (0u32..10, 0u32..10).prop_map(|(a, b)| (a, a + b)),
        ) {
            prop_assert!(p.1 >= p.0, "mapped tuple must be ordered: {:?}", p);
            prop_assert_eq!(p.0.min(9), p.0);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::__proptest_impl! { crate::ProptestConfig { cases: 1, ..Default::default() };
                fn always_fails(x in 0u32..2) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"));
        assert!(msg.contains("inputs"));
    }
}
