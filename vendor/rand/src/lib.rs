//! Offline vendored stub of `rand`.
//!
//! Implements the small trait surface the workspace uses — `RngCore`,
//! `Rng::gen_range` over integer and float ranges, and
//! `SeedableRng::seed_from_u64` — with the same *semantics* as rand 0.8
//! (uniform sampling) but not the same byte streams. Every consumer in this
//! workspace treats the RNG as an arbitrary deterministic source (property
//! tests, synthetic workload generation), so stream compatibility with
//! upstream rand is deliberately not a goal. Replace with the real crate
//! when a registry is reachable.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform random source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniformly random boolean with probability `p` of being `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }

    /// A value sampled from the standard distribution of `T` (floats in
    /// `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

/// Types samplable by [`Rng::gen`] (stand-in for rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable random source.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed via SplitMix64 (the same
    /// expansion idea rand 0.8 uses) and constructs the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used for seed expansion and as the test RNG of the vendored
/// proptest stub.
pub struct SplitMix64(pub u64);

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(bits: u64) -> f32 {
    ((bits >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, bound)` via Lemire's widening-multiply method with
/// rejection (unbiased).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f32(rng.next_u64())
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f32(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(7);
        let mut b = SplitMix64(7);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64(42);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(1.25f64..2.5);
            assert!((1.25..2.5).contains(&f));
            let u = rng.gen_range(0usize..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn uniform_below_covers_all_residues() {
        let mut rng = SplitMix64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[uniform_below(&mut rng, 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
