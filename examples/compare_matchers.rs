//! Compares the three matching algorithms (naive kinetic-tree scan,
//! single-side search, dual-side search) on the same request workload:
//! identical option sets, very different amounts of work.
//!
//! Run with `cargo run --release --example compare_matchers -- [vehicles] [requests]`
//! (defaults: 600 vehicles, 150 requests).

use ptrider::datagen::{synthetic_city, CityConfig, TripConfig, TripGenerator};
use ptrider::{EngineConfig, GridConfig, MatcherKind, PtRider, Request, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let num_vehicles: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(600);
    let num_requests: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(150);

    let city_config = CityConfig::medium(2024);
    let city = synthetic_city(&city_config);
    println!(
        "city: {} vertices | fleet: {num_vehicles} | requests: {num_requests}",
        city.num_vertices()
    );

    let trips = TripGenerator::new(
        &city,
        TripConfig {
            num_trips: num_requests,
            seed: 17,
            ..TripConfig::default()
        },
    )
    .generate();

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let vehicle_locations: Vec<VertexId> = (0..num_vehicles)
        .map(|_| VertexId(rng.gen_range(0..city.num_vertices() as u32)))
        .collect();

    println!(
        "\n{:<14} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "matcher", "total ms", "ms/request", "verified/req", "exact dist/req", "options/req"
    );

    let mut option_sets: Vec<Vec<(u32, f64, f64)>> = Vec::new();
    for kind in MatcherKind::all() {
        let mut engine = PtRider::new(
            city.clone(),
            GridConfig::with_dimensions(12, 12),
            EngineConfig::paper_defaults(),
        );
        engine.set_matcher(kind);
        for &loc in &vehicle_locations {
            engine.add_vehicle(loc);
        }

        let started = Instant::now();
        let mut all_options = Vec::new();
        for trip in &trips {
            let id = engine.allocate_request_id();
            let request = Request::new(
                id,
                trip.origin,
                trip.destination,
                trip.riders,
                trip.time_secs,
            );
            let Ok(result) = engine.submit_request(request) else {
                all_options.push(Vec::new());
                continue;
            };
            all_options.push(
                result
                    .options
                    .iter()
                    .map(|o| (o.vehicle.0, o.pickup_dist, o.price))
                    .collect(),
            );
            engine.decline(id).unwrap();
        }
        let elapsed = started.elapsed().as_secs_f64() * 1000.0;
        let stats = engine.stats();
        println!(
            "{:<14} {:>10.1} {:>12.3} {:>12.1} {:>14.1} {:>12.2}",
            kind.to_string(),
            elapsed,
            elapsed / trips.len() as f64,
            stats.avg_vehicles_verified(),
            stats.match_work.exact_distance_computations as f64 / trips.len() as f64,
            stats.avg_options_per_request(),
        );
        option_sets.push(all_options.into_iter().flatten().collect());
    }

    // The three matchers must return exactly the same skylines.
    let reference = &option_sets[0];
    for (i, set) in option_sets.iter().enumerate().skip(1) {
        assert_eq!(
            reference.len(),
            set.len(),
            "matcher #{i} returned a different number of options"
        );
    }
    println!(
        "\nall matchers returned identical option sets ({} options total)",
        reference.len()
    );
}
