//! Wire quickstart: start the HTTP front door on an ephemeral port, then
//! play both sides of the ride lifecycle over a real socket — submit a
//! ride as JSON, read the offer skyline, confirm an option, watch the
//! event stream replay the session, and scrape `/metrics`.
//!
//! The server is `ptrider::server` (a re-export of `ptrider-server`): a
//! zero-dependency HTTP/1.1 listener over `std::net` with SSE streaming,
//! Prometheus exposition, bounded backpressure and graceful shutdown. The
//! client below is plain `std::net::TcpStream` — any HTTP client works.
//!
//! Run with `cargo run --example wire_quickstart`.

use ptrider::datagen::{synthetic_city, CityConfig};
use ptrider::{EngineConfig, GridConfig, MatcherKind, RideService, Server, ServerConfig, VertexId};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Sends one request on a keep-alive connection and returns
/// `(status, body)`.
fn request(stream: &mut TcpStream, method: &str, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nhost: quickstart\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).unwrap();
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).unwrap(), 1, "server closed early");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).unwrap();
    let status: u16 = head.split(' ').nth(1).unwrap().parse().unwrap();
    let length: usize = head
        .lines()
        .find_map(|l| {
            l.to_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).unwrap();
    (status, String::from_utf8(body).unwrap())
}

/// Extracts `"key":<integer>` from a flat JSON body.
fn field(body: &str, key: &str) -> u64 {
    let start = body.find(&format!("\"{key}\":")).unwrap() + key.len() + 3;
    let rest = &body[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap()
}

fn main() {
    // 1. The same service every in-process example builds — then a server
    //    in front of it. Port 0 asks the OS for an ephemeral port.
    let city = synthetic_city(&CityConfig::tiny(7));
    let service = Arc::new(
        RideService::new(
            city,
            GridConfig::with_dimensions(4, 4),
            EngineConfig::paper_defaults(),
        )
        .with_matcher(MatcherKind::DualSide),
    );
    for i in [0u32, 9, 37, 55, 62, 90, 99] {
        service.add_vehicle(VertexId(i));
    }
    let mut handle =
        Server::start(service, ServerConfig::default().with_addr("127.0.0.1:0")).expect("bind");
    let addr = handle.addr();
    println!("serving on http://{addr}");

    // 2. A rider submits over the wire and reads the offer skyline.
    let mut client = TcpStream::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let (status, offer) = request(
        &mut client,
        "POST",
        "/rides",
        r#"{"origin":44,"destination":97,"riders":2,"now":0.0}"#,
    );
    assert_eq!(status, 200);
    let session = field(&offer, "session");
    println!("offer for session {session}: {offer}");

    // 3. The rider confirms option 0 on the same connection (keep-alive).
    let (status, confirmation) = request(
        &mut client,
        "POST",
        &format!("/sessions/{session}/respond"),
        r#"{"decision":"choose","option":0,"now":1.0}"#,
    );
    assert_eq!(status, 200);
    println!("confirmed: {confirmation}");

    // 4. The event stream replays the session's history as SSE frames.
    let mut sse = TcpStream::connect(addr).unwrap();
    sse.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    sse.write_all(
        format!("GET /events?session={session}&limit=3 HTTP/1.1\r\nhost: q\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let mut frames = 0;
    for line in BufReader::new(sse).lines().map_while(Result::ok) {
        if let Some(event) = line.strip_prefix("event: ") {
            println!("sse frame: {event}");
            frames += 1;
            if frames == 3 {
                break;
            }
        }
    }

    // 5. Prometheus exposition, straight off the same port.
    let (status, metrics) = request(&mut client, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let served: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("ptrider_server_requests_total"))
        .collect();
    println!(
        "scraped {} metric lines, e.g. {served:?}",
        metrics.lines().count()
    );

    // 6. Graceful shutdown: drains in-flight requests, flushes the journal
    //    (when one is attached) and joins every connection thread.
    assert!(handle.shutdown());
    println!("drained and stopped");
}
