//! Walkthrough of the paper's worked example (Section 2, Fig. 1).
//!
//! Vehicle c1 is at v1 and already serves R1 = <v2, v16, 2, 5, 0.2>; vehicle
//! c2 is empty at v13. The new request R2 = <v12, v17, 2, 5, 0.2> must
//! receive exactly the two non-dominated options of the paper:
//! r1 = <c1, 14, 4> and r2 = <c2, 8, 8.8>.
//!
//! Run with `cargo run --example fig1_walkthrough`.

use ptrider::datagen::Fig1Scenario;
use ptrider::{GridConfig, MatcherKind, PtRider};

fn main() {
    let scenario = Fig1Scenario::new();

    for kind in [
        MatcherKind::Naive,
        MatcherKind::SingleSide,
        MatcherKind::DualSide,
    ] {
        println!("\n== matching algorithm: {kind} ==");
        let mut engine = PtRider::new(
            scenario.network.clone(),
            GridConfig::with_dimensions(4, 4),
            scenario.config,
        );
        engine.set_matcher(kind);

        // Two taxis: c1 at v1, c2 at v13.
        let c1 = engine.add_vehicle(scenario.c1_start);
        let c2 = engine.add_vehicle(scenario.c2_start);
        println!(
            "c1 = {c1} at {}, c2 = {c2} at {}",
            scenario.c1_start, scenario.c2_start
        );

        // Step 1: R1 = <v2, v16, 2, 5, 0.2> is assigned to c1 (its only
        // non-dominated option), reproducing the paper's starting state with
        // trip schedule <v1, v2, v16>.
        let (r1, options) = engine.submit(scenario.r1.0, scenario.r1.1, scenario.r1.2, 0.0);
        println!("R1 receives {} option(s):", options.len());
        for o in &options {
            println!("  {} pickup={} price={}", o.vehicle, o.pickup_dist, o.price);
        }
        let chosen = &options[0];
        assert_eq!(chosen.vehicle, c1);
        engine.choose(r1, chosen, 0.0).unwrap();
        println!(
            "c1 schedule: {:?}",
            engine
                .vehicle(c1)
                .unwrap()
                .current_schedule()
                .iter()
                .map(|s| s.location.to_string())
                .collect::<Vec<_>>()
        );

        // Step 2: R2 = <v12, v17, 2, 5, 0.2>.
        let (_r2, options) = engine.submit(scenario.r2.0, scenario.r2.1, scenario.r2.2, 0.0);
        println!("R2 receives {} option(s):", options.len());
        for o in &options {
            println!(
                "  {} pickup={:.0} price={:.1}   (paper: c2 -> <8, 8.8>, c1 -> <14, 4>)",
                o.vehicle, o.pickup_dist, o.price
            );
        }
        assert_eq!(options.len(), 2, "the paper's example returns two options");
        let by_c1 = options.iter().find(|o| o.vehicle == c1).unwrap();
        let by_c2 = options.iter().find(|o| o.vehicle == c2).unwrap();
        assert_eq!(by_c1.pickup_dist, 14.0);
        assert!((by_c1.price - 4.0).abs() < 1e-9);
        assert_eq!(by_c2.pickup_dist, 8.0);
        assert!((by_c2.price - 8.8).abs() < 1e-9);
    }

    println!("\nAll three matchers reproduce the paper's example exactly.");
}
