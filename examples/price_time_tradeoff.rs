//! The motivating scenario of the paper's introduction: a couple far from
//! the city centre wants to get home. Getting a taxi quickly costs extra
//! (nearby vehicles must detour), while waiting longer is cheaper. PTRider
//! returns the whole price/time skyline so the riders can decide.
//!
//! This example constructs that situation explicitly: several busy vehicles
//! near the "seaside" and an empty vehicle far away, then prints the
//! skyline and what each rider archetype (impatient / thrifty / balanced)
//! would pick.
//!
//! Run with `cargo run --example price_time_tradeoff`.

use ptrider::datagen::{synthetic_city, CityConfig};
use ptrider::{
    ChoicePolicy, Decision, EngineConfig, GridConfig, MatcherKind, OptionId, RideService, VertexId,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A 20x20 city; the "seaside" is the south-east corner, the centre is in
    // the middle.
    let config = CityConfig {
        cols: 20,
        rows: 20,
        ..CityConfig::tiny(99)
    };
    let city = synthetic_city(&config);
    let vertex = |x: u32, y: u32| VertexId(y * 20 + x);

    let service = RideService::new(
        city,
        GridConfig::with_dimensions(5, 5),
        EngineConfig::paper_defaults()
            .with_max_wait_secs(600.0)
            // A slightly more generous service constraint than the default so
            // that ridesharing with the busy vehicles is actually feasible.
            .with_detour_factor(0.4),
    )
    .with_matcher(MatcherKind::DualSide);

    // Busy vehicles near the seaside, already carrying riders heading back
    // toward the centre, plus one empty vehicle downtown.
    let seaside = vertex(18, 2);
    let home = vertex(10, 17);
    let busy_positions = [vertex(16, 1), vertex(19, 4), vertex(15, 3)];
    let mut busy = Vec::new();
    for &pos in &busy_positions {
        busy.push(service.add_vehicle(pos));
    }
    let downtown_cab = service.add_vehicle(vertex(9, 10));

    // Give each busy vehicle an existing passenger heading roughly
    // downtown, each through its own offer/respond session.
    for (i, &vehicle) in busy.iter().enumerate() {
        let origin = busy_positions[i];
        let dest = vertex(8 + i as u32, 12);
        let offer = service.submit(origin, dest, 1, 0.0).unwrap();
        let (own, _) = offer
            .iter_ids()
            .find(|(_, o)| o.vehicle == vehicle)
            .expect("the co-located vehicle offers an option");
        service
            .respond(offer.session, Decision::Choose(own), 0.0)
            .unwrap();
    }

    // The couple at the seaside requests a ride home.
    let offer = service.submit(seaside, home, 2, 60.0).unwrap();
    let options = offer.options.clone();
    println!("request: {} -> {} for 2 riders", seaside, home);
    println!("{} non-dominated options:\n", options.len());
    println!(
        "{:>10} {:>14} {:>10} {:>10}",
        "vehicle", "pickup (min)", "price", "busy?"
    );
    for o in &options {
        let is_busy = busy.contains(&o.vehicle);
        println!(
            "{:>10} {:>14.1} {:>10.2} {:>10}",
            o.vehicle.to_string(),
            o.pickup_secs / 60.0,
            o.price,
            if is_busy { "yes" } else { "no" }
        );
    }
    assert!(
        !options.is_empty(),
        "the couple must receive at least one option"
    );
    if options.len() >= 2 {
        println!(
            "\nthe skyline exposes a price/time trade-off: no option is best in both dimensions."
        );
    }

    // What would different riders choose?
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for (label, policy) in [
        ("impatient (fastest)", ChoicePolicy::Fastest),
        ("thrifty (cheapest)", ChoicePolicy::Cheapest),
        (
            "balanced (alpha=0.5)",
            ChoicePolicy::Weighted { alpha: 0.5 },
        ),
    ] {
        let pick = policy.choose(&options, &mut rng).unwrap();
        println!(
            "\n{label:22} -> {} (pickup {:.1} min, price {:.2})",
            pick.vehicle,
            pick.pickup_secs / 60.0,
            pick.price
        );
    }
    println!("\nmention of vehicle {downtown_cab}: the downtown cab is usually the cheap-but-late option.");

    // The balanced couple actually answers their open session.
    let balanced = ChoicePolicy::Weighted { alpha: 0.5 }
        .choose_index(&options, &mut rng)
        .unwrap();
    let confirmation = service
        .respond(
            offer.session,
            Decision::Choose(OptionId(balanced as u32)),
            60.0,
        )
        .expect("the offer is still open")
        .expect("choose confirms");
    println!(
        "\nsession {} confirmed on {} for {:.2}",
        confirmation.session, confirmation.option.vehicle, confirmation.option.price
    );
}
