//! Quickstart: build a small city, register a fleet, open a ride session
//! and inspect the price/time offer PTRider returns — then confirm it
//! through the typed session lifecycle.
//!
//! Run with `cargo run --example quickstart`.

use ptrider::datagen::{synthetic_city, CityConfig};
use ptrider::{
    Decision, EngineConfig, EngineEvent, GridConfig, MatcherKind, RideService, VertexId,
};

fn main() {
    // 1. A synthetic 10x10-block city (about 2.25 km x 2.25 km).
    let city = synthetic_city(&CityConfig::tiny(7));
    println!(
        "city: {} intersections, {} road segments",
        city.num_vertices(),
        city.num_directed_edges() / 2
    );

    // 2. The ride service with the paper's default parameters: capacity 4,
    //    w = 5 min, delta = 0.2, 48 km/h, prices per kilometre. The service
    //    is the concurrent front door; every method below takes `&self`.
    let service = RideService::new(
        city,
        GridConfig::with_dimensions(4, 4),
        EngineConfig::paper_defaults(),
    )
    .with_matcher(MatcherKind::DualSide);
    let mut events = service.subscribe();

    // 3. A small fleet scattered over the city.
    for i in [0u32, 9, 37, 55, 62, 90, 99] {
        service.add_vehicle(VertexId(i));
    }
    println!("fleet: {} taxis", service.num_vehicles());

    // 4. Two riders want to travel from vertex 44 to vertex 97. The submit
    //    opens a session and returns an offer with a deadline.
    let offer = service
        .submit(VertexId(44), VertexId(97), 2, 0.0)
        .expect("valid request");
    println!(
        "\nsession {} (request {}): {} non-dominated options, respond by t={:.0}s",
        offer.session,
        offer.request,
        offer.options.len(),
        offer.expires_at
    );
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>8}",
        "option", "vehicle", "pickup (m)", "pickup (s)", "price"
    );
    for (id, opt) in offer.iter_ids() {
        println!(
            "{:>6} {:>10} {:>12.0} {:>12.1} {:>8.2}",
            id.to_string(),
            opt.vehicle.to_string(),
            opt.pickup_dist,
            opt.pickup_secs,
            opt.price
        );
    }

    // 5. The riders pick the cheapest option and respond to the session.
    let (cheapest, _) = offer
        .iter_ids()
        .min_by(|(_, a), (_, b)| a.price.partial_cmp(&b.price).unwrap())
        .expect("at least one option");
    let confirmation = service
        .respond(offer.session, Decision::Choose(cheapest), 0.0)
        .expect("the offer is still open")
        .expect("a choose decision yields a confirmation");
    println!(
        "\nconfirmed {} on {} (pickup in {:.0} s, price {:.2})",
        confirmation.session,
        confirmation.option.vehicle,
        confirmation.option.pickup_secs,
        confirmation.option.price
    );

    // A second response to the same session is rejected by the lifecycle.
    let double = service.respond(offer.session, Decision::Decline, 1.0);
    println!("double response rejected: {}", double.unwrap_err());

    let schedule = service
        .with_vehicle(confirmation.option.vehicle, |v| {
            v.current_schedule()
                .iter()
                .map(|s| format!("{:?}@{}", s.kind, s.location))
                .collect::<Vec<_>>()
        })
        .unwrap();
    println!(
        "vehicle {} now has {} scheduled stop(s): {schedule:?}",
        confirmation.option.vehicle,
        schedule.len(),
    );

    // 6. Every transition was published to the event log.
    println!("\nevent trail:");
    for event in service.poll_events(&mut events) {
        match event {
            EngineEvent::VehicleAdded { .. } => {}
            other => println!("  {other:?}"),
        }
    }
    println!("\nengine stats: {:?}", service.stats().match_work);
}
