//! Quickstart: build a small city, register a fleet, submit a request and
//! inspect the price/time options PTRider returns.
//!
//! Run with `cargo run --example quickstart`.

use ptrider::datagen::{synthetic_city, CityConfig};
use ptrider::{EngineConfig, GridConfig, MatcherKind, PtRider, VertexId};

fn main() {
    // 1. A synthetic 10x10-block city (about 2.25 km x 2.25 km).
    let city = synthetic_city(&CityConfig::tiny(7));
    println!(
        "city: {} intersections, {} road segments",
        city.num_vertices(),
        city.num_directed_edges() / 2
    );

    // 2. The engine with the paper's default parameters: capacity 4,
    //    w = 5 min, delta = 0.2, 48 km/h, prices per kilometre.
    let mut engine = PtRider::new(
        city,
        GridConfig::with_dimensions(4, 4),
        EngineConfig::paper_defaults(),
    );
    engine.set_matcher(MatcherKind::DualSide);

    // 3. A small fleet scattered over the city.
    for i in [0u32, 9, 37, 55, 62, 90, 99] {
        engine.add_vehicle(VertexId(i));
    }
    println!("fleet: {} taxis", engine.num_vehicles());

    // 4. Two riders want to travel from vertex 44 to vertex 97.
    let (request, options) = engine.submit(VertexId(44), VertexId(97), 2, 0.0);
    println!(
        "\nrequest {request}: {} non-dominated options",
        options.len()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "vehicle", "pickup (m)", "pickup (s)", "price"
    );
    for opt in &options {
        println!(
            "{:>10} {:>12.0} {:>12.1} {:>8.2}",
            opt.vehicle.to_string(),
            opt.pickup_dist,
            opt.pickup_secs,
            opt.price
        );
    }

    // 5. The rider picks the cheapest option and the system assigns it.
    let cheapest = options
        .iter()
        .min_by(|a, b| a.price.partial_cmp(&b.price).unwrap())
        .expect("at least one option");
    engine.choose(request, cheapest, 0.0).unwrap();
    println!(
        "\nchose {} (pickup in {:.0} s, price {:.2})",
        cheapest.vehicle, cheapest.pickup_secs, cheapest.price
    );

    let vehicle = engine.vehicle(cheapest.vehicle).unwrap();
    println!(
        "vehicle {} now has {} scheduled stop(s): {:?}",
        vehicle.id(),
        vehicle.current_schedule().len(),
        vehicle
            .current_schedule()
            .iter()
            .map(|s| format!("{:?}@{}", s.kind, s.location))
            .collect::<Vec<_>>()
    );
    println!("\nengine stats: {:?}", engine.stats().match_work);
}
