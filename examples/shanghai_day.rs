//! Replays a scaled-down version of the paper's Shanghai day: a synthetic
//! city, a fleet initialised uniformly at random and a trip stream with
//! rush-hour peaks, all driven through the PTRider engine by the simulator.
//!
//! The output mirrors the statistics panel of the demo's website interface
//! (Fig. 4(c)): current time, average response time and average sharing
//! rate, plus the other aggregate numbers the library records.
//!
//! Run with `cargo run --release --example shanghai_day -- [scale] [hours]`
//! (defaults: scale 0.005 ≈ 85 taxis / 2,160 trips, 2 simulated hours).

use ptrider::datagen::scaled_shanghai;
use ptrider::{ChoicePolicy, EngineConfig, GridConfig, MatcherKind, SimConfig, Simulator};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.005)
        .clamp(0.0005, 1.0);
    let hours: f64 = args
        .next()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(2.0)
        .clamp(0.1, 24.0);

    println!("generating Shanghai-like workload at scale {scale} ...");
    let workload = scaled_shanghai(scale, 20090529);
    println!(
        "  city: {} intersections | fleet: {} taxis | trips: {}",
        workload.network.num_vertices(),
        workload.num_vehicles(),
        workload.num_trips()
    );

    // Simulate the morning, starting at 06:00.
    let start = 6.0 * 3600.0;
    let sim_config = SimConfig {
        dt_secs: 5.0,
        start_secs: start,
        end_secs: start + hours * 3600.0,
        choice: ChoicePolicy::Weighted { alpha: 0.5 },
        matcher: MatcherKind::DualSide,
        grid: GridConfig::with_dimensions(16, 16),
        idle_roaming: true,
        cross_check: false,
        burst_admission: false,
        traffic: None,
        seed: 7,
    };
    let mut sim = Simulator::new(workload, EngineConfig::paper_defaults(), sim_config);

    println!("simulating {hours} hour(s) starting at 06:00 ...");
    let mut next_report = start + 1800.0;
    while sim.clock() < sim_config.end_secs {
        sim.step();
        if sim.clock() >= next_report {
            let r = sim.report();
            println!("  [{:>5.1} h] {}", sim.clock() / 3600.0, r.summary());
            next_report += 1800.0;
        }
    }

    let report = sim.report();
    println!("\n=== statistics panel (cf. Fig. 4(c)) ===");
    println!("current time              : {:.1} h", sim.clock() / 3600.0);
    println!(
        "average response time     : {:.3} ms",
        report.avg_response_ms
    );
    println!(
        "average sharing rate      : {:.1} %",
        report.sharing_rate * 100.0
    );
    println!("requests submitted        : {}", report.requests);
    println!(
        "requests answered         : {} ({:.1} %)",
        report.answered,
        report.answer_rate * 100.0
    );
    println!("requests assigned         : {}", report.assigned);
    println!("trips completed           : {}", report.completed);
    println!("average options / request : {:.2}", report.avg_options);
    println!(
        "average waiting time      : {:.0} s",
        report.avg_waiting_secs
    );
    println!("average price             : {:.2}", report.avg_price);
    println!("average detour ratio      : {:.3}", report.avg_detour_ratio);
    println!(
        "fleet distance            : {:.1} km",
        report.fleet_distance_m / 1000.0
    );
    println!(
        "matcher work              : {} vehicles verified / {} pruned / {} exact distances",
        report.engine.match_work.vehicles_verified,
        report.engine.match_work.vehicles_pruned,
        report.engine.match_work.exact_distance_computations
    );
    if let Some(l) = &report.submit_latency {
        println!(
            "submit latency            : p50 {:.3} ms / p90 {:.3} ms / p99 {:.3} ms / max {:.3} ms",
            l.p50_ms, l.p90_ms, l.p99_ms, l.max_ms
        );
    }

    println!("\nfull report (JSON):");
    println!("{}", report.to_json());

    // The live metrics exposition the engine would serve on a /metrics
    // endpoint (set PTRIDER_TELEMETRY=spans for the per-stage histograms).
    println!(
        "\ntelemetry level {} — metrics exposition:",
        sim.service().telemetry().level()
    );
    println!("{}", sim.service().metrics_text());
}
