//! Memoising distance oracle combining exact shortest-path queries with the
//! grid and landmark lower bounds.
//!
//! The matching algorithms of `ptrider-core` interleave many exact distance
//! computations with cheap pruning bounds; the oracle is the hot path of the
//! whole system. Its design:
//!
//! * **Sharded cache** — exact results are memoised in hash-partitioned
//!   shards, each behind its own `parking_lot::RwLock`. Lookups take one
//!   shard read lock, inserts one shard write lock, so concurrent matcher
//!   threads do not serialise on a single global mutex (the seed used one
//!   `Mutex<HashMap>` locked twice per query). The shard count is sized to
//!   the machine ([`num_cache_shards`]): `available_parallelism` rounded to
//!   the next power of two, floored at 32.
//! * **Allocation-free ALT backend** — exact queries run A* on thread-local
//!   generation-stamped scratch buffers ([`crate::scratch`]) with the
//!   heuristic `max(euclidean, grid bound, landmark bound)`; see
//!   [`crate::astar::distance_with_landmarks`].
//! * **Swappable exact backends** — the exact computation behind a miss is
//!   selected by [`DistanceBackend`]: the ALT A* above, or a contraction
//!   hierarchy ([`crate::ch`]) whose bidirectional upward queries are
//!   microsecond-scale on city graphs. The oracle surface (`distance` /
//!   `distances_from` / `lower_bound`) is identical for both, so matchers
//!   never see which backend answered. CH construction is fallible; when it
//!   fails the oracle silently falls back to ALT instead of panicking.
//! * **Batched one-to-many** — [`DistanceOracle::distances_from`] answers
//!   `k` same-source queries with a single bounded multi-target Dijkstra
//!   (ALT backend) or a many-to-many bucket query (CH backend) instead of
//!   `k` point-to-point searches.
//! * **Canonical-direction memoisation** — on undirected networks each
//!   unordered pair is cached under a single canonical key (smaller vertex
//!   id first) and its exact value is always *folded* in the canonical
//!   direction, whichever endpoint the query named. Floating-point sums are
//!   order-sensitive in the last bit, so without this the bits an oracle
//!   returned would depend on its query history (the pre-refactor mirror
//!   stored whichever direction was computed first); with it, every answer
//!   is a pure function of the pair, which is what makes parallel batch
//!   admission bit-identical to sequential admission. One residual
//!   assumption: when a pair has *several* shortest paths whose float sums
//!   differ in the last bit, different search roots may pick different tie
//!   paths and re-fold to different bits — the same tie class the CH
//!   backend's bit-equality with Dijkstra already rests on; exact-weight
//!   grids fold identically on every tie path, and with jittered
//!   real-valued weights exact ties are vanishingly rare (the equivalence
//!   proptests would surface one as a seed failure). Networks with
//!   one-way edges cache both directions separately, as
//!   `dist(u, v) ≠ dist(v, u)` in general.
//! * **Bounded memory** — every shard carries an entry cap with
//!   second-chance (clock) eviction: a hit sets a referenced bit, and when a
//!   full shard takes an insert, unreferenced entries are evicted while
//!   referenced ones survive with their bit cleared. Long-running engines
//!   no longer grow the cache without bound.
//!
//! The exact-computation counters feed the pruning-effectiveness experiment
//! (E8).

use crate::astar;
use crate::ch::ContractionHierarchy;
use crate::dijkstra;
use crate::graph::RoadNetwork;
use crate::grid::GridIndex;
use crate::landmarks::LandmarkIndex;
use crate::types::VertexId;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of cache shards, sized once per process from the machine:
/// `available_parallelism` rounded up to the next power of two, with a
/// floor of 32. On laptops and CI containers this stays at the historical
/// 32; on large multi-socket boxes it grows with the cores so matcher
/// threads keep hitting distinct shards (the first step of the ROADMAP's
/// NUMA-aware sharding item — pinning comes later).
pub fn num_cache_shards() -> usize {
    static SHARDS: OnceLock<usize> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        cores.next_power_of_two().max(32)
    })
}

/// Default total cache capacity (entries across all shards): 4M pairs
/// ≈ 100 MB. Override with [`DistanceOracle::with_cache_capacity`].
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 22;

/// Which exact shortest-path backend a [`DistanceOracle`] uses on a cache
/// miss.
///
/// Both backends return identical (exact) distances; they differ in
/// preprocessing cost and per-query latency, so the right choice depends on
/// the deployment — see DESIGN.md "Distance backends".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistanceBackend {
    /// ALT: A* with `max(euclidean, grid, landmark)` heuristics. No
    /// preprocessing beyond the landmark tables; queries settle `O(ball)`
    /// vertices. Best for small graphs, frequently-changing weights, or
    /// when engine start-up latency matters.
    #[default]
    Alt,
    /// Contraction hierarchy: heavier one-off preprocessing, then
    /// microsecond point queries and bucket-based batched queries. Best for
    /// large static city graphs under sustained match load. Falls back to
    /// [`DistanceBackend::Alt`] when construction fails (see
    /// [`crate::ChBuildError`]).
    Ch,
}

impl std::fmt::Display for DistanceBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistanceBackend::Alt => write!(f, "alt"),
            DistanceBackend::Ch => write!(f, "ch"),
        }
    }
}

/// One memoised distance plus its clock (second-chance) referenced bit. The
/// bit is set on every hit through a shard *read* lock, which is why it is
/// atomic rather than plain.
struct CacheSlot {
    dist: f64,
    referenced: AtomicBool,
}

type Shard = RwLock<HashMap<(VertexId, VertexId), CacheSlot>>;

#[inline]
fn shard_of(u: VertexId, v: VertexId) -> usize {
    let key = ((u.0 as u64) << 32) | v.0 as u64;
    let shards = num_cache_shards();
    // Fibonacci hashing spreads sequential vertex ids across shards; taking
    // the *top* log2(shards) bits of the product keeps the spread even for
    // any power-of-two shard count.
    let shift = 64 - shards.trailing_zeros();
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize & (shards - 1)
}

/// Thread-safe memoising distance oracle.
///
/// Cloning the oracle is cheap; clones share the same cache and counters.
#[derive(Clone)]
pub struct DistanceOracle {
    net: Arc<RoadNetwork>,
    grid: Arc<GridIndex>,
    landmarks: Option<Arc<LandmarkIndex>>,
    /// The contraction hierarchy, present iff the resolved backend is
    /// [`DistanceBackend::Ch`].
    ch: Option<Arc<ContractionHierarchy>>,
    /// The backend actually in use (may be `Alt` even when `Ch` was
    /// requested, if hierarchy construction failed).
    backend: DistanceBackend,
    cache: Arc<Vec<Shard>>,
    /// Per-shard entry cap for clock eviction; `usize::MAX` disables it.
    shard_capacity: usize,
    /// Legacy-baseline mode: one global lock (shard 0, always write-locked),
    /// per-call-allocating plain Dijkstra, no ALT, no batching — the
    /// pre-refactor oracle's behaviour, kept runnable so benchmarks can
    /// quote the speedup against it. See [`Self::legacy_baseline`].
    legacy: bool,
    exact_computations: Arc<AtomicU64>,
    cache_hits: Arc<AtomicU64>,
    lower_bound_queries: Arc<AtomicU64>,
    evictions: Arc<AtomicU64>,
}

impl DistanceOracle {
    /// Creates an oracle over a network and its grid index (no landmark
    /// acceleration; see [`Self::with_landmarks`]).
    pub fn new(net: Arc<RoadNetwork>, grid: Arc<GridIndex>) -> Self {
        DistanceOracle {
            net,
            grid,
            landmarks: None,
            ch: None,
            backend: DistanceBackend::Alt,
            cache: Arc::new(
                (0..num_cache_shards())
                    .map(|_| RwLock::new(HashMap::new()))
                    .collect(),
            ),
            shard_capacity: (DEFAULT_CACHE_CAPACITY / num_cache_shards()).max(1),
            legacy: false,
            exact_computations: Arc::new(AtomicU64::new(0)),
            cache_hits: Arc::new(AtomicU64::new(0)),
            lower_bound_queries: Arc::new(AtomicU64::new(0)),
            evictions: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates an oracle that reproduces the pre-refactor behaviour: a
    /// single globally-locked cache map, a fresh `O(V)` allocation per exact
    /// query, no goal direction, no landmark bounds and no batched
    /// one-to-many search. Exists solely as the measurement baseline for
    /// `BENCH_e9.json`; do not use in production paths.
    #[doc(hidden)]
    pub fn legacy_baseline(net: Arc<RoadNetwork>, grid: Arc<GridIndex>) -> Self {
        let mut oracle = Self::new(net, grid);
        oracle.legacy = true;
        oracle
    }

    /// Creates an oracle whose exact queries are ALT-accelerated and whose
    /// [`Self::lower_bound`] additionally uses the landmark bound — the
    /// P1–P5 pruning rules of the matchers then prune strictly more
    /// vehicles.
    pub fn with_landmarks(
        net: Arc<RoadNetwork>,
        grid: Arc<GridIndex>,
        landmarks: Arc<LandmarkIndex>,
    ) -> Self {
        let mut oracle = Self::new(net, grid);
        oracle.landmarks = Some(landmarks);
        oracle
    }

    /// Creates an oracle with an explicit exact backend. Landmarks remain
    /// optional and, when present, tighten [`Self::lower_bound`] regardless
    /// of the backend.
    ///
    /// Requesting [`DistanceBackend::Ch`] builds the hierarchy here; if
    /// construction fails (see [`crate::ChBuildError`]) the oracle **falls
    /// back to ALT** instead of panicking — [`Self::backend`] reports what
    /// is actually in use.
    pub fn with_backend(
        net: Arc<RoadNetwork>,
        grid: Arc<GridIndex>,
        landmarks: Option<Arc<LandmarkIndex>>,
        backend: DistanceBackend,
    ) -> Self {
        let mut oracle = Self::new(net, grid);
        oracle.landmarks = landmarks;
        if backend == DistanceBackend::Ch {
            match ContractionHierarchy::build(&oracle.net) {
                Ok(ch) => {
                    oracle.ch = Some(Arc::new(ch));
                    oracle.backend = DistanceBackend::Ch;
                }
                Err(_) => {
                    // Unsupported input for contraction (e.g. shortcut
                    // blow-up): stay exact via the ALT backend.
                    oracle.backend = DistanceBackend::Alt;
                }
            }
        }
        oracle
    }

    /// Creates an oracle over a pre-built, shared contraction hierarchy —
    /// the cheap path for many-engines-one-city harnesses, which build the
    /// hierarchy once and hand every engine the same `Arc`.
    pub fn with_contraction_hierarchy(
        net: Arc<RoadNetwork>,
        grid: Arc<GridIndex>,
        landmarks: Option<Arc<LandmarkIndex>>,
        ch: Arc<ContractionHierarchy>,
    ) -> Self {
        let mut oracle = Self::new(net, grid);
        oracle.landmarks = landmarks;
        oracle.ch = Some(ch);
        oracle.backend = DistanceBackend::Ch;
        oracle
    }

    /// Overrides the total cache capacity (entries across all shards).
    /// Eviction triggers per shard at `capacity / num_cache_shards()`;
    /// passing `usize::MAX` disables eviction entirely.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.shard_capacity = if capacity == usize::MAX {
            usize::MAX
        } else {
            (capacity / num_cache_shards()).max(1)
        };
        self
    }

    /// The exact backend actually answering cache misses (may differ from
    /// the requested one after a CH-construction fallback).
    pub fn backend(&self) -> DistanceBackend {
        self.backend
    }

    /// The contraction hierarchy, if this oracle runs the CH backend.
    pub fn contraction_hierarchy(&self) -> Option<&Arc<ContractionHierarchy>> {
        self.ch.as_ref()
    }

    /// Total cache capacity in entries (`usize::MAX` when unbounded).
    pub fn cache_capacity(&self) -> usize {
        if self.shard_capacity == usize::MAX {
            usize::MAX
        } else {
            self.shard_capacity * num_cache_shards()
        }
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// The underlying grid index.
    pub fn grid(&self) -> &GridIndex {
        &self.grid
    }

    /// The landmark index, if this oracle was built with one.
    pub fn landmarks(&self) -> Option<&LandmarkIndex> {
        self.landmarks.as_deref()
    }

    /// Shared handle to the underlying road network.
    pub fn network_arc(&self) -> Arc<RoadNetwork> {
        Arc::clone(&self.net)
    }

    /// Shared handle to the underlying grid index.
    pub fn grid_arc(&self) -> Arc<GridIndex> {
        Arc::clone(&self.grid)
    }

    /// The cache key of a pair: on undirected networks the unordered pair's
    /// canonical form (smaller vertex id first), so both query directions
    /// share one entry carrying the canonical fold.
    #[inline]
    fn cache_key(&self, u: VertexId, v: VertexId) -> (VertexId, VertexId) {
        if v < u && self.net.is_undirected() {
            (v, u)
        } else {
            (u, v)
        }
    }

    #[inline]
    fn cached(&self, u: VertexId, v: VertexId) -> Option<f64> {
        if self.legacy {
            // The seed's Mutex had no shared-read mode.
            return self.cache[0].write().get(&(u, v)).map(|s| s.dist);
        }
        let key = self.cache_key(u, v);
        let shard = self.cache[shard_of(key.0, key.1)].read();
        shard.get(&key).map(|slot| {
            // Second chance: a hit through the read lock marks the entry
            // referenced so the next eviction sweep spares it.
            slot.referenced.store(true, Ordering::Relaxed);
            slot.dist
        })
    }

    /// Inserts into a write-locked shard, evicting with the second-chance
    /// (clock) policy when the shard is at capacity: entries whose
    /// referenced bit is clear are evicted, survivors lose their bit. If
    /// every entry was referenced (sweep evicted nothing), an arbitrary
    /// half of the shard is dropped so the bound always holds.
    ///
    /// Races on one key are harmless: the canonical-fold policy means every
    /// writer of a key computes the same bits whenever the pair's shortest
    /// path is unique (see the tie caveat on the module docs).
    fn insert_with_eviction(
        &self,
        map: &mut HashMap<(VertexId, VertexId), CacheSlot>,
        key: (VertexId, VertexId),
        d: f64,
    ) {
        if map.len() >= self.shard_capacity && !map.contains_key(&key) {
            let before = map.len();
            map.retain(|_, slot| {
                let keep = *slot.referenced.get_mut();
                *slot.referenced.get_mut() = false;
                keep
            });
            if map.len() >= self.shard_capacity {
                let mut spare = self.shard_capacity / 2;
                map.retain(|_, _| {
                    let keep = spare > 0;
                    spare = spare.saturating_sub(1);
                    keep
                });
            }
            self.evictions
                .fetch_add((before - map.len()) as u64, Ordering::Relaxed);
        }
        map.insert(
            key,
            CacheSlot {
                dist: d,
                referenced: AtomicBool::new(false),
            },
        );
    }

    #[inline]
    fn store(&self, u: VertexId, v: VertexId, d: f64) {
        if self.legacy {
            // Legacy baseline: unbounded single-map cache, as the seed had.
            self.cache[0].write().insert(
                (u, v),
                CacheSlot {
                    dist: d,
                    referenced: AtomicBool::new(false),
                },
            );
            if self.net.is_undirected() {
                self.cache[0].write().entry((v, u)).or_insert(CacheSlot {
                    dist: d,
                    referenced: AtomicBool::new(false),
                });
            }
            return;
        }
        // One canonical entry per unordered pair on undirected networks
        // (half the footprint of the old two-direction mirror).
        let key = self.cache_key(u, v);
        self.insert_with_eviction(&mut self.cache[shard_of(key.0, key.1)].write(), key, d);
    }

    /// Exact distance straight from the active backend, bypassing the cache.
    #[inline]
    fn backend_distance(&self, u: VertexId, v: VertexId) -> f64 {
        match (&self.ch, self.backend) {
            (Some(ch), DistanceBackend::Ch) => ch.distance(u, v),
            _ => astar::distance_with_landmarks(
                &self.net,
                u,
                v,
                Some(&self.grid),
                self.landmarks.as_deref(),
            )
            .unwrap_or(f64::INFINITY),
        }
    }

    /// Exact distance folded in canonical direction: on undirected networks
    /// the search always runs from the smaller vertex id, so the returned
    /// bits depend only on the pair — never on which direction a caller
    /// happened to ask first.
    #[inline]
    fn backend_distance_canonical(&self, u: VertexId, v: VertexId) -> f64 {
        let (a, b) = self.cache_key(u, v);
        self.backend_distance(a, b)
    }

    /// Exact shortest-path distance, memoised. Returns `f64::INFINITY` when
    /// unreachable so callers can treat the result as a plain cost.
    pub fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        if u == v {
            return 0.0;
        }
        if let Some(d) = self.cached(u, v) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        self.exact_computations.fetch_add(1, Ordering::Relaxed);
        let d = if self.legacy {
            dijkstra::distance_allocating(&self.net, u, v).unwrap_or(f64::INFINITY)
        } else {
            self.backend_distance_canonical(u, v)
        };
        self.store(u, v, d);
        d
    }

    /// One-to-many exact distances from `source` to every vertex in
    /// `targets`, memoised per pair.
    ///
    /// Cache misses are answered by a *single* bounded multi-target Dijkstra
    /// (counted as one exact computation) instead of `targets.len()`
    /// independent point-to-point searches — the batching entry point for
    /// the matchers' verification loops and the kinetic-tree re-annotation.
    pub fn distances_from(&self, source: VertexId, targets: &[VertexId]) -> Vec<f64> {
        if self.legacy {
            // Pre-refactor behaviour: k independent point-to-point queries.
            return targets.iter().map(|&t| self.distance(source, t)).collect();
        }
        let mut out = vec![0.0f64; targets.len()];
        let mut missing: Vec<VertexId> = Vec::new();
        let mut missing_idx: Vec<usize> = Vec::new();
        for (i, &t) in targets.iter().enumerate() {
            if t == source {
                continue; // out[i] stays 0.0
            }
            if let Some(d) = self.cached(source, t) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                out[i] = d;
            } else {
                missing.push(t);
                missing_idx.push(i);
            }
        }
        match missing.len() {
            0 => {}
            // For a few scattered misses, point queries (goal-directed ALT
            // search or a CH upward query) beat a batch whose cost is
            // dominated by setup.
            1..=3 => {
                for (&i, &t) in missing_idx.iter().zip(missing.iter()) {
                    self.exact_computations.fetch_add(1, Ordering::Relaxed);
                    let d = self.backend_distance_canonical(source, t);
                    self.store(source, t, d);
                    out[i] = d;
                }
            }
            _ => {
                self.exact_computations.fetch_add(1, Ordering::Relaxed);
                let undirected = self.net.is_undirected();
                let ds: Vec<f64> = match (&self.ch, self.backend) {
                    // CH many-to-many bucket query: k backward upward
                    // searches plus one forward — independent of the
                    // geometric spread of the targets. On undirected
                    // networks, targets below the source (whose canonical
                    // fold runs the other way) are answered by canonical-
                    // direction point queries instead; CH point queries are
                    // microsecond-scale, so the batch still wins.
                    (Some(ch), DistanceBackend::Ch) => {
                        if undirected {
                            let fwd: Vec<VertexId> =
                                missing.iter().copied().filter(|&t| source < t).collect();
                            let mut fwd_ds = ch.distances_from(source, &fwd).into_iter();
                            missing
                                .iter()
                                .map(|&t| {
                                    if source < t {
                                        fwd_ds.next().expect("one batch answer per fwd target")
                                    } else {
                                        ch.distance(t, source)
                                    }
                                })
                                .collect()
                        } else {
                            ch.distances_from(source, &missing)
                        }
                    }
                    // ALT: one bounded multi-target Dijkstra ball, folded in
                    // canonical direction on undirected networks.
                    _ => {
                        if undirected {
                            dijkstra::multi_target_canonical(&self.net, source, &missing)
                        } else {
                            dijkstra::multi_target(&self.net, source, &missing)
                        }
                    }
                };
                for ((&i, &t), d) in missing_idx.iter().zip(missing.iter()).zip(ds) {
                    self.store(source, t, d);
                    out[i] = d;
                }
            }
        }
        out
    }

    /// Cheap lower bound on the shortest-path distance (never exceeds
    /// [`Self::distance`]). Takes the maximum of the grid bound, the
    /// Euclidean bound and — when available — the ALT landmark bound, or
    /// returns the cached exact value outright.
    pub fn lower_bound(&self, u: VertexId, v: VertexId) -> f64 {
        self.lower_bound_queries.fetch_add(1, Ordering::Relaxed);
        if u == v {
            return 0.0;
        }
        if let Some(d) = self.cached(u, v) {
            return d;
        }
        // The grid tables assume symmetric distances (forward border
        // searches only); on directed networks fall back to the Euclidean
        // bound, which is admissible in both directions.
        let mut lb = if self.net.is_undirected() {
            self.grid.lower_bound_with(&self.net, u, v)
        } else {
            self.net.euclidean_lower_bound(u, v)
        };
        if let Some(landmarks) = &self.landmarks {
            let alt = landmarks.lower_bound(u, v);
            if alt > lb {
                lb = alt;
            }
        }
        lb
    }

    /// Lower bound from a vertex to the closest vertex of a grid cell.
    /// Degrades to 0 on directed networks (the grid tables are forward-only
    /// and would not be admissible there).
    pub fn lower_bound_to_cell(&self, u: VertexId, cell: crate::grid::CellId) -> f64 {
        self.lower_bound_queries.fetch_add(1, Ordering::Relaxed);
        if !self.net.is_undirected() {
            return 0.0;
        }
        self.grid.lower_bound_to_cell(u, cell)
    }

    /// Number of exact shortest-path computations performed so far (a
    /// batched [`Self::distances_from`] search counts once).
    pub fn exact_computations(&self) -> u64 {
        self.exact_computations.load(Ordering::Relaxed)
    }

    /// Number of exact queries answered from the cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of lower-bound queries served.
    pub fn lower_bound_queries(&self) -> u64 {
        self.lower_bound_queries.load(Ordering::Relaxed)
    }

    /// Number of cache entries evicted by the clock policy so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Resets the counters (not the cache); used between benchmark phases.
    pub fn reset_counters(&self) {
        self.exact_computations.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.lower_bound_queries.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Clears the memoisation cache (used by benchmarks that want cold-cache
    /// measurements) and the counters.
    pub fn clear(&self) {
        for shard in self.cache.iter() {
            shard.write().clear();
        }
        self.reset_counters();
    }

    /// Number of cached entries across all shards.
    pub fn cache_len(&self) -> usize {
        self.cache.iter().map(|s| s.read().len()).sum()
    }
}

impl std::fmt::Debug for DistanceOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceOracle")
            .field("vertices", &self.net.num_vertices())
            .field("cells", &self.grid.num_cells())
            .field("backend", &self.backend)
            .field(
                "landmarks",
                &self.landmarks.as_ref().map(|l| l.landmarks().len()),
            )
            .field("cache_len", &self.cache_len())
            .field("exact_computations", &self.exact_computations())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use crate::grid::GridConfig;

    fn lattice_oracle(landmarks: bool) -> DistanceOracle {
        let mut b = RoadNetworkBuilder::new();
        let mut ids = Vec::new();
        for y in 0..5 {
            for x in 0..5 {
                ids.push(b.add_vertex(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        for y in 0..5usize {
            for x in 0..5usize {
                let u = ids[y * 5 + x];
                if x + 1 < 5 {
                    b.add_bidirectional_edge(u, ids[y * 5 + x + 1], 100.0);
                }
                if y + 1 < 5 {
                    b.add_bidirectional_edge(u, ids[(y + 1) * 5 + x], 100.0);
                }
            }
        }
        let net = Arc::new(b.build().unwrap());
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 2)));
        if landmarks {
            let lm = Arc::new(LandmarkIndex::build(&net, 4, VertexId(0)));
            DistanceOracle::with_landmarks(net, grid, lm)
        } else {
            DistanceOracle::new(net, grid)
        }
    }

    fn oracle() -> DistanceOracle {
        lattice_oracle(false)
    }

    #[test]
    fn distance_is_memoised() {
        let o = oracle();
        let d1 = o.distance(VertexId(0), VertexId(24));
        assert_eq!(o.exact_computations(), 1);
        let d2 = o.distance(VertexId(0), VertexId(24));
        assert_eq!(d1, d2);
        assert_eq!(o.exact_computations(), 1);
        assert_eq!(o.cache_hits(), 1);
        // symmetric entry is cached too (undirected lattice)
        let d3 = o.distance(VertexId(24), VertexId(0));
        assert_eq!(d3, d1);
        assert_eq!(o.exact_computations(), 1);
    }

    #[test]
    fn directed_networks_do_not_mirror_the_cache() {
        // v0 -> v1 one-way at weight 10 over a bidirectional detour of 600.
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(50.0, 100.0);
        b.add_directed_edge(v0, v1, 10.0);
        b.add_bidirectional_edge(v0, v2, 300.0);
        b.add_bidirectional_edge(v2, v1, 300.0);
        let net = Arc::new(b.build().unwrap());
        assert!(!net.is_undirected());
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 2)));
        let o = DistanceOracle::new(net, grid);
        assert_eq!(o.distance(v0, v1), 10.0);
        // The reverse direction must take the detour, not the mirrored 10.
        assert_eq!(o.distance(v1, v0), 600.0);
        assert_eq!(o.exact_computations(), 2);
    }

    #[test]
    fn lower_bound_is_admissible_on_asymmetric_one_way_networks() {
        // Regression: the grid tables are forward-only, so on a network
        // where dist(u,v) != dist(v,u) the grid bound can exceed the true
        // distance (e.g. A->B cheap one way, B->A expensive). The oracle
        // must fall back to direction-safe bounds, and exact queries must
        // not be corrupted by an inflated A* heuristic.
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(90.0, 0.0);
        let c = b.add_vertex(200.0, 0.0);
        b.add_directed_edge(a, v1, 1.0);
        b.add_directed_edge(v1, a, 1000.0);
        b.add_bidirectional_edge(v1, c, 1.0);
        let net = Arc::new(b.build().unwrap());
        assert!(!net.is_undirected());
        // A 2x1 grid puts {A, B} in the left cell and C in the right one,
        // so B is A's cell's only border vertex and the forward table sets
        // vertex_min[A] = dist(B->A) = 1000 — wildly above dist(A->B) = 1.
        // The uncorrected grid bound then claims lb(A, C) = 1001 although
        // dist(A, C) = 2.
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 1)));
        let lm = Arc::new(LandmarkIndex::build(&net, 2, a));
        let o = DistanceOracle::with_landmarks(net, grid, lm);
        for u in [a, v1, c] {
            for v in [a, v1, c] {
                let exact = crate::dijkstra::distance_allocating(o.network(), u, v)
                    .unwrap_or(f64::INFINITY);
                // Bound first: once distance() caches the pair, lower_bound
                // returns the exact value and would mask an inflated bound.
                let lb = o.lower_bound(u, v);
                assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact} for {u}->{v}");
                assert_eq!(o.distance(u, v), exact, "exact {u}->{v}");
            }
        }
    }

    #[test]
    fn lower_bound_is_admissible() {
        for with_lm in [false, true] {
            let o = lattice_oracle(with_lm);
            for u in 0..25u32 {
                for v in 0..25u32 {
                    let lb = o.lower_bound(VertexId(u), VertexId(v));
                    let exact = o.distance(VertexId(u), VertexId(v));
                    assert!(
                        lb <= exact + 1e-9,
                        "lb {lb} > exact {exact} ({u}->{v}, landmarks={with_lm})"
                    );
                }
            }
        }
    }

    #[test]
    fn landmark_bound_tightens_lower_bounds() {
        let plain = lattice_oracle(false);
        let alt = lattice_oracle(true);
        let mut tightened = 0usize;
        for u in 0..25u32 {
            for v in 0..25u32 {
                let a = alt.lower_bound(VertexId(u), VertexId(v));
                let p = plain.lower_bound(VertexId(u), VertexId(v));
                assert!(a >= p - 1e-9, "ALT bound must never be looser");
                if a > p + 1e-9 {
                    tightened += 1;
                }
            }
        }
        assert!(tightened > 0, "ALT should tighten at least some pairs");
    }

    #[test]
    fn distances_from_matches_point_queries() {
        let o = oracle();
        let source = VertexId(7);
        let targets: Vec<VertexId> = (0..25).map(VertexId).collect();
        let batch = o.distances_from(source, &targets);
        let reference = lattice_oracle(false);
        for (t, d) in targets.iter().zip(&batch) {
            assert_eq!(*d, reference.distance(source, *t), "target {t}");
        }
        // One batched search, not 24 point-to-point searches.
        assert_eq!(o.exact_computations(), 1);
        // Second call is fully cached.
        let again = o.distances_from(source, &targets);
        assert_eq!(batch, again);
        assert_eq!(o.exact_computations(), 1);
    }

    #[test]
    fn identity_distance_is_zero_and_free() {
        let o = oracle();
        assert_eq!(o.distance(VertexId(3), VertexId(3)), 0.0);
        assert_eq!(o.exact_computations(), 0);
    }

    #[test]
    fn clear_resets_cache_and_counters() {
        let o = oracle();
        let _ = o.distance(VertexId(0), VertexId(5));
        assert!(o.cache_len() > 0);
        o.clear();
        assert_eq!(o.cache_len(), 0);
        assert_eq!(o.exact_computations(), 0);
        assert_eq!(o.cache_hits(), 0);
        assert_eq!(o.lower_bound_queries(), 0);
    }

    fn lattice_oracle_with_backend(backend: DistanceBackend) -> DistanceOracle {
        let base = lattice_oracle(false);
        DistanceOracle::with_backend(base.network_arc(), base.grid_arc(), None, backend)
    }

    #[test]
    fn ch_backend_matches_alt_backend() {
        let alt = lattice_oracle_with_backend(DistanceBackend::Alt);
        let ch = lattice_oracle_with_backend(DistanceBackend::Ch);
        assert_eq!(alt.backend(), DistanceBackend::Alt);
        assert_eq!(ch.backend(), DistanceBackend::Ch);
        assert!(ch.contraction_hierarchy().is_some());
        for u in 0..25u32 {
            for v in 0..25u32 {
                let a = alt.distance(VertexId(u), VertexId(v));
                let c = ch.distance(VertexId(u), VertexId(v));
                assert!((a - c).abs() < 1e-6, "{u}->{v}: alt {a} vs ch {c}");
            }
        }
    }

    #[test]
    fn ch_backend_batches_through_buckets() {
        let ch = lattice_oracle_with_backend(DistanceBackend::Ch);
        let reference = lattice_oracle(false);
        let source = VertexId(3);
        let targets: Vec<VertexId> = (0..25).map(VertexId).collect();
        let batch = ch.distances_from(source, &targets);
        for (t, d) in targets.iter().zip(&batch) {
            assert_eq!(*d, reference.distance(source, *t), "target {t}");
        }
        // The whole batch is one exact computation, like the ALT path.
        assert_eq!(ch.exact_computations(), 1);
    }

    #[test]
    fn ch_backend_is_exact_on_directed_networks() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(50.0, 100.0);
        b.add_directed_edge(v0, v1, 10.0);
        b.add_bidirectional_edge(v0, v2, 300.0);
        b.add_bidirectional_edge(v2, v1, 300.0);
        let net = Arc::new(b.build().unwrap());
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 2)));
        let o = DistanceOracle::with_backend(net, grid, None, DistanceBackend::Ch);
        assert_eq!(o.backend(), DistanceBackend::Ch);
        assert_eq!(o.distance(v0, v1), 10.0);
        assert_eq!(o.distance(v1, v0), 600.0);
    }

    #[test]
    fn eviction_bounds_the_cache() {
        // One entry per shard; 600 distinct pairs overflow immediately.
        let capacity = num_cache_shards();
        let o = lattice_oracle(false).with_cache_capacity(capacity);
        assert_eq!(o.cache_capacity(), capacity);
        for u in 0..25u32 {
            for v in 0..25u32 {
                if u != v {
                    let _ = o.distance(VertexId(u), VertexId(v));
                }
            }
        }
        assert!(
            o.cache_len() <= capacity,
            "cache grew past its capacity: {}",
            o.cache_len()
        );
        assert!(o.evictions() > 0);
        // Evicted entries are recomputed correctly.
        assert_eq!(o.distance(VertexId(0), VertexId(24)), 800.0);
    }

    #[test]
    fn referenced_entries_survive_a_sweep() {
        // Two entries per shard. Three canonical pairs (u < v on an
        // undirected network) that all hash into shard 0, so the occupancy
        // is fully controlled: after `hot` is touched and `cold` sits
        // untouched, the insert of `third` must sweep the shard — evicting
        // `cold` (bit clear) and sparing `hot` (second chance).
        let o = lattice_oracle(false).with_cache_capacity(2 * num_cache_shards());
        let mut colliding = Vec::new();
        'outer: for u in 0..25u32 {
            for v in (u + 1)..25u32 {
                let (u, v) = (VertexId(u), VertexId(v));
                if shard_of(u, v) == 0 {
                    colliding.push((u, v));
                    if colliding.len() == 3 {
                        break 'outer;
                    }
                }
            }
        }
        let &[hot, cold, third] = colliding.as_slice() else {
            panic!("lattice must yield three shard-0 pairs");
        };
        let _ = o.distance(hot.0, hot.1);
        let _ = o.distance(hot.0, hot.1); // hit: sets the referenced bit
        assert_eq!(o.cache_hits(), 1);
        let _ = o.distance(cold.0, cold.1); // second entry, bit clear
        let _ = o.distance(third.0, third.1); // shard full -> sweep
        assert_eq!(o.evictions(), 1, "exactly the cold entry is evicted");
        // The referenced hot pair survived the sweep ...
        let hits_before = o.cache_hits();
        let _ = o.distance(hot.0, hot.1);
        assert_eq!(o.cache_hits(), hits_before + 1, "hot entry must survive");
        // ... while the unreferenced cold pair was evicted and recomputes.
        let exact_before = o.exact_computations();
        let _ = o.distance(cold.0, cold.1);
        assert_eq!(o.exact_computations(), exact_before + 1, "cold evicted");
    }

    #[test]
    fn clones_share_cache() {
        let o = oracle();
        let o2 = o.clone();
        let _ = o.distance(VertexId(0), VertexId(10));
        let _ = o2.distance(VertexId(0), VertexId(10));
        assert_eq!(o.exact_computations(), 1);
        assert_eq!(o2.cache_hits(), 1);
    }

    #[test]
    fn concurrent_queries_agree_with_sequential() {
        let o = lattice_oracle(true);
        let mut expected = Vec::new();
        let reference = lattice_oracle(false);
        for u in 0..25u32 {
            expected.push(reference.distance(VertexId(u), VertexId(24 - u)));
        }
        let ids: Vec<u32> = (0..25).collect();
        std::thread::scope(|scope| {
            for chunk in ids.chunks(5) {
                let o = o.clone();
                scope.spawn(move || {
                    for &u in chunk {
                        let _ = o.distance(VertexId(u), VertexId(24 - u));
                    }
                });
            }
        });
        for u in 0..25u32 {
            assert_eq!(
                o.distance(VertexId(u), VertexId(24 - u)),
                expected[u as usize]
            );
        }
    }
}
