//! Memoising distance oracle combining exact shortest-path queries with the
//! grid and landmark lower bounds.
//!
//! The matching algorithms of `ptrider-core` interleave many exact distance
//! computations with cheap pruning bounds; the oracle is the hot path of the
//! whole system. Its design:
//!
//! * **Sharded cache** — exact results are memoised in hash-partitioned
//!   shards, each behind its own `parking_lot::RwLock`. Lookups take one
//!   shard read lock, inserts one shard write lock, so concurrent matcher
//!   threads do not serialise on a single global mutex (the seed used one
//!   `Mutex<HashMap>` locked twice per query).
//! * **Allocation-free ALT backend** — exact queries run A* on thread-local
//!   generation-stamped scratch buffers ([`crate::scratch`]) with the
//!   heuristic `max(euclidean, grid bound, landmark bound)`; see
//!   [`crate::astar::distance_with_landmarks`].
//! * **Batched one-to-many** — [`DistanceOracle::distances_from`] answers
//!   `k` same-source queries with a single bounded multi-target Dijkstra
//!   instead of `k` point-to-point searches.
//! * **Directed-safe mirroring** — the symmetric `(v, u)` cache entry is
//!   only written when [`RoadNetwork::is_undirected`] holds; on networks
//!   with one-way edges `dist(u, v) ≠ dist(v, u)` in general.
//!
//! The exact-computation counters feed the pruning-effectiveness experiment
//! (E8).

use crate::astar;
use crate::dijkstra;
use crate::graph::RoadNetwork;
use crate::grid::GridIndex;
use crate::landmarks::LandmarkIndex;
use crate::types::VertexId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of cache shards. A small power of two well above typical matcher
/// thread counts keeps write contention negligible while the per-shard maps
/// stay dense.
const SHARDS: usize = 32;

type Shard = RwLock<HashMap<(VertexId, VertexId), f64>>;

#[inline]
fn shard_of(u: VertexId, v: VertexId) -> usize {
    let key = ((u.0 as u64) << 32) | v.0 as u64;
    // Fibonacci hashing spreads sequential vertex ids across shards.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 59) as usize & (SHARDS - 1)
}

/// Thread-safe memoising distance oracle.
///
/// Cloning the oracle is cheap; clones share the same cache and counters.
#[derive(Clone)]
pub struct DistanceOracle {
    net: Arc<RoadNetwork>,
    grid: Arc<GridIndex>,
    landmarks: Option<Arc<LandmarkIndex>>,
    cache: Arc<[Shard; SHARDS]>,
    /// Legacy-baseline mode: one global lock (shard 0, always write-locked),
    /// per-call-allocating plain Dijkstra, no ALT, no batching — the
    /// pre-refactor oracle's behaviour, kept runnable so benchmarks can
    /// quote the speedup against it. See [`Self::legacy_baseline`].
    legacy: bool,
    exact_computations: Arc<AtomicU64>,
    cache_hits: Arc<AtomicU64>,
    lower_bound_queries: Arc<AtomicU64>,
}

impl DistanceOracle {
    /// Creates an oracle over a network and its grid index (no landmark
    /// acceleration; see [`Self::with_landmarks`]).
    pub fn new(net: Arc<RoadNetwork>, grid: Arc<GridIndex>) -> Self {
        DistanceOracle {
            net,
            grid,
            landmarks: None,
            cache: Arc::new(std::array::from_fn(|_| RwLock::new(HashMap::new()))),
            legacy: false,
            exact_computations: Arc::new(AtomicU64::new(0)),
            cache_hits: Arc::new(AtomicU64::new(0)),
            lower_bound_queries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates an oracle that reproduces the pre-refactor behaviour: a
    /// single globally-locked cache map, a fresh `O(V)` allocation per exact
    /// query, no goal direction, no landmark bounds and no batched
    /// one-to-many search. Exists solely as the measurement baseline for
    /// `BENCH_e9.json`; do not use in production paths.
    #[doc(hidden)]
    pub fn legacy_baseline(net: Arc<RoadNetwork>, grid: Arc<GridIndex>) -> Self {
        let mut oracle = Self::new(net, grid);
        oracle.legacy = true;
        oracle
    }

    /// Creates an oracle whose exact queries are ALT-accelerated and whose
    /// [`Self::lower_bound`] additionally uses the landmark bound — the
    /// P1–P5 pruning rules of the matchers then prune strictly more
    /// vehicles.
    pub fn with_landmarks(
        net: Arc<RoadNetwork>,
        grid: Arc<GridIndex>,
        landmarks: Arc<LandmarkIndex>,
    ) -> Self {
        let mut oracle = Self::new(net, grid);
        oracle.landmarks = Some(landmarks);
        oracle
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// The underlying grid index.
    pub fn grid(&self) -> &GridIndex {
        &self.grid
    }

    /// The landmark index, if this oracle was built with one.
    pub fn landmarks(&self) -> Option<&LandmarkIndex> {
        self.landmarks.as_deref()
    }

    /// Shared handle to the underlying road network.
    pub fn network_arc(&self) -> Arc<RoadNetwork> {
        Arc::clone(&self.net)
    }

    /// Shared handle to the underlying grid index.
    pub fn grid_arc(&self) -> Arc<GridIndex> {
        Arc::clone(&self.grid)
    }

    #[inline]
    fn shard_index(&self, u: VertexId, v: VertexId) -> usize {
        if self.legacy {
            0 // one global map, as the seed had
        } else {
            shard_of(u, v)
        }
    }

    #[inline]
    fn cached(&self, u: VertexId, v: VertexId) -> Option<f64> {
        if self.legacy {
            // The seed's Mutex had no shared-read mode.
            return self.cache[0].write().get(&(u, v)).copied();
        }
        self.cache[shard_of(u, v)].read().get(&(u, v)).copied()
    }

    #[inline]
    fn store(&self, u: VertexId, v: VertexId, d: f64) {
        self.cache[self.shard_index(u, v)].write().insert((u, v), d);
        if self.net.is_undirected() {
            // Safe only when dist(u, v) = dist(v, u) holds network-wide.
            self.cache[self.shard_index(v, u)]
                .write()
                .entry((v, u))
                .or_insert(d);
        }
    }

    /// Exact shortest-path distance, memoised. Returns `f64::INFINITY` when
    /// unreachable so callers can treat the result as a plain cost.
    pub fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        if u == v {
            return 0.0;
        }
        if let Some(d) = self.cached(u, v) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        self.exact_computations.fetch_add(1, Ordering::Relaxed);
        let d = if self.legacy {
            dijkstra::distance_allocating(&self.net, u, v)
        } else {
            astar::distance_with_landmarks(
                &self.net,
                u,
                v,
                Some(&self.grid),
                self.landmarks.as_deref(),
            )
        }
        .unwrap_or(f64::INFINITY);
        self.store(u, v, d);
        d
    }

    /// One-to-many exact distances from `source` to every vertex in
    /// `targets`, memoised per pair.
    ///
    /// Cache misses are answered by a *single* bounded multi-target Dijkstra
    /// (counted as one exact computation) instead of `targets.len()`
    /// independent point-to-point searches — the batching entry point for
    /// the matchers' verification loops and the kinetic-tree re-annotation.
    pub fn distances_from(&self, source: VertexId, targets: &[VertexId]) -> Vec<f64> {
        if self.legacy {
            // Pre-refactor behaviour: k independent point-to-point queries.
            return targets.iter().map(|&t| self.distance(source, t)).collect();
        }
        let mut out = vec![0.0f64; targets.len()];
        let mut missing: Vec<VertexId> = Vec::new();
        let mut missing_idx: Vec<usize> = Vec::new();
        for (i, &t) in targets.iter().enumerate() {
            if t == source {
                continue; // out[i] stays 0.0
            }
            if let Some(d) = self.cached(source, t) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                out[i] = d;
            } else {
                missing.push(t);
                missing_idx.push(i);
            }
        }
        match missing.len() {
            0 => {}
            // For a few scattered misses, goal-directed ALT point queries
            // settle far fewer vertices than one multi-target ball whose
            // radius is the furthest miss.
            1..=3 => {
                for (&i, &t) in missing_idx.iter().zip(missing.iter()) {
                    self.exact_computations.fetch_add(1, Ordering::Relaxed);
                    let d = astar::distance_with_landmarks(
                        &self.net,
                        source,
                        t,
                        Some(&self.grid),
                        self.landmarks.as_deref(),
                    )
                    .unwrap_or(f64::INFINITY);
                    self.store(source, t, d);
                    out[i] = d;
                }
            }
            _ => {
                self.exact_computations.fetch_add(1, Ordering::Relaxed);
                let ds = dijkstra::multi_target(&self.net, source, &missing);
                for ((&i, &t), d) in missing_idx.iter().zip(missing.iter()).zip(ds) {
                    self.store(source, t, d);
                    out[i] = d;
                }
            }
        }
        out
    }

    /// Cheap lower bound on the shortest-path distance (never exceeds
    /// [`Self::distance`]). Takes the maximum of the grid bound, the
    /// Euclidean bound and — when available — the ALT landmark bound, or
    /// returns the cached exact value outright.
    pub fn lower_bound(&self, u: VertexId, v: VertexId) -> f64 {
        self.lower_bound_queries.fetch_add(1, Ordering::Relaxed);
        if u == v {
            return 0.0;
        }
        if let Some(d) = self.cached(u, v) {
            return d;
        }
        // The grid tables assume symmetric distances (forward border
        // searches only); on directed networks fall back to the Euclidean
        // bound, which is admissible in both directions.
        let mut lb = if self.net.is_undirected() {
            self.grid.lower_bound_with(&self.net, u, v)
        } else {
            self.net.euclidean_lower_bound(u, v)
        };
        if let Some(landmarks) = &self.landmarks {
            let alt = landmarks.lower_bound(u, v);
            if alt > lb {
                lb = alt;
            }
        }
        lb
    }

    /// Lower bound from a vertex to the closest vertex of a grid cell.
    /// Degrades to 0 on directed networks (the grid tables are forward-only
    /// and would not be admissible there).
    pub fn lower_bound_to_cell(&self, u: VertexId, cell: crate::grid::CellId) -> f64 {
        self.lower_bound_queries.fetch_add(1, Ordering::Relaxed);
        if !self.net.is_undirected() {
            return 0.0;
        }
        self.grid.lower_bound_to_cell(u, cell)
    }

    /// Number of exact shortest-path computations performed so far (a
    /// batched [`Self::distances_from`] search counts once).
    pub fn exact_computations(&self) -> u64 {
        self.exact_computations.load(Ordering::Relaxed)
    }

    /// Number of exact queries answered from the cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of lower-bound queries served.
    pub fn lower_bound_queries(&self) -> u64 {
        self.lower_bound_queries.load(Ordering::Relaxed)
    }

    /// Resets the counters (not the cache); used between benchmark phases.
    pub fn reset_counters(&self) {
        self.exact_computations.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.lower_bound_queries.store(0, Ordering::Relaxed);
    }

    /// Clears the memoisation cache (used by benchmarks that want cold-cache
    /// measurements) and the counters.
    pub fn clear(&self) {
        for shard in self.cache.iter() {
            shard.write().clear();
        }
        self.reset_counters();
    }

    /// Number of cached entries across all shards.
    pub fn cache_len(&self) -> usize {
        self.cache.iter().map(|s| s.read().len()).sum()
    }
}

impl std::fmt::Debug for DistanceOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceOracle")
            .field("vertices", &self.net.num_vertices())
            .field("cells", &self.grid.num_cells())
            .field(
                "landmarks",
                &self.landmarks.as_ref().map(|l| l.landmarks().len()),
            )
            .field("cache_len", &self.cache_len())
            .field("exact_computations", &self.exact_computations())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use crate::grid::GridConfig;

    fn lattice_oracle(landmarks: bool) -> DistanceOracle {
        let mut b = RoadNetworkBuilder::new();
        let mut ids = Vec::new();
        for y in 0..5 {
            for x in 0..5 {
                ids.push(b.add_vertex(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        for y in 0..5usize {
            for x in 0..5usize {
                let u = ids[y * 5 + x];
                if x + 1 < 5 {
                    b.add_bidirectional_edge(u, ids[y * 5 + x + 1], 100.0);
                }
                if y + 1 < 5 {
                    b.add_bidirectional_edge(u, ids[(y + 1) * 5 + x], 100.0);
                }
            }
        }
        let net = Arc::new(b.build().unwrap());
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 2)));
        if landmarks {
            let lm = Arc::new(LandmarkIndex::build(&net, 4, VertexId(0)));
            DistanceOracle::with_landmarks(net, grid, lm)
        } else {
            DistanceOracle::new(net, grid)
        }
    }

    fn oracle() -> DistanceOracle {
        lattice_oracle(false)
    }

    #[test]
    fn distance_is_memoised() {
        let o = oracle();
        let d1 = o.distance(VertexId(0), VertexId(24));
        assert_eq!(o.exact_computations(), 1);
        let d2 = o.distance(VertexId(0), VertexId(24));
        assert_eq!(d1, d2);
        assert_eq!(o.exact_computations(), 1);
        assert_eq!(o.cache_hits(), 1);
        // symmetric entry is cached too (undirected lattice)
        let d3 = o.distance(VertexId(24), VertexId(0));
        assert_eq!(d3, d1);
        assert_eq!(o.exact_computations(), 1);
    }

    #[test]
    fn directed_networks_do_not_mirror_the_cache() {
        // v0 -> v1 one-way at weight 10 over a bidirectional detour of 600.
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(50.0, 100.0);
        b.add_directed_edge(v0, v1, 10.0);
        b.add_bidirectional_edge(v0, v2, 300.0);
        b.add_bidirectional_edge(v2, v1, 300.0);
        let net = Arc::new(b.build().unwrap());
        assert!(!net.is_undirected());
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 2)));
        let o = DistanceOracle::new(net, grid);
        assert_eq!(o.distance(v0, v1), 10.0);
        // The reverse direction must take the detour, not the mirrored 10.
        assert_eq!(o.distance(v1, v0), 600.0);
        assert_eq!(o.exact_computations(), 2);
    }

    #[test]
    fn lower_bound_is_admissible_on_asymmetric_one_way_networks() {
        // Regression: the grid tables are forward-only, so on a network
        // where dist(u,v) != dist(v,u) the grid bound can exceed the true
        // distance (e.g. A->B cheap one way, B->A expensive). The oracle
        // must fall back to direction-safe bounds, and exact queries must
        // not be corrupted by an inflated A* heuristic.
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(90.0, 0.0);
        let c = b.add_vertex(200.0, 0.0);
        b.add_directed_edge(a, v1, 1.0);
        b.add_directed_edge(v1, a, 1000.0);
        b.add_bidirectional_edge(v1, c, 1.0);
        let net = Arc::new(b.build().unwrap());
        assert!(!net.is_undirected());
        // A 2x1 grid puts {A, B} in the left cell and C in the right one,
        // so B is A's cell's only border vertex and the forward table sets
        // vertex_min[A] = dist(B->A) = 1000 — wildly above dist(A->B) = 1.
        // The uncorrected grid bound then claims lb(A, C) = 1001 although
        // dist(A, C) = 2.
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 1)));
        let lm = Arc::new(LandmarkIndex::build(&net, 2, a));
        let o = DistanceOracle::with_landmarks(net, grid, lm);
        for u in [a, v1, c] {
            for v in [a, v1, c] {
                let exact = crate::dijkstra::distance_allocating(o.network(), u, v)
                    .unwrap_or(f64::INFINITY);
                // Bound first: once distance() caches the pair, lower_bound
                // returns the exact value and would mask an inflated bound.
                let lb = o.lower_bound(u, v);
                assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact} for {u}->{v}");
                assert_eq!(o.distance(u, v), exact, "exact {u}->{v}");
            }
        }
    }

    #[test]
    fn lower_bound_is_admissible() {
        for with_lm in [false, true] {
            let o = lattice_oracle(with_lm);
            for u in 0..25u32 {
                for v in 0..25u32 {
                    let lb = o.lower_bound(VertexId(u), VertexId(v));
                    let exact = o.distance(VertexId(u), VertexId(v));
                    assert!(
                        lb <= exact + 1e-9,
                        "lb {lb} > exact {exact} ({u}->{v}, landmarks={with_lm})"
                    );
                }
            }
        }
    }

    #[test]
    fn landmark_bound_tightens_lower_bounds() {
        let plain = lattice_oracle(false);
        let alt = lattice_oracle(true);
        let mut tightened = 0usize;
        for u in 0..25u32 {
            for v in 0..25u32 {
                let a = alt.lower_bound(VertexId(u), VertexId(v));
                let p = plain.lower_bound(VertexId(u), VertexId(v));
                assert!(a >= p - 1e-9, "ALT bound must never be looser");
                if a > p + 1e-9 {
                    tightened += 1;
                }
            }
        }
        assert!(tightened > 0, "ALT should tighten at least some pairs");
    }

    #[test]
    fn distances_from_matches_point_queries() {
        let o = oracle();
        let source = VertexId(7);
        let targets: Vec<VertexId> = (0..25).map(VertexId).collect();
        let batch = o.distances_from(source, &targets);
        let reference = lattice_oracle(false);
        for (t, d) in targets.iter().zip(&batch) {
            assert_eq!(*d, reference.distance(source, *t), "target {t}");
        }
        // One batched search, not 24 point-to-point searches.
        assert_eq!(o.exact_computations(), 1);
        // Second call is fully cached.
        let again = o.distances_from(source, &targets);
        assert_eq!(batch, again);
        assert_eq!(o.exact_computations(), 1);
    }

    #[test]
    fn identity_distance_is_zero_and_free() {
        let o = oracle();
        assert_eq!(o.distance(VertexId(3), VertexId(3)), 0.0);
        assert_eq!(o.exact_computations(), 0);
    }

    #[test]
    fn clear_resets_cache_and_counters() {
        let o = oracle();
        let _ = o.distance(VertexId(0), VertexId(5));
        assert!(o.cache_len() > 0);
        o.clear();
        assert_eq!(o.cache_len(), 0);
        assert_eq!(o.exact_computations(), 0);
        assert_eq!(o.cache_hits(), 0);
        assert_eq!(o.lower_bound_queries(), 0);
    }

    #[test]
    fn clones_share_cache() {
        let o = oracle();
        let o2 = o.clone();
        let _ = o.distance(VertexId(0), VertexId(10));
        let _ = o2.distance(VertexId(0), VertexId(10));
        assert_eq!(o.exact_computations(), 1);
        assert_eq!(o2.cache_hits(), 1);
    }

    #[test]
    fn concurrent_queries_agree_with_sequential() {
        let o = lattice_oracle(true);
        let mut expected = Vec::new();
        let reference = lattice_oracle(false);
        for u in 0..25u32 {
            expected.push(reference.distance(VertexId(u), VertexId(24 - u)));
        }
        let ids: Vec<u32> = (0..25).collect();
        std::thread::scope(|scope| {
            for chunk in ids.chunks(5) {
                let o = o.clone();
                scope.spawn(move || {
                    for &u in chunk {
                        let _ = o.distance(VertexId(u), VertexId(24 - u));
                    }
                });
            }
        });
        for u in 0..25u32 {
            assert_eq!(
                o.distance(VertexId(u), VertexId(24 - u)),
                expected[u as usize]
            );
        }
    }
}
