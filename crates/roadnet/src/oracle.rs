//! Memoising distance oracle combining exact shortest-path queries with the
//! grid and landmark lower bounds.
//!
//! The matching algorithms of `ptrider-core` interleave many exact distance
//! computations with cheap pruning bounds; the oracle is the hot path of the
//! whole system. Its design:
//!
//! * **Sharded cache** — exact results are memoised in hash-partitioned
//!   shards, each behind its own `parking_lot::RwLock`. Lookups take one
//!   shard read lock, inserts one shard write lock, so concurrent matcher
//!   threads do not serialise on a single global mutex (the seed used one
//!   `Mutex<HashMap>` locked twice per query). The shard count is sized to
//!   the machine ([`num_cache_shards`]): `available_parallelism` rounded to
//!   the next power of two, floored at 32.
//! * **Allocation-free ALT backend** — exact queries run A* on thread-local
//!   generation-stamped scratch buffers ([`crate::scratch`]) with the
//!   heuristic `max(euclidean, grid bound, landmark bound)`; see
//!   [`crate::astar::distance_with_landmarks`].
//! * **Swappable exact backends** — the exact computation behind a miss is
//!   selected by [`DistanceBackend`]: the ALT A* above, or a contraction
//!   hierarchy ([`crate::ch`]) whose bidirectional upward queries are
//!   microsecond-scale on city graphs. The oracle surface (`distance` /
//!   `distances_from` / `lower_bound`) is identical for both, so matchers
//!   never see which backend answered. CH construction is fallible; when it
//!   fails the oracle silently falls back to ALT instead of panicking.
//! * **Batched one-to-many** — [`DistanceOracle::distances_from`] answers
//!   `k` same-source queries with a single bounded multi-target Dijkstra
//!   (ALT backend) or a many-to-many bucket query (CH backend) instead of
//!   `k` point-to-point searches.
//! * **Canonical-direction memoisation** — on undirected networks each
//!   unordered pair is cached under a single canonical key (smaller vertex
//!   id first) and its exact value is always *folded* in the canonical
//!   direction, whichever endpoint the query named. Floating-point sums are
//!   order-sensitive in the last bit, so without this the bits an oracle
//!   returned would depend on its query history (the pre-refactor mirror
//!   stored whichever direction was computed first); with it, every answer
//!   is a pure function of the pair, which is what makes parallel batch
//!   admission bit-identical to sequential admission. One residual
//!   assumption: when a pair has *several* shortest paths whose float sums
//!   differ in the last bit, different search roots may pick different tie
//!   paths and re-fold to different bits — the same tie class the CH
//!   backend's bit-equality with Dijkstra already rests on; exact-weight
//!   grids fold identically on every tie path, and with jittered
//!   real-valued weights exact ties are vanishingly rare (the equivalence
//!   proptests would surface one as a seed failure). Networks with
//!   one-way edges cache both directions separately, as
//!   `dist(u, v) ≠ dist(v, u)` in general.
//! * **Bounded memory** — every shard carries an entry cap with
//!   second-chance (clock) eviction: a hit sets a referenced bit, and when a
//!   full shard takes an insert, unreferenced entries are evicted while
//!   referenced ones survive with their bit cleared. Long-running engines
//!   no longer grow the cache without bound.
//! * **Epoch-stamped live-traffic metric** — the oracle separates the
//!   *base* (free-flow) network, which the grid/landmark/Euclidean lower
//!   bounds are built on, from the *metric* network exact queries run on.
//!   [`DistanceOracle::apply_traffic`] swaps in a re-weighted metric
//!   ([`RoadNetwork::with_metric`] over a [`crate::traffic::TrafficModel`]
//!   of factors ≥ 1.0), repairs the CH backend with a customization pass
//!   ([`crate::ch::CchTopology`], falling back to ALT when the graph
//!   cannot be repaired) and bumps the **metric epoch**. Cache entries are
//!   stamped with the epoch they were computed under; a lookup whose stamp
//!   differs from the current epoch is a miss, so an epoch change
//!   invalidates the whole cache *lazily* — no stop-the-world clear, stale
//!   entries are overwritten on re-insert and swept first by eviction.
//!   Because factors never drop below 1.0, every base-metric lower bound
//!   stays admissible for every epoch (see DESIGN.md "Traffic model").
//!   Epoch swaps are not linearizable with *in-flight* exact queries (a
//!   query that raced the swap may return and cache a previous-epoch value
//!   under the previous stamp); callers that need a clean cut — the
//!   engine's `apply_traffic_update` — serialise the swap behind their
//!   write path.
//!
//! The exact-computation counters feed the pruning-effectiveness experiment
//! (E8).

use crate::astar;
use crate::ch::query::Bounded;
use crate::ch::{CchTopology, ContractionHierarchy};
use crate::dijkstra;
use crate::graph::RoadNetwork;
use crate::grid::GridIndex;
use crate::landmarks::LandmarkIndex;
use crate::traffic::TrafficModel;
use crate::types::VertexId;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of cache shards, sized once per process from the machine:
/// `available_parallelism` rounded up to the next power of two, with a
/// floor of 32. On laptops and CI containers this stays at the historical
/// 32; on large multi-socket boxes it grows with the cores so matcher
/// threads keep hitting distinct shards (the first step of the ROADMAP's
/// NUMA-aware sharding item — pinning comes later).
pub fn num_cache_shards() -> usize {
    static SHARDS: OnceLock<usize> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        cores.next_power_of_two().max(32)
    })
}

/// Default total cache capacity (entries across all shards): 4M pairs
/// ≈ 100 MB. Override with [`DistanceOracle::with_cache_capacity`].
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 22;

/// Settle budget of the CH-derived lower bound (both directions combined).
/// Big enough that near pairs — the ones the matchers actually admit —
/// resolve exactly and seed the cache; small enough that a truncated probe
/// stays within a few microseconds regardless of graph size.
const LOWER_BOUND_SETTLE_CAP: usize = 48;

/// Which exact shortest-path backend a [`DistanceOracle`] uses on a cache
/// miss.
///
/// Both backends return identical (exact) distances; they differ in
/// preprocessing cost and per-query latency, so the right choice depends on
/// the deployment — see DESIGN.md "Distance backends".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistanceBackend {
    /// ALT: A* with `max(euclidean, grid, landmark)` heuristics. No
    /// preprocessing beyond the landmark tables; queries settle `O(ball)`
    /// vertices. Best for small graphs, frequently-changing weights, or
    /// when engine start-up latency matters.
    #[default]
    Alt,
    /// Contraction hierarchy: heavier one-off preprocessing, then
    /// microsecond point queries and bucket-based batched queries. Best for
    /// large static city graphs under sustained match load. Falls back to
    /// [`DistanceBackend::Alt`] when construction fails (see
    /// [`crate::ChBuildError`]).
    Ch,
}

impl std::fmt::Display for DistanceBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistanceBackend::Alt => write!(f, "alt"),
            DistanceBackend::Ch => write!(f, "ch"),
        }
    }
}

/// One memoised distance plus its clock (second-chance) referenced bit and
/// the metric epoch it was computed under. The bit is set on every hit
/// through a shard *read* lock, which is why it is atomic rather than
/// plain; the epoch stamp is immutable per entry — an entry whose stamp
/// differs from the oracle's current epoch is invisible to lookups and the
/// first to go under eviction pressure.
struct CacheSlot {
    dist: f64,
    epoch: u64,
    referenced: AtomicBool,
}

type Shard = RwLock<HashMap<(VertexId, VertexId), CacheSlot>>;

/// The swappable exact-query substrate: which network weights and which
/// (possibly repaired) hierarchy answer cache misses right now. Guarded by
/// one `RwLock` — exact computations hold a read guard for their duration,
/// [`DistanceOracle::apply_traffic`] takes the write guard to swap.
struct MetricState {
    /// The network exact queries run on: the base network at epoch 0, a
    /// [`RoadNetwork::with_metric`] re-weighting afterwards.
    net: Arc<RoadNetwork>,
    /// The hierarchy answering CH-backend queries under this metric
    /// (`None` on the ALT backend, or after a repair fallback).
    ch: Option<Arc<ContractionHierarchy>>,
    /// Monotone metric epoch; 0 is the build-time free-flow metric.
    epoch: u64,
    /// Whether *this metric* is symmetric (asymmetric traffic factors can
    /// break the base network's undirectedness) — controls canonical-
    /// direction cache folding.
    undirected: bool,
}

/// What [`DistanceOracle::apply_traffic`] did.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficApplied {
    /// The metric epoch now in effect (stamped on new cache entries).
    pub epoch: u64,
    /// `true` when the CH backend was repaired by a customization pass;
    /// `false` on the ALT backend, after a repair fallback — or when a
    /// fully free-flow model reinstated the retained build-time hierarchy
    /// instead (no pass needed; the witness-pruned hierarchy is both exact
    /// and faster than any customized one).
    pub ch_repaired: bool,
    /// Arcs above free flow in the applied model.
    pub congested_arcs: usize,
    /// Largest factor in the applied model.
    pub max_factor: f64,
}

#[inline]
fn shard_of(u: VertexId, v: VertexId) -> usize {
    let key = ((u.0 as u64) << 32) | v.0 as u64;
    let shards = num_cache_shards();
    // Fibonacci hashing spreads sequential vertex ids across shards; taking
    // the *top* log2(shards) bits of the product keeps the spread even for
    // any power-of-two shard count.
    let shift = 64 - shards.trailing_zeros();
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize & (shards - 1)
}

/// Thread-safe memoising distance oracle.
///
/// Cloning the oracle is cheap; clones share the same cache and counters.
#[derive(Clone)]
pub struct DistanceOracle {
    /// The base (free-flow) network: coordinates, lower-bound substrate,
    /// and the topology every traffic metric re-weights.
    net: Arc<RoadNetwork>,
    grid: Arc<GridIndex>,
    landmarks: Option<Arc<LandmarkIndex>>,
    /// The build-time (witness-pruned) hierarchy over the base metric,
    /// retained so a fully free-flow traffic model can reinstate it — it
    /// answers queries ~an order of magnitude faster than the repair
    /// topology's customized hierarchy.
    base_ch: Option<Arc<ContractionHierarchy>>,
    /// The backend the caller asked for (repair decisions key off this).
    requested_backend: DistanceBackend,
    /// The metric exact queries currently run on (epoch-swapped).
    metric: Arc<RwLock<MetricState>>,
    /// Lock-free mirror of the metric epoch for cache staleness checks.
    epoch: Arc<AtomicU64>,
    /// Lock-free mirror of the current metric's undirectedness for
    /// canonical cache folding.
    metric_undirected: Arc<AtomicBool>,
    /// Lazily-built CH repair topology (`None` inside = repair impossible,
    /// reason recorded in `fallback`).
    cch: Arc<OnceLock<Option<Arc<CchTopology>>>>,
    /// Why the oracle is not running the backend it was asked for (CH
    /// construction failure at build time, or repair-topology failure at
    /// the first traffic epoch). `None` while requested == effective.
    fallback: Arc<RwLock<Option<String>>>,
    cache: Arc<Vec<Shard>>,
    /// Per-shard entry cap for clock eviction; `usize::MAX` disables it.
    shard_capacity: usize,
    /// Legacy-baseline mode: one global lock (shard 0, always write-locked),
    /// per-call-allocating plain Dijkstra, no ALT, no batching — the
    /// pre-refactor oracle's behaviour, kept runnable so benchmarks can
    /// quote the speedup against it. See [`Self::legacy_baseline`].
    legacy: bool,
    exact_computations: Arc<AtomicU64>,
    cache_hits: Arc<AtomicU64>,
    lower_bound_queries: Arc<AtomicU64>,
    evictions: Arc<AtomicU64>,
    /// Traffic epochs applied (equals the current metric epoch).
    traffic_epochs: Arc<AtomicU64>,
    /// CH customization passes run by [`Self::apply_traffic`].
    ch_customizations: Arc<AtomicU64>,
}

impl DistanceOracle {
    /// Creates an oracle over a network and its grid index (no landmark
    /// acceleration; see [`Self::with_landmarks`]).
    pub fn new(net: Arc<RoadNetwork>, grid: Arc<GridIndex>) -> Self {
        let undirected = net.is_undirected();
        DistanceOracle {
            metric: Arc::new(RwLock::new(MetricState {
                net: Arc::clone(&net),
                ch: None,
                epoch: 0,
                undirected,
            })),
            net,
            grid,
            landmarks: None,
            base_ch: None,
            requested_backend: DistanceBackend::Alt,
            epoch: Arc::new(AtomicU64::new(0)),
            metric_undirected: Arc::new(AtomicBool::new(undirected)),
            cch: Arc::new(OnceLock::new()),
            fallback: Arc::new(RwLock::new(None)),
            cache: Arc::new(
                (0..num_cache_shards())
                    .map(|_| RwLock::new(HashMap::new()))
                    .collect(),
            ),
            shard_capacity: (DEFAULT_CACHE_CAPACITY / num_cache_shards()).max(1),
            legacy: false,
            exact_computations: Arc::new(AtomicU64::new(0)),
            cache_hits: Arc::new(AtomicU64::new(0)),
            lower_bound_queries: Arc::new(AtomicU64::new(0)),
            evictions: Arc::new(AtomicU64::new(0)),
            traffic_epochs: Arc::new(AtomicU64::new(0)),
            ch_customizations: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates an oracle that reproduces the pre-refactor behaviour: a
    /// single globally-locked cache map, a fresh `O(V)` allocation per exact
    /// query, no goal direction, no landmark bounds and no batched
    /// one-to-many search. Exists solely as the measurement baseline for
    /// `BENCH_e9.json`; do not use in production paths.
    #[doc(hidden)]
    pub fn legacy_baseline(net: Arc<RoadNetwork>, grid: Arc<GridIndex>) -> Self {
        let mut oracle = Self::new(net, grid);
        oracle.legacy = true;
        oracle
    }

    /// Creates an oracle whose exact queries are ALT-accelerated and whose
    /// [`Self::lower_bound`] additionally uses the landmark bound — the
    /// P1–P5 pruning rules of the matchers then prune strictly more
    /// vehicles.
    pub fn with_landmarks(
        net: Arc<RoadNetwork>,
        grid: Arc<GridIndex>,
        landmarks: Arc<LandmarkIndex>,
    ) -> Self {
        let mut oracle = Self::new(net, grid);
        oracle.landmarks = Some(landmarks);
        oracle
    }

    /// Creates an oracle with an explicit exact backend. Landmarks remain
    /// optional and, when present, tighten [`Self::lower_bound`] regardless
    /// of the backend.
    ///
    /// Requesting [`DistanceBackend::Ch`] builds the hierarchy here; if
    /// construction fails (see [`crate::ChBuildError`]) the oracle **falls
    /// back to ALT** instead of panicking — [`Self::backend`] reports what
    /// is actually in use.
    pub fn with_backend(
        net: Arc<RoadNetwork>,
        grid: Arc<GridIndex>,
        landmarks: Option<Arc<LandmarkIndex>>,
        backend: DistanceBackend,
    ) -> Self {
        let mut oracle = Self::new(net, grid);
        oracle.landmarks = landmarks;
        oracle.requested_backend = backend;
        if backend == DistanceBackend::Ch {
            // Chaos hook: a fired fault point simulates the first build
            // attempt failing transiently; the build below is the single
            // retry (the schedule never fails two consecutive hits).
            let _ = crate::fault::fail_point(crate::fault::ORACLE_BUILD);
            match ContractionHierarchy::build(&oracle.net) {
                Ok(ch) => {
                    let ch = Arc::new(ch);
                    oracle.base_ch = Some(Arc::clone(&ch));
                    oracle.metric.write().ch = Some(ch);
                }
                Err(e) => {
                    // Unsupported input for contraction (e.g. shortcut
                    // blow-up): stay exact via the ALT backend, and leave
                    // an observable trace instead of failing silently —
                    // see `backend_fallback`.
                    *oracle.fallback.write() =
                        Some(format!("ch construction failed, serving via alt: {e}"));
                }
            }
        }
        oracle
    }

    /// Creates an oracle over a pre-built, shared contraction hierarchy —
    /// the cheap path for many-engines-one-city harnesses, which build the
    /// hierarchy once and hand every engine the same `Arc`.
    pub fn with_contraction_hierarchy(
        net: Arc<RoadNetwork>,
        grid: Arc<GridIndex>,
        landmarks: Option<Arc<LandmarkIndex>>,
        ch: Arc<ContractionHierarchy>,
    ) -> Self {
        let mut oracle = Self::new(net, grid);
        oracle.landmarks = landmarks;
        oracle.requested_backend = DistanceBackend::Ch;
        oracle.base_ch = Some(Arc::clone(&ch));
        oracle.metric.write().ch = Some(ch);
        oracle
    }

    /// Pre-seeds the CH repair topology (builder style, before sharing) —
    /// the many-engines-one-city path for live traffic, mirroring
    /// [`Self::with_contraction_hierarchy`]: build the topology once
    /// (~seconds at city scale) and hand every oracle the same `Arc`
    /// instead of paying the lazy build on each oracle's first epoch.
    pub fn with_repair_topology(self, topology: Arc<crate::ch::CchTopology>) -> Self {
        let _ = self.cch.set(Some(topology));
        self
    }

    /// Overrides the total cache capacity (entries across all shards).
    /// Eviction triggers per shard at `capacity / num_cache_shards()`;
    /// passing `usize::MAX` disables eviction entirely.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.shard_capacity = if capacity == usize::MAX {
            usize::MAX
        } else {
            (capacity / num_cache_shards()).max(1)
        };
        self
    }

    /// The exact backend actually answering cache misses right now (may
    /// differ from [`Self::requested_backend`] after a CH-construction
    /// fallback, or after a traffic epoch the hierarchy could not be
    /// repaired for — see [`Self::backend_fallback`] for why).
    pub fn backend(&self) -> DistanceBackend {
        if self.metric.read().ch.is_some() {
            DistanceBackend::Ch
        } else {
            DistanceBackend::Alt
        }
    }

    /// The backend this oracle was asked to run.
    pub fn requested_backend(&self) -> DistanceBackend {
        self.requested_backend
    }

    /// Why the effective backend differs from the requested one (`None`
    /// while they agree): CH construction failure at build time, or a
    /// repair-topology failure at the first traffic epoch. The perf report
    /// surfaces this so a silent ALT fallback is visible in CI artifacts.
    pub fn backend_fallback(&self) -> Option<String> {
        self.fallback.read().clone()
    }

    /// The hierarchy currently answering CH-backend queries (the build-time
    /// hierarchy at epoch 0, a customized one after a traffic epoch), if
    /// this oracle runs the CH backend.
    pub fn contraction_hierarchy(&self) -> Option<Arc<ContractionHierarchy>> {
        self.metric.read().ch.clone()
    }

    /// Total cache capacity in entries (`usize::MAX` when unbounded).
    pub fn cache_capacity(&self) -> usize {
        if self.shard_capacity == usize::MAX {
            usize::MAX
        } else {
            self.shard_capacity * num_cache_shards()
        }
    }

    /// The underlying **base** (free-flow) road network — the topology,
    /// the coordinates and the lower-bound substrate. Exact queries run on
    /// [`Self::metric_network`], which equals the base network until a
    /// traffic epoch is applied.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// The network exact queries currently run on: the base network at
    /// epoch 0, the latest [`RoadNetwork::with_metric`] re-weighting after
    /// a traffic epoch.
    pub fn metric_network(&self) -> Arc<RoadNetwork> {
        Arc::clone(&self.metric.read().net)
    }

    /// The current traffic epoch (0 = build-time free-flow metric).
    pub fn traffic_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// CH customization passes run so far by [`Self::apply_traffic`].
    pub fn ch_customizations(&self) -> u64 {
        self.ch_customizations.load(Ordering::Relaxed)
    }

    /// The underlying grid index.
    pub fn grid(&self) -> &GridIndex {
        &self.grid
    }

    /// The landmark index, if this oracle was built with one.
    pub fn landmarks(&self) -> Option<&LandmarkIndex> {
        self.landmarks.as_deref()
    }

    /// Shared handle to the underlying road network.
    pub fn network_arc(&self) -> Arc<RoadNetwork> {
        Arc::clone(&self.net)
    }

    /// Shared handle to the underlying grid index.
    pub fn grid_arc(&self) -> Arc<GridIndex> {
        Arc::clone(&self.grid)
    }

    /// The cache key of a pair: on (currently) undirected metrics the
    /// unordered pair's canonical form (smaller vertex id first), so both
    /// query directions share one entry carrying the canonical fold.
    /// Asymmetric traffic factors flip the metric to directed, and with it
    /// the keying — entries from the previous symmetry regime are already
    /// invisible via their epoch stamp.
    #[inline]
    fn cache_key(&self, u: VertexId, v: VertexId) -> (VertexId, VertexId) {
        if v < u && self.metric_undirected.load(Ordering::Relaxed) {
            (v, u)
        } else {
            (u, v)
        }
    }

    #[inline]
    fn cached(&self, u: VertexId, v: VertexId) -> Option<f64> {
        if self.legacy {
            // The seed's Mutex had no shared-read mode.
            return self.cache[0].write().get(&(u, v)).map(|s| s.dist);
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        let key = self.cache_key(u, v);
        let shard = self.cache[shard_of(key.0, key.1)].read();
        shard.get(&key).and_then(|slot| {
            // A stamp from another epoch means the entry was computed on a
            // different metric: invisible, awaiting overwrite or eviction.
            if slot.epoch != epoch {
                return None;
            }
            // Second chance: a hit through the read lock marks the entry
            // referenced so the next eviction sweep spares it.
            slot.referenced.store(true, Ordering::Relaxed);
            Some(slot.dist)
        })
    }

    /// Inserts into a write-locked shard, evicting with the second-chance
    /// (clock) policy when the shard is at capacity: entries whose
    /// referenced bit is clear are evicted, survivors lose their bit. If
    /// every entry was referenced (sweep evicted nothing), an arbitrary
    /// half of the shard is dropped so the bound always holds.
    ///
    /// Races on one key are harmless: the canonical-fold policy means every
    /// writer of a key computes the same bits whenever the pair's shortest
    /// path is unique (see the tie caveat on the module docs).
    fn insert_with_eviction(
        &self,
        map: &mut HashMap<(VertexId, VertexId), CacheSlot>,
        key: (VertexId, VertexId),
        d: f64,
        epoch: u64,
    ) {
        if map.len() >= self.shard_capacity && !map.contains_key(&key) {
            let before = map.len();
            let current = self.epoch.load(Ordering::Relaxed);
            map.retain(|_, slot| {
                // Entries from another metric epoch are dead weight: evict
                // them outright, no second chance.
                if slot.epoch != current {
                    return false;
                }
                let keep = *slot.referenced.get_mut();
                *slot.referenced.get_mut() = false;
                keep
            });
            if map.len() >= self.shard_capacity {
                let mut spare = self.shard_capacity / 2;
                map.retain(|_, _| {
                    let keep = spare > 0;
                    spare = spare.saturating_sub(1);
                    keep
                });
            }
            self.evictions
                .fetch_add((before - map.len()) as u64, Ordering::Relaxed);
        }
        map.insert(
            key,
            CacheSlot {
                dist: d,
                epoch,
                referenced: AtomicBool::new(false),
            },
        );
    }

    #[inline]
    fn store(&self, u: VertexId, v: VertexId, d: f64, epoch: u64) {
        if self.legacy {
            // Legacy baseline: unbounded single-map cache, as the seed had.
            self.cache[0].write().insert(
                (u, v),
                CacheSlot {
                    dist: d,
                    epoch: 0,
                    referenced: AtomicBool::new(false),
                },
            );
            if self.net.is_undirected() {
                self.cache[0].write().entry((v, u)).or_insert(CacheSlot {
                    dist: d,
                    epoch: 0,
                    referenced: AtomicBool::new(false),
                });
            }
            return;
        }
        // One canonical entry per unordered pair on undirected networks
        // (half the footprint of the old two-direction mirror).
        let key = self.cache_key(u, v);
        self.insert_with_eviction(
            &mut self.cache[shard_of(key.0, key.1)].write(),
            key,
            d,
            epoch,
        );
    }

    /// Exact distance on a metric snapshot, bypassing the cache. The grid
    /// and landmark heuristics were built on the base metric; with traffic
    /// factors ≥ 1.0 they lower-bound base distances which lower-bound
    /// metric distances, so they stay admissible (and consistent) on every
    /// epoch's network.
    #[inline]
    fn snapshot_distance(&self, m: &MetricState, u: VertexId, v: VertexId) -> f64 {
        match &m.ch {
            Some(ch) => ch.distance(u, v),
            None => astar::distance_with_landmarks(
                &m.net,
                u,
                v,
                Some(&self.grid),
                self.landmarks.as_deref(),
            )
            .unwrap_or(f64::INFINITY),
        }
    }

    /// Exact distance folded in canonical direction under the current
    /// metric snapshot, plus the epoch to stamp the cache entry with: on
    /// undirected metrics the search always runs from the smaller vertex
    /// id, so the returned bits depend only on the pair — never on which
    /// direction a caller happened to ask first.
    #[inline]
    fn backend_distance_canonical(&self, u: VertexId, v: VertexId) -> (f64, u64) {
        let m = self.metric.read();
        let (a, b) = if v < u && m.undirected {
            (v, u)
        } else {
            (u, v)
        };
        (self.snapshot_distance(&m, a, b), m.epoch)
    }

    /// Exact shortest-path distance **under the current traffic metric**,
    /// memoised per epoch. Returns `f64::INFINITY` when unreachable so
    /// callers can treat the result as a plain cost.
    pub fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        if u == v {
            return 0.0;
        }
        if let Some(d) = self.cached(u, v) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        self.exact_computations.fetch_add(1, Ordering::Relaxed);
        if self.legacy {
            let d = dijkstra::distance_allocating(&self.net, u, v).unwrap_or(f64::INFINITY);
            self.store(u, v, d, 0);
            return d;
        }
        let (d, epoch) = self.backend_distance_canonical(u, v);
        self.store(u, v, d, epoch);
        d
    }

    /// One-to-many exact distances from `source` to every vertex in
    /// `targets`, memoised per pair.
    ///
    /// Cache misses are answered by a *single* bounded multi-target Dijkstra
    /// (counted as one exact computation) instead of `targets.len()`
    /// independent point-to-point searches — the batching entry point for
    /// the matchers' verification loops and the kinetic-tree re-annotation.
    pub fn distances_from(&self, source: VertexId, targets: &[VertexId]) -> Vec<f64> {
        if self.legacy {
            // Pre-refactor behaviour: k independent point-to-point queries.
            return targets.iter().map(|&t| self.distance(source, t)).collect();
        }
        let mut out = vec![0.0f64; targets.len()];
        let mut missing: Vec<VertexId> = Vec::new();
        let mut missing_idx: Vec<usize> = Vec::new();
        for (i, &t) in targets.iter().enumerate() {
            if t == source {
                continue; // out[i] stays 0.0
            }
            if let Some(d) = self.cached(source, t) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                out[i] = d;
            } else {
                missing.push(t);
                missing_idx.push(i);
            }
        }
        match missing.len() {
            0 => {}
            // For a few scattered misses, point queries (goal-directed ALT
            // search or a CH upward query) beat a batch whose cost is
            // dominated by setup.
            1..=3 => {
                let m = self.metric.read();
                let epoch = m.epoch;
                // Computed under the snapshot, stored after it is released
                // (store takes shard write locks; keep the hold sets small).
                let mut drop_store: Vec<(VertexId, f64)> = Vec::with_capacity(missing.len());
                for (&i, &t) in missing_idx.iter().zip(missing.iter()) {
                    self.exact_computations.fetch_add(1, Ordering::Relaxed);
                    let (a, b) = if t < source && m.undirected {
                        (t, source)
                    } else {
                        (source, t)
                    };
                    let d = self.snapshot_distance(&m, a, b);
                    out[i] = d;
                    drop_store.push((t, d));
                }
                drop(m);
                for (t, d) in drop_store {
                    self.store(source, t, d, epoch);
                }
            }
            _ => {
                self.exact_computations.fetch_add(1, Ordering::Relaxed);
                let m = self.metric.read();
                let epoch = m.epoch;
                let undirected = m.undirected;
                let ds: Vec<f64> = match &m.ch {
                    // CH many-to-many bucket query: k backward upward
                    // searches plus one forward — independent of the
                    // geometric spread of the targets. On undirected
                    // networks, targets below the source (whose canonical
                    // fold runs the other way) are answered by canonical-
                    // direction point queries instead; CH point queries are
                    // microsecond-scale, so the batch still wins.
                    Some(ch) => {
                        if undirected {
                            let fwd: Vec<VertexId> =
                                missing.iter().copied().filter(|&t| source < t).collect();
                            let mut fwd_ds = ch.distances_from(source, &fwd).into_iter();
                            missing
                                .iter()
                                .map(|&t| {
                                    if source < t {
                                        fwd_ds.next().expect("one batch answer per fwd target")
                                    } else {
                                        ch.distance(t, source)
                                    }
                                })
                                .collect()
                        } else {
                            ch.distances_from(source, &missing)
                        }
                    }
                    // ALT: one bounded multi-target Dijkstra ball on the
                    // metric network, folded in canonical direction on
                    // undirected metrics.
                    None => {
                        if undirected {
                            dijkstra::multi_target_canonical(&m.net, source, &missing)
                        } else {
                            dijkstra::multi_target(&m.net, source, &missing)
                        }
                    }
                };
                drop(m);
                for ((&i, &t), d) in missing_idx.iter().zip(missing.iter()).zip(ds) {
                    self.store(source, t, d, epoch);
                    out[i] = d;
                }
            }
        }
        out
    }

    /// Applies a traffic model: swaps in the scaled metric network, repairs
    /// the CH backend (customization pass over the repair topology — built
    /// lazily on the first epoch — with an ALT fallback when the graph
    /// cannot be repaired), and bumps the metric epoch, which lazily
    /// invalidates every cache shard without a stop-the-world clear.
    ///
    /// Epoch swaps are not linearizable with in-flight exact queries; see
    /// the module docs. The engine-level `apply_traffic_update` wrappers
    /// run this behind the admission writer so no query is in flight.
    ///
    /// # Panics
    /// Panics if `model` was built for a different network (arc-count
    /// mismatch). On the legacy-baseline oracle this is a no-op (the
    /// baseline predates the metric split; it exists only as a benchmark
    /// reference).
    pub fn apply_traffic(&self, model: &TrafficModel) -> TrafficApplied {
        if self.legacy {
            return TrafficApplied {
                epoch: 0,
                ch_repaired: false,
                congested_arcs: model.congested_arcs(),
                max_factor: model.max_factor(),
            };
        }
        // A fully free-flow model scales every weight by exactly 1.0, so
        // the metric is bit-identical to the base network: reinstate the
        // base `Arc` and the retained build-time hierarchy (which answers
        // queries ~an order of magnitude faster than a customized one)
        // instead of re-deriving both. The epoch still bumps — cached
        // entries hold previous-epoch traffic values.
        let free_flow = model.congested_arcs() == 0;
        // One shared weight vector per congested epoch: the metric network
        // and the customized hierarchy fold the very same products, which
        // is what makes unpacked CH sums bit-identical to Dijkstra.
        let scaled = (!free_flow).then(|| model.scaled_weights(&self.net));
        let metric_net = match &scaled {
            None => {
                debug_assert_eq!(model.num_arcs(), self.net.num_directed_edges());
                Arc::clone(&self.net)
            }
            Some(scaled) => Arc::new(
                self.net
                    .with_metric(scaled.clone())
                    .expect("scaled weights are finite, non-negative and length-checked"),
            ),
        };
        let mut ch_repaired = false;
        let new_ch = if self.requested_backend != DistanceBackend::Ch {
            None
        } else if free_flow && self.base_ch.is_some() {
            self.base_ch.clone()
        } else {
            self.repair_topology().map(|topo| {
                // Chaos hook: a fired fault point simulates a transiently
                // failed customization pass; the pass below is the retry.
                let _ = crate::fault::fail_point(crate::fault::CCH_CUSTOMIZE);
                let weights = match &scaled {
                    Some(scaled) => topo.customize(scaled),
                    // Free flow without a retained build-time hierarchy
                    // (construction failed but repair works): customize on
                    // the base weights.
                    None => topo.customize(&model.scaled_weights(&self.net)),
                };
                self.ch_customizations.fetch_add(1, Ordering::Relaxed);
                ch_repaired = true;
                Arc::new(weights)
            })
        };
        if new_ch.is_some() {
            // The effective backend matches the requested one again; any
            // fallback reason recorded earlier no longer describes the
            // oracle's state.
            *self.fallback.write() = None;
        }
        let undirected = metric_net.is_undirected();
        let epoch = {
            let mut state = self.metric.write();
            state.net = metric_net;
            state.ch = new_ch;
            state.epoch += 1;
            state.undirected = undirected;
            // The lock-free mirrors are refreshed while the write guard is
            // still held, so no reader can observe the new epoch with the
            // old symmetry flag or vice versa once the swap completes.
            self.metric_undirected.store(undirected, Ordering::Relaxed);
            self.epoch.store(state.epoch, Ordering::Relaxed);
            state.epoch
        };
        self.traffic_epochs.fetch_add(1, Ordering::Relaxed);
        TrafficApplied {
            epoch,
            ch_repaired,
            congested_arcs: model.congested_arcs(),
            max_factor: model.max_factor(),
        }
    }

    /// The lazily-built CH repair topology, or `None` (with the reason
    /// recorded for [`Self::backend_fallback`]) when repair is impossible —
    /// i.e. witness-free min-degree contraction would blow the shortcut
    /// budget. Independent of the witness hierarchy: the topology carries
    /// its own fill-in-reducing order, so even an oracle whose build-time
    /// CH construction failed can serve traffic epochs on a repaired
    /// hierarchy when the graph admits one.
    fn repair_topology(&self) -> Option<&Arc<CchTopology>> {
        self.cch
            .get_or_init(|| match CchTopology::build(&self.net) {
                Ok(topo) => Some(Arc::new(topo)),
                Err(e) => {
                    *self.fallback.write() = Some(format!(
                        "ch repair topology failed, traffic epochs served via alt: {e}"
                    ));
                    None
                }
            })
            .as_ref()
    }

    /// Cheap lower bound on the shortest-path distance (never exceeds
    /// [`Self::distance`]). Takes the maximum of the grid bound, the
    /// Euclidean bound and — when available — the ALT landmark bound, or
    /// returns the cached exact value outright.
    ///
    /// On the CH backend a settle-capped upward query
    /// ([`ContractionHierarchy::bounded_distance`]) joins the maximum:
    /// pairs whose upward search spaces fit under the cap are answered
    /// **exactly** (and seed the cache, so a later [`Self::distance`] on
    /// the pair is a hit), and truncated searches contribute an admissible
    /// bound computed on the *current traffic metric* — tighter than the
    /// base-metric grid/landmark bounds wherever congestion has grown the
    /// true distance.
    pub fn lower_bound(&self, u: VertexId, v: VertexId) -> f64 {
        self.lower_bound_queries.fetch_add(1, Ordering::Relaxed);
        if u == v {
            return 0.0;
        }
        if let Some(d) = self.cached(u, v) {
            return d;
        }
        let mut lb = 0.0f64;
        if self.requested_backend == DistanceBackend::Ch && !self.legacy {
            if let Some((bounded, epoch)) = self.ch_bounded_canonical(u, v) {
                match bounded {
                    Bounded::Exact(d) => {
                        self.store(u, v, d, epoch);
                        return d;
                    }
                    Bounded::AtLeast(b) => lb = b,
                }
            }
        }
        // The grid tables assume symmetric distances (forward border
        // searches only); on directed networks fall back to the Euclidean
        // bound, which is admissible in both directions.
        let base = if self.net.is_undirected() {
            self.grid.lower_bound_with(&self.net, u, v)
        } else {
            self.net.euclidean_lower_bound(u, v)
        };
        if base > lb {
            lb = base;
        }
        if let Some(landmarks) = &self.landmarks {
            let alt = landmarks.lower_bound(u, v);
            if alt > lb {
                lb = alt;
            }
        }
        lb
    }

    /// Runs the settle-capped CH query for [`Self::lower_bound`] in
    /// canonical fold direction (so an exact answer is cache-storable),
    /// returning it with the epoch to stamp. `None` off the CH backend or
    /// while the hierarchy is unavailable (construction/repair fallback).
    #[inline]
    fn ch_bounded_canonical(&self, u: VertexId, v: VertexId) -> Option<(Bounded, u64)> {
        let m = self.metric.read();
        let ch = m.ch.as_ref()?;
        // On undirected metrics the value for (v, u) equals (u, v), so
        // querying the canonical direction loses nothing.
        let (a, b) = if v < u && m.undirected {
            (v, u)
        } else {
            (u, v)
        };
        Some((ch.bounded_distance(a, b, LOWER_BOUND_SETTLE_CAP), m.epoch))
    }

    /// Lower bound from a vertex to the closest vertex of a grid cell.
    /// Degrades to 0 on directed networks (the grid tables are forward-only
    /// and would not be admissible there).
    pub fn lower_bound_to_cell(&self, u: VertexId, cell: crate::grid::CellId) -> f64 {
        self.lower_bound_queries.fetch_add(1, Ordering::Relaxed);
        if !self.net.is_undirected() {
            return 0.0;
        }
        self.grid.lower_bound_to_cell(u, cell)
    }

    /// Number of exact shortest-path computations performed so far (a
    /// batched [`Self::distances_from`] search counts once).
    pub fn exact_computations(&self) -> u64 {
        self.exact_computations.load(Ordering::Relaxed)
    }

    /// Number of exact queries answered from the cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of lower-bound queries served.
    pub fn lower_bound_queries(&self) -> u64 {
        self.lower_bound_queries.load(Ordering::Relaxed)
    }

    /// Number of cache entries evicted by the clock policy so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Resets the counters (not the cache); used between benchmark phases.
    pub fn reset_counters(&self) {
        self.exact_computations.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.lower_bound_queries.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Clears the memoisation cache (used by benchmarks that want cold-cache
    /// measurements) and the counters.
    pub fn clear(&self) {
        for shard in self.cache.iter() {
            shard.write().clear();
        }
        self.reset_counters();
    }

    /// Number of cached entries across all shards.
    pub fn cache_len(&self) -> usize {
        self.cache.iter().map(|s| s.read().len()).sum()
    }
}

impl std::fmt::Debug for DistanceOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceOracle")
            .field("vertices", &self.net.num_vertices())
            .field("cells", &self.grid.num_cells())
            .field("backend", &self.backend())
            .field("traffic_epoch", &self.traffic_epoch())
            .field(
                "landmarks",
                &self.landmarks.as_ref().map(|l| l.landmarks().len()),
            )
            .field("cache_len", &self.cache_len())
            .field("exact_computations", &self.exact_computations())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use crate::grid::GridConfig;

    fn lattice_oracle(landmarks: bool) -> DistanceOracle {
        let mut b = RoadNetworkBuilder::new();
        let mut ids = Vec::new();
        for y in 0..5 {
            for x in 0..5 {
                ids.push(b.add_vertex(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        for y in 0..5usize {
            for x in 0..5usize {
                let u = ids[y * 5 + x];
                if x + 1 < 5 {
                    b.add_bidirectional_edge(u, ids[y * 5 + x + 1], 100.0);
                }
                if y + 1 < 5 {
                    b.add_bidirectional_edge(u, ids[(y + 1) * 5 + x], 100.0);
                }
            }
        }
        let net = Arc::new(b.build().unwrap());
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 2)));
        if landmarks {
            let lm = Arc::new(LandmarkIndex::build(&net, 4, VertexId(0)));
            DistanceOracle::with_landmarks(net, grid, lm)
        } else {
            DistanceOracle::new(net, grid)
        }
    }

    fn oracle() -> DistanceOracle {
        lattice_oracle(false)
    }

    #[test]
    fn distance_is_memoised() {
        let o = oracle();
        let d1 = o.distance(VertexId(0), VertexId(24));
        assert_eq!(o.exact_computations(), 1);
        let d2 = o.distance(VertexId(0), VertexId(24));
        assert_eq!(d1, d2);
        assert_eq!(o.exact_computations(), 1);
        assert_eq!(o.cache_hits(), 1);
        // symmetric entry is cached too (undirected lattice)
        let d3 = o.distance(VertexId(24), VertexId(0));
        assert_eq!(d3, d1);
        assert_eq!(o.exact_computations(), 1);
    }

    #[test]
    fn directed_networks_do_not_mirror_the_cache() {
        // v0 -> v1 one-way at weight 10 over a bidirectional detour of 600.
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(50.0, 100.0);
        b.add_directed_edge(v0, v1, 10.0);
        b.add_bidirectional_edge(v0, v2, 300.0);
        b.add_bidirectional_edge(v2, v1, 300.0);
        let net = Arc::new(b.build().unwrap());
        assert!(!net.is_undirected());
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 2)));
        let o = DistanceOracle::new(net, grid);
        assert_eq!(o.distance(v0, v1), 10.0);
        // The reverse direction must take the detour, not the mirrored 10.
        assert_eq!(o.distance(v1, v0), 600.0);
        assert_eq!(o.exact_computations(), 2);
    }

    #[test]
    fn lower_bound_is_admissible_on_asymmetric_one_way_networks() {
        // Regression: the grid tables are forward-only, so on a network
        // where dist(u,v) != dist(v,u) the grid bound can exceed the true
        // distance (e.g. A->B cheap one way, B->A expensive). The oracle
        // must fall back to direction-safe bounds, and exact queries must
        // not be corrupted by an inflated A* heuristic.
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(90.0, 0.0);
        let c = b.add_vertex(200.0, 0.0);
        b.add_directed_edge(a, v1, 1.0);
        b.add_directed_edge(v1, a, 1000.0);
        b.add_bidirectional_edge(v1, c, 1.0);
        let net = Arc::new(b.build().unwrap());
        assert!(!net.is_undirected());
        // A 2x1 grid puts {A, B} in the left cell and C in the right one,
        // so B is A's cell's only border vertex and the forward table sets
        // vertex_min[A] = dist(B->A) = 1000 — wildly above dist(A->B) = 1.
        // The uncorrected grid bound then claims lb(A, C) = 1001 although
        // dist(A, C) = 2.
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 1)));
        let lm = Arc::new(LandmarkIndex::build(&net, 2, a));
        let o = DistanceOracle::with_landmarks(net, grid, lm);
        for u in [a, v1, c] {
            for v in [a, v1, c] {
                let exact = crate::dijkstra::distance_allocating(o.network(), u, v)
                    .unwrap_or(f64::INFINITY);
                // Bound first: once distance() caches the pair, lower_bound
                // returns the exact value and would mask an inflated bound.
                let lb = o.lower_bound(u, v);
                assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact} for {u}->{v}");
                assert_eq!(o.distance(u, v), exact, "exact {u}->{v}");
            }
        }
    }

    #[test]
    fn lower_bound_is_admissible() {
        for with_lm in [false, true] {
            let o = lattice_oracle(with_lm);
            for u in 0..25u32 {
                for v in 0..25u32 {
                    let lb = o.lower_bound(VertexId(u), VertexId(v));
                    let exact = o.distance(VertexId(u), VertexId(v));
                    assert!(
                        lb <= exact + 1e-9,
                        "lb {lb} > exact {exact} ({u}->{v}, landmarks={with_lm})"
                    );
                }
            }
        }
    }

    #[test]
    fn landmark_bound_tightens_lower_bounds() {
        let plain = lattice_oracle(false);
        let alt = lattice_oracle(true);
        let mut tightened = 0usize;
        for u in 0..25u32 {
            for v in 0..25u32 {
                let a = alt.lower_bound(VertexId(u), VertexId(v));
                let p = plain.lower_bound(VertexId(u), VertexId(v));
                assert!(a >= p - 1e-9, "ALT bound must never be looser");
                if a > p + 1e-9 {
                    tightened += 1;
                }
            }
        }
        assert!(tightened > 0, "ALT should tighten at least some pairs");
    }

    #[test]
    fn distances_from_matches_point_queries() {
        let o = oracle();
        let source = VertexId(7);
        let targets: Vec<VertexId> = (0..25).map(VertexId).collect();
        let batch = o.distances_from(source, &targets);
        let reference = lattice_oracle(false);
        for (t, d) in targets.iter().zip(&batch) {
            assert_eq!(*d, reference.distance(source, *t), "target {t}");
        }
        // One batched search, not 24 point-to-point searches.
        assert_eq!(o.exact_computations(), 1);
        // Second call is fully cached.
        let again = o.distances_from(source, &targets);
        assert_eq!(batch, again);
        assert_eq!(o.exact_computations(), 1);
    }

    #[test]
    fn identity_distance_is_zero_and_free() {
        let o = oracle();
        assert_eq!(o.distance(VertexId(3), VertexId(3)), 0.0);
        assert_eq!(o.exact_computations(), 0);
    }

    #[test]
    fn clear_resets_cache_and_counters() {
        let o = oracle();
        let _ = o.distance(VertexId(0), VertexId(5));
        assert!(o.cache_len() > 0);
        o.clear();
        assert_eq!(o.cache_len(), 0);
        assert_eq!(o.exact_computations(), 0);
        assert_eq!(o.cache_hits(), 0);
        assert_eq!(o.lower_bound_queries(), 0);
    }

    fn lattice_oracle_with_backend(backend: DistanceBackend) -> DistanceOracle {
        let base = lattice_oracle(false);
        DistanceOracle::with_backend(base.network_arc(), base.grid_arc(), None, backend)
    }

    #[test]
    fn ch_backend_matches_alt_backend() {
        let alt = lattice_oracle_with_backend(DistanceBackend::Alt);
        let ch = lattice_oracle_with_backend(DistanceBackend::Ch);
        assert_eq!(alt.backend(), DistanceBackend::Alt);
        assert_eq!(ch.backend(), DistanceBackend::Ch);
        assert!(ch.contraction_hierarchy().is_some());
        for u in 0..25u32 {
            for v in 0..25u32 {
                let a = alt.distance(VertexId(u), VertexId(v));
                let c = ch.distance(VertexId(u), VertexId(v));
                assert!((a - c).abs() < 1e-6, "{u}->{v}: alt {a} vs ch {c}");
            }
        }
    }

    #[test]
    fn ch_backend_batches_through_buckets() {
        let ch = lattice_oracle_with_backend(DistanceBackend::Ch);
        let reference = lattice_oracle(false);
        let source = VertexId(3);
        let targets: Vec<VertexId> = (0..25).map(VertexId).collect();
        let batch = ch.distances_from(source, &targets);
        for (t, d) in targets.iter().zip(&batch) {
            assert_eq!(*d, reference.distance(source, *t), "target {t}");
        }
        // The whole batch is one exact computation, like the ALT path.
        assert_eq!(ch.exact_computations(), 1);
    }

    #[test]
    fn ch_backend_is_exact_on_directed_networks() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(50.0, 100.0);
        b.add_directed_edge(v0, v1, 10.0);
        b.add_bidirectional_edge(v0, v2, 300.0);
        b.add_bidirectional_edge(v2, v1, 300.0);
        let net = Arc::new(b.build().unwrap());
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 2)));
        let o = DistanceOracle::with_backend(net, grid, None, DistanceBackend::Ch);
        assert_eq!(o.backend(), DistanceBackend::Ch);
        assert_eq!(o.distance(v0, v1), 10.0);
        assert_eq!(o.distance(v1, v0), 600.0);
    }

    #[test]
    fn eviction_bounds_the_cache() {
        // One entry per shard; 600 distinct pairs overflow immediately.
        let capacity = num_cache_shards();
        let o = lattice_oracle(false).with_cache_capacity(capacity);
        assert_eq!(o.cache_capacity(), capacity);
        for u in 0..25u32 {
            for v in 0..25u32 {
                if u != v {
                    let _ = o.distance(VertexId(u), VertexId(v));
                }
            }
        }
        assert!(
            o.cache_len() <= capacity,
            "cache grew past its capacity: {}",
            o.cache_len()
        );
        assert!(o.evictions() > 0);
        // Evicted entries are recomputed correctly.
        assert_eq!(o.distance(VertexId(0), VertexId(24)), 800.0);
    }

    #[test]
    fn referenced_entries_survive_a_sweep() {
        // Two entries per shard. Three canonical pairs (u < v on an
        // undirected network) that all hash into shard 0, so the occupancy
        // is fully controlled: after `hot` is touched and `cold` sits
        // untouched, the insert of `third` must sweep the shard — evicting
        // `cold` (bit clear) and sparing `hot` (second chance).
        let o = lattice_oracle(false).with_cache_capacity(2 * num_cache_shards());
        let mut colliding = Vec::new();
        'outer: for u in 0..25u32 {
            for v in (u + 1)..25u32 {
                let (u, v) = (VertexId(u), VertexId(v));
                if shard_of(u, v) == 0 {
                    colliding.push((u, v));
                    if colliding.len() == 3 {
                        break 'outer;
                    }
                }
            }
        }
        let &[hot, cold, third] = colliding.as_slice() else {
            panic!("lattice must yield three shard-0 pairs");
        };
        let _ = o.distance(hot.0, hot.1);
        let _ = o.distance(hot.0, hot.1); // hit: sets the referenced bit
        assert_eq!(o.cache_hits(), 1);
        let _ = o.distance(cold.0, cold.1); // second entry, bit clear
        let _ = o.distance(third.0, third.1); // shard full -> sweep
        assert_eq!(o.evictions(), 1, "exactly the cold entry is evicted");
        // The referenced hot pair survived the sweep ...
        let hits_before = o.cache_hits();
        let _ = o.distance(hot.0, hot.1);
        assert_eq!(o.cache_hits(), hits_before + 1, "hot entry must survive");
        // ... while the unreferenced cold pair was evicted and recomputes.
        let exact_before = o.exact_computations();
        let _ = o.distance(cold.0, cold.1);
        assert_eq!(o.exact_computations(), exact_before + 1, "cold evicted");
    }

    #[test]
    fn traffic_epoch_invalidates_cached_distances_lazily() {
        for backend in [DistanceBackend::Alt, DistanceBackend::Ch] {
            let o = lattice_oracle_with_backend(backend);
            let (u, v) = (VertexId(0), VertexId(24));
            assert_eq!(o.traffic_epoch(), 0);
            let base = o.distance(u, v);
            assert_eq!(base, 800.0);
            assert_eq!(o.exact_computations(), 1);
            assert!(o.cache_len() > 0, "the base answer is cached");

            // Congest everything 2x: the cached entry must become invisible
            // without a clear, and the fresh answer reflects the new metric.
            let model = TrafficModel::uniform(o.network(), 2.0);
            let applied = o.apply_traffic(&model);
            assert_eq!(applied.epoch, 1);
            assert_eq!(o.traffic_epoch(), 1);
            assert_eq!(applied.ch_repaired, backend == DistanceBackend::Ch);
            assert_eq!(o.backend(), backend, "backend survives the epoch");
            let congested = o.distance(u, v);
            assert_eq!(congested, 1600.0, "backend {backend}");
            assert_eq!(o.exact_computations(), 2, "stale entry must not hit");

            // Back to free flow: values return to the base bits, the base
            // network `Arc` is reinstated, and on the CH backend the
            // retained build-time hierarchy comes back without another
            // customization pass.
            let applied = o.apply_traffic(&TrafficModel::free_flow(o.network()));
            assert_eq!(applied.epoch, 2);
            assert!(!applied.ch_repaired, "free flow reinstates, not repairs");
            assert!(Arc::ptr_eq(&o.metric_network(), &o.network_arc()));
            assert_eq!(o.distance(u, v).to_bits(), base.to_bits());
            assert_eq!(o.backend(), backend);
            if backend == DistanceBackend::Ch {
                assert_eq!(o.ch_customizations(), 1, "only the congested epoch");
                assert!(o.backend_fallback().is_none());
            }
        }
    }

    #[test]
    fn traffic_batches_and_bounds_stay_consistent() {
        let o = lattice_oracle_with_backend(DistanceBackend::Ch);
        let mut model = TrafficModel::free_flow(o.network());
        // Congest a horizontal corridor asymmetrically strong enough to
        // reroute paths, but keep it symmetric so the metric stays
        // undirected.
        for u in 0..4u32 {
            model.set_segment_factor(o.network(), VertexId(u), VertexId(u + 1), 5.0);
        }
        o.apply_traffic(&model);
        let metric = o.metric_network();
        let targets: Vec<VertexId> = (0..25).map(VertexId).collect();
        for source in [VertexId(0), VertexId(7), VertexId(24)] {
            let batch = o.distances_from(source, &targets);
            for (t, d) in targets.iter().zip(&batch) {
                let exact = crate::dijkstra::distance(&metric, source, *t).unwrap_or(f64::INFINITY);
                assert_eq!(d.to_bits(), exact.to_bits(), "{source}->{t}");
                let lb = o.lower_bound(source, *t);
                assert!(
                    lb <= exact + 1e-9,
                    "lb {lb} > exact {exact} ({source}->{t})"
                );
            }
        }
    }

    #[test]
    fn alt_requested_oracle_reports_no_fallback() {
        let o = lattice_oracle_with_backend(DistanceBackend::Alt);
        assert_eq!(o.requested_backend(), DistanceBackend::Alt);
        assert_eq!(o.backend(), DistanceBackend::Alt);
        assert!(o.backend_fallback().is_none());
        // Traffic on the ALT backend never claims a repair.
        let applied = o.apply_traffic(&TrafficModel::uniform(o.network(), 1.5));
        assert!(!applied.ch_repaired);
        assert_eq!(o.ch_customizations(), 0);
    }

    #[test]
    fn clones_share_cache() {
        let o = oracle();
        let o2 = o.clone();
        let _ = o.distance(VertexId(0), VertexId(10));
        let _ = o2.distance(VertexId(0), VertexId(10));
        assert_eq!(o.exact_computations(), 1);
        assert_eq!(o2.cache_hits(), 1);
    }

    #[test]
    fn concurrent_queries_agree_with_sequential() {
        let o = lattice_oracle(true);
        let mut expected = Vec::new();
        let reference = lattice_oracle(false);
        for u in 0..25u32 {
            expected.push(reference.distance(VertexId(u), VertexId(24 - u)));
        }
        let ids: Vec<u32> = (0..25).collect();
        std::thread::scope(|scope| {
            for chunk in ids.chunks(5) {
                let o = o.clone();
                scope.spawn(move || {
                    for &u in chunk {
                        let _ = o.distance(VertexId(u), VertexId(24 - u));
                    }
                });
            }
        });
        for u in 0..25u32 {
            assert_eq!(
                o.distance(VertexId(u), VertexId(24 - u)),
                expected[u as usize]
            );
        }
    }
}
