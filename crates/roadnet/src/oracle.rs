//! Memoising distance oracle combining exact Dijkstra queries with the grid
//! lower bounds.
//!
//! The matching algorithms of `ptrider-core` interleave many exact distance
//! computations with cheap pruning bounds. The oracle centralises both so
//! that (i) repeated exact queries hit a cache, and (ii) the number of exact
//! shortest-path computations can be counted — the metric reported by the
//! pruning-effectiveness experiment (E8).

use crate::dijkstra;
use crate::graph::RoadNetwork;
use crate::grid::GridIndex;
use crate::types::VertexId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe memoising distance oracle.
///
/// Cloning the oracle is cheap; clones share the same cache and counters.
#[derive(Clone)]
pub struct DistanceOracle {
    net: Arc<RoadNetwork>,
    grid: Arc<GridIndex>,
    cache: Arc<Mutex<HashMap<(VertexId, VertexId), f64>>>,
    exact_computations: Arc<AtomicU64>,
    cache_hits: Arc<AtomicU64>,
    lower_bound_queries: Arc<AtomicU64>,
}

impl DistanceOracle {
    /// Creates an oracle over a network and its grid index.
    pub fn new(net: Arc<RoadNetwork>, grid: Arc<GridIndex>) -> Self {
        DistanceOracle {
            net,
            grid,
            cache: Arc::new(Mutex::new(HashMap::new())),
            exact_computations: Arc::new(AtomicU64::new(0)),
            cache_hits: Arc::new(AtomicU64::new(0)),
            lower_bound_queries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// The underlying grid index.
    pub fn grid(&self) -> &GridIndex {
        &self.grid
    }

    /// Shared handle to the underlying road network.
    pub fn network_arc(&self) -> Arc<RoadNetwork> {
        Arc::clone(&self.net)
    }

    /// Shared handle to the underlying grid index.
    pub fn grid_arc(&self) -> Arc<GridIndex> {
        Arc::clone(&self.grid)
    }

    /// Exact shortest-path distance, memoised. Returns `f64::INFINITY` when
    /// unreachable so callers can treat the result as a plain cost.
    pub fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        if u == v {
            return 0.0;
        }
        let key = (u, v);
        if let Some(&d) = self.cache.lock().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        self.exact_computations.fetch_add(1, Ordering::Relaxed);
        let d = dijkstra::distance(&self.net, u, v).unwrap_or(f64::INFINITY);
        let mut cache = self.cache.lock();
        cache.insert(key, d);
        // Undirected networks: store the symmetric entry too.
        cache.entry((v, u)).or_insert(d);
        d
    }

    /// Cheap lower bound on the shortest-path distance (never exceeds
    /// [`Self::distance`]). Uses the grid matrix plus the Euclidean bound,
    /// or the cached exact value when available.
    pub fn lower_bound(&self, u: VertexId, v: VertexId) -> f64 {
        self.lower_bound_queries.fetch_add(1, Ordering::Relaxed);
        if u == v {
            return 0.0;
        }
        if let Some(&d) = self.cache.lock().get(&(u, v)) {
            return d;
        }
        self.grid.lower_bound_with(&self.net, u, v)
    }

    /// Lower bound from a vertex to the closest vertex of a grid cell.
    pub fn lower_bound_to_cell(&self, u: VertexId, cell: crate::grid::CellId) -> f64 {
        self.lower_bound_queries.fetch_add(1, Ordering::Relaxed);
        self.grid.lower_bound_to_cell(u, cell)
    }

    /// Number of exact Dijkstra computations performed so far.
    pub fn exact_computations(&self) -> u64 {
        self.exact_computations.load(Ordering::Relaxed)
    }

    /// Number of exact queries answered from the cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of lower-bound queries served.
    pub fn lower_bound_queries(&self) -> u64 {
        self.lower_bound_queries.load(Ordering::Relaxed)
    }

    /// Resets the counters (not the cache); used between benchmark phases.
    pub fn reset_counters(&self) {
        self.exact_computations.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.lower_bound_queries.store(0, Ordering::Relaxed);
    }

    /// Clears the memoisation cache (used by benchmarks that want cold-cache
    /// measurements) and the counters.
    pub fn clear(&self) {
        self.cache.lock().clear();
        self.reset_counters();
    }

    /// Number of cached entries.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }
}

impl std::fmt::Debug for DistanceOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceOracle")
            .field("vertices", &self.net.num_vertices())
            .field("cells", &self.grid.num_cells())
            .field("cache_len", &self.cache_len())
            .field("exact_computations", &self.exact_computations())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use crate::grid::GridConfig;

    fn oracle() -> DistanceOracle {
        let mut b = RoadNetworkBuilder::new();
        let mut ids = Vec::new();
        for y in 0..5 {
            for x in 0..5 {
                ids.push(b.add_vertex(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        for y in 0..5usize {
            for x in 0..5usize {
                let u = ids[y * 5 + x];
                if x + 1 < 5 {
                    b.add_bidirectional_edge(u, ids[y * 5 + x + 1], 100.0);
                }
                if y + 1 < 5 {
                    b.add_bidirectional_edge(u, ids[(y + 1) * 5 + x], 100.0);
                }
            }
        }
        let net = Arc::new(b.build().unwrap());
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 2)));
        DistanceOracle::new(net, grid)
    }

    #[test]
    fn distance_is_memoised() {
        let o = oracle();
        let d1 = o.distance(VertexId(0), VertexId(24));
        assert_eq!(o.exact_computations(), 1);
        let d2 = o.distance(VertexId(0), VertexId(24));
        assert_eq!(d1, d2);
        assert_eq!(o.exact_computations(), 1);
        assert_eq!(o.cache_hits(), 1);
        // symmetric entry is cached too
        let d3 = o.distance(VertexId(24), VertexId(0));
        assert_eq!(d3, d1);
        assert_eq!(o.exact_computations(), 1);
    }

    #[test]
    fn lower_bound_is_admissible() {
        let o = oracle();
        for u in 0..25u32 {
            for v in 0..25u32 {
                let lb = o.lower_bound(VertexId(u), VertexId(v));
                let exact = o.distance(VertexId(u), VertexId(v));
                assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact} ({u}->{v})");
            }
        }
    }

    #[test]
    fn identity_distance_is_zero_and_free() {
        let o = oracle();
        assert_eq!(o.distance(VertexId(3), VertexId(3)), 0.0);
        assert_eq!(o.exact_computations(), 0);
    }

    #[test]
    fn clear_resets_cache_and_counters() {
        let o = oracle();
        let _ = o.distance(VertexId(0), VertexId(5));
        assert!(o.cache_len() > 0);
        o.clear();
        assert_eq!(o.cache_len(), 0);
        assert_eq!(o.exact_computations(), 0);
        assert_eq!(o.cache_hits(), 0);
        assert_eq!(o.lower_bound_queries(), 0);
    }

    #[test]
    fn clones_share_cache() {
        let o = oracle();
        let o2 = o.clone();
        let _ = o.distance(VertexId(0), VertexId(10));
        let _ = o2.distance(VertexId(0), VertexId(10));
        assert_eq!(o.exact_computations(), 1);
        assert_eq!(o2.cache_hits(), 1);
    }
}
