//! The road network graph `G = (V, E, W)` of Section 2.1.
//!
//! Vertices are road intersections with planar coordinates; each directed
//! edge carries a travel-cost weight in metres (the paper allows either time
//! or distance and assumes constant speed, so we standardise on distance and
//! convert with [`crate::Speed`]). Networks are built once through
//! [`RoadNetworkBuilder`] and then immutable, which lets the adjacency be
//! stored in a compact CSR (compressed sparse row) layout for cache-friendly
//! traversal — the access pattern that dominates Dijkstra runs.

use crate::error::RoadNetError;
use crate::types::{Point, VertexId};
use serde::{Deserialize, Serialize};

/// A directed edge as supplied to the builder.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub from: VertexId,
    /// Target vertex.
    pub to: VertexId,
    /// Travel cost in metres; must be finite and non-negative.
    pub weight: f64,
}

/// Incrementally builds a [`RoadNetwork`].
///
/// ```
/// use ptrider_roadnet::RoadNetworkBuilder;
/// let mut b = RoadNetworkBuilder::new();
/// let u = b.add_vertex(0.0, 0.0);
/// let v = b.add_vertex(100.0, 0.0);
/// b.add_bidirectional_edge(u, v, 100.0);
/// let net = b.build().unwrap();
/// assert_eq!(net.num_vertices(), 2);
/// assert_eq!(net.num_directed_edges(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoadNetworkBuilder {
    coords: Vec<Point>,
    edges: Vec<Edge>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with capacity hints.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        RoadNetworkBuilder {
            coords: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a vertex at the given planar coordinate (metres) and returns its id.
    pub fn add_vertex(&mut self, x: f64, y: f64) -> VertexId {
        let id = VertexId(self.coords.len() as u32);
        self.coords.push(Point::new(x, y));
        id
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Adds a directed edge.
    pub fn add_directed_edge(&mut self, from: VertexId, to: VertexId, weight: f64) {
        self.edges.push(Edge { from, to, weight });
    }

    /// Adds a pair of directed edges `(u → v)` and `(v → u)` with the same weight.
    ///
    /// The paper's road network is undirected (Fig. 1), so this is the common
    /// entry point.
    pub fn add_bidirectional_edge(&mut self, u: VertexId, v: VertexId, weight: f64) {
        self.add_directed_edge(u, v, weight);
        self.add_directed_edge(v, u, weight);
    }

    /// Validates the accumulated vertices/edges and builds the immutable network.
    pub fn build(self) -> Result<RoadNetwork, RoadNetError> {
        RoadNetwork::from_parts(self.coords, self.edges)
    }
}

/// An immutable road network with CSR adjacency.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoadNetwork {
    coords: Vec<Point>,
    /// CSR offsets: outgoing edges of vertex `v` are `targets[offsets[v]..offsets[v+1]]`.
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    weights: Vec<f64>,
    /// Smallest ratio of edge weight to Euclidean length of its endpoints,
    /// used as an admissible A* heuristic scale. `0.0` when undefined.
    min_weight_ratio: f64,
    /// `true` when every directed edge `(u, v, w)` has a reverse edge
    /// `(v, u, w)` with the same weight, i.e. the network is effectively
    /// undirected. Computed once at build time; consumers use it to decide
    /// whether symmetric shortcuts (cache mirroring, two-sided landmark
    /// bounds) are sound.
    undirected: bool,
}

impl RoadNetwork {
    /// Builds a network from raw vertex coordinates and an edge list.
    pub fn from_parts(coords: Vec<Point>, edges: Vec<Edge>) -> Result<Self, RoadNetError> {
        if coords.is_empty() {
            return Err(RoadNetError::EmptyNetwork);
        }
        for (i, p) in coords.iter().enumerate() {
            if !p.x.is_finite() || !p.y.is_finite() {
                return Err(RoadNetError::InvalidCoordinate(VertexId(i as u32)));
            }
        }
        let n = coords.len();
        for e in &edges {
            if e.from.index() >= n {
                return Err(RoadNetError::UnknownVertex(e.from));
            }
            if e.to.index() >= n {
                return Err(RoadNetError::UnknownVertex(e.to));
            }
            if !e.weight.is_finite() || e.weight < 0.0 {
                return Err(RoadNetError::InvalidWeight {
                    from: e.from,
                    to: e.to,
                    weight: e.weight,
                });
            }
        }

        // Counting sort of edges by source vertex into CSR arrays.
        let mut degree = vec![0u32; n];
        for e in &edges {
            degree[e.from.index()] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![VertexId(0); edges.len()];
        let mut weights = vec![0.0f64; edges.len()];
        let mut min_weight_ratio = f64::INFINITY;
        for e in &edges {
            let slot = cursor[e.from.index()] as usize;
            targets[slot] = e.to;
            weights[slot] = e.weight;
            cursor[e.from.index()] += 1;
            let euclid = coords[e.from.index()].euclidean(&coords[e.to.index()]);
            if euclid > 0.0 {
                min_weight_ratio = min_weight_ratio.min(e.weight / euclid);
            }
        }
        if !min_weight_ratio.is_finite() {
            min_weight_ratio = 0.0;
        }

        // Undirectedness check: every directed edge must have a reverse
        // twin with an identical weight (bit-exact; weights come from the
        // same f64 source on both directions of a bidirectional edge).
        let undirected = {
            let mut set: std::collections::HashSet<(u32, u32, u64)> =
                std::collections::HashSet::with_capacity(edges.len());
            for e in &edges {
                set.insert((e.from.0, e.to.0, e.weight.to_bits()));
            }
            edges
                .iter()
                .all(|e| set.contains(&(e.to.0, e.from.0, e.weight.to_bits())))
        };

        Ok(RoadNetwork {
            coords,
            offsets,
            targets,
            weights,
            min_weight_ratio,
            undirected,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` if `v` is a valid vertex id for this network.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        v.index() < self.num_vertices()
    }

    /// Planar coordinate of a vertex.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn coord(&self, v: VertexId) -> Point {
        self.coords[v.index()]
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Outgoing neighbours of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Out-degree of a vertex.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Straight-line distance between the coordinates of two vertices.
    #[inline]
    pub fn euclidean(&self, u: VertexId, v: VertexId) -> f64 {
        self.coord(u).euclidean(&self.coord(v))
    }

    /// A lower bound on the road distance between two vertices derived from
    /// the Euclidean distance and the smallest weight/length ratio of any
    /// edge. Always admissible (never exceeds the true road distance).
    #[inline]
    pub fn euclidean_lower_bound(&self, u: VertexId, v: VertexId) -> f64 {
        self.euclidean(u, v) * self.min_weight_ratio
    }

    /// Smallest edge weight / Euclidean length ratio (A* heuristic scale).
    #[inline]
    pub fn min_weight_ratio(&self) -> f64 {
        self.min_weight_ratio
    }

    /// `true` when every directed edge has a same-weight reverse edge, so
    /// `dist(u, v) = dist(v, u)` for all vertex pairs. Networks built
    /// exclusively with [`RoadNetworkBuilder::add_bidirectional_edge`] are
    /// undirected; any one-way edge makes this `false`.
    #[inline]
    pub fn is_undirected(&self) -> bool {
        self.undirected
    }

    /// Axis-aligned bounding box of all vertex coordinates `(min, max)`.
    pub fn bounding_box(&self) -> (Point, Point) {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.coords {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        (min, max)
    }

    /// Sum of all directed edge weights (useful as an upper bound on any
    /// simple path length).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// CSR arc-index range of the outgoing arcs of `v`. Arc indices are
    /// stable for the lifetime of the network (and across
    /// [`Self::with_metric`] re-weightings, which preserve the topology),
    /// so they serve as compact per-arc keys — the representation
    /// [`crate::traffic::TrafficModel`] stores its factors under.
    #[inline]
    pub fn out_arc_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize
    }

    /// Target vertex of the CSR arc at `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    #[inline]
    pub fn arc_target(&self, index: usize) -> VertexId {
        self.targets[index]
    }

    /// Weight of the CSR arc at `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    #[inline]
    pub fn arc_weight(&self, index: usize) -> f64 {
        self.weights[index]
    }

    /// Builds a network with the **same topology** (vertices, arcs, arc
    /// indices) but a new weight per CSR arc — the metric-swap entry point
    /// of the live-traffic subsystem. `weights[i]` replaces the weight of
    /// the arc at CSR index `i`; the derived quantities (`min_weight_ratio`,
    /// the undirectedness flag) are recomputed from the new metric.
    ///
    /// Callers that scale the free-flow weights by factors ≥ 1.0 (as
    /// [`crate::traffic::TrafficModel`] does) obtain a metric that
    /// dominates the base metric edge by edge, so every lower bound derived
    /// from the base network (Euclidean, grid, landmark) remains admissible
    /// for the new metric — see DESIGN.md "Traffic model".
    pub fn with_metric(&self, weights: Vec<f64>) -> Result<RoadNetwork, RoadNetError> {
        if weights.len() != self.targets.len() {
            return Err(RoadNetError::MetricLengthMismatch {
                expected: self.targets.len(),
                got: weights.len(),
            });
        }
        let mut min_weight_ratio = f64::INFINITY;
        for v in self.vertices() {
            for i in self.out_arc_range(v) {
                let w = weights[i];
                if !w.is_finite() || w < 0.0 {
                    return Err(RoadNetError::InvalidWeight {
                        from: v,
                        to: self.targets[i],
                        weight: w,
                    });
                }
                let euclid = self.euclidean(v, self.targets[i]);
                if euclid > 0.0 {
                    min_weight_ratio = min_weight_ratio.min(w / euclid);
                }
            }
        }
        if !min_weight_ratio.is_finite() {
            min_weight_ratio = 0.0;
        }
        // Undirectedness under the new metric: the topology is symmetric iff
        // the base network's was, but asymmetric re-weighting can still break
        // dist(u, v) = dist(v, u), so the reverse-twin check reruns on the
        // new weights.
        let undirected = {
            let mut set: std::collections::HashSet<(u32, u32, u64)> =
                std::collections::HashSet::with_capacity(weights.len());
            let mut all = true;
            for v in self.vertices() {
                for i in self.out_arc_range(v) {
                    set.insert((v.0, self.targets[i].0, weights[i].to_bits()));
                }
            }
            'outer: for v in self.vertices() {
                for i in self.out_arc_range(v) {
                    if !set.contains(&(self.targets[i].0, v.0, weights[i].to_bits())) {
                        all = false;
                        break 'outer;
                    }
                }
            }
            all
        };
        Ok(RoadNetwork {
            coords: self.coords.clone(),
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights,
            min_weight_ratio,
            undirected,
        })
    }

    /// All directed edges, in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            let lo = self.offsets[u] as usize;
            let hi = self.offsets[u + 1] as usize;
            (lo..hi).map(move |i| Edge {
                from: VertexId(u as u32),
                to: self.targets[i],
                weight: self.weights[i],
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(100.0, 100.0);
        b.add_bidirectional_edge(v0, v1, 100.0);
        b.add_bidirectional_edge(v1, v2, 100.0);
        b.add_directed_edge(v0, v2, 250.0);
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = RoadNetworkBuilder::new();
        assert_eq!(b.add_vertex(0.0, 0.0), VertexId(0));
        assert_eq!(b.add_vertex(1.0, 1.0), VertexId(1));
        assert_eq!(b.num_vertices(), 2);
    }

    #[test]
    fn csr_adjacency_matches_edge_list() {
        let net = small_net();
        assert_eq!(net.num_vertices(), 3);
        assert_eq!(net.num_directed_edges(), 5);
        let n0: Vec<_> = net.neighbors(VertexId(0)).collect();
        assert!(n0.contains(&(VertexId(1), 100.0)));
        assert!(n0.contains(&(VertexId(2), 250.0)));
        assert_eq!(net.degree(VertexId(0)), 2);
        assert_eq!(net.degree(VertexId(2)), 1);
    }

    #[test]
    fn edges_iterator_roundtrips() {
        let net = small_net();
        let edges: Vec<_> = net.edges().collect();
        assert_eq!(edges.len(), net.num_directed_edges());
        assert!(edges
            .iter()
            .any(|e| e.from == VertexId(0) && e.to == VertexId(2) && e.weight == 250.0));
    }

    #[test]
    fn rejects_unknown_vertex() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        b.add_directed_edge(v0, VertexId(9), 1.0);
        assert_eq!(
            b.build().unwrap_err(),
            RoadNetError::UnknownVertex(VertexId(9))
        );
    }

    #[test]
    fn rejects_negative_weight() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(1.0, 0.0);
        b.add_directed_edge(v0, v1, -5.0);
        assert!(matches!(
            b.build().unwrap_err(),
            RoadNetError::InvalidWeight { .. }
        ));
    }

    #[test]
    fn rejects_nan_weight() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(1.0, 0.0);
        b.add_directed_edge(v0, v1, f64::NAN);
        assert!(matches!(
            b.build().unwrap_err(),
            RoadNetError::InvalidWeight { .. }
        ));
    }

    #[test]
    fn rejects_empty_network() {
        let b = RoadNetworkBuilder::new();
        assert_eq!(b.build().unwrap_err(), RoadNetError::EmptyNetwork);
    }

    #[test]
    fn rejects_non_finite_coordinate() {
        let mut b = RoadNetworkBuilder::new();
        b.add_vertex(f64::NAN, 0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            RoadNetError::InvalidCoordinate(_)
        ));
    }

    #[test]
    fn bounding_box_covers_all_vertices() {
        let net = small_net();
        let (min, max) = net.bounding_box();
        assert_eq!(min, Point::new(0.0, 0.0));
        assert_eq!(max, Point::new(100.0, 100.0));
    }

    #[test]
    fn euclidean_lower_bound_is_admissible_on_small_net() {
        let net = small_net();
        // Direct edge v0->v1 has weight exactly equal to euclidean length, so
        // the ratio is 1.0 and the bound equals the euclidean distance.
        assert!(net.euclidean_lower_bound(VertexId(0), VertexId(1)) <= 100.0 + 1e-9);
        assert!(net.min_weight_ratio() <= 1.0);
    }

    #[test]
    fn total_weight_sums_directed_edges() {
        let net = small_net();
        assert!((net.total_weight() - (100.0 * 4.0 + 250.0)).abs() < 1e-9);
    }
}
