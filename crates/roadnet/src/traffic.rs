//! Live-traffic metric overlays: epoch-versioned multiplicative edge
//! factors over the free-flow network.
//!
//! A [`TrafficModel`] carries one factor per CSR arc of a specific
//! [`RoadNetwork`]. Factors are **multiplicative over free-flow and
//! constrained to ≥ 1.0**: congestion can only make an edge slower, never
//! faster than the build-time metric. That single invariant is what keeps
//! the whole pruning stack sound without any per-epoch recomputation:
//!
//! * the Euclidean bound `euclid(u, v) · min_weight_ratio` of the *base*
//!   network lower-bounds the base distance, which lower-bounds the traffic
//!   distance (every edge of every path only got heavier);
//! * the grid-index border tables and the landmark tables, both built on
//!   the base metric, lower-bound base distances and hence traffic
//!   distances for the same reason;
//! * the candidate-disk radii of the vehicle index
//!   (`max_pickup_dist / min_weight_ratio` on the base network) can only
//!   *over*-approximate under traffic — the set of vehicles within a given
//!   traffic road distance shrinks as factors grow, so the base-metric disk
//!   still contains every candidate.
//!
//! See DESIGN.md "Traffic model" for the full soundness argument. Factors
//! are **absolute** multipliers over free-flow, not compounding deltas:
//! applying the same model twice yields the same metric, and resetting a
//! factor to `1.0` restores the original weight bit-for-bit (`w * 1.0 ==
//! w`).
//!
//! The model is a plain value: mutate it (each batch mutation bumps its
//! [`TrafficModel::version`]) and hand it to
//! [`crate::DistanceOracle::apply_traffic`] — or the engine-level
//! `apply_traffic_update` entry points — which scale the weights, swap the
//! metric in, repair the contraction hierarchy and invalidate the memo
//! cache under a fresh epoch.

use crate::graph::RoadNetwork;
use crate::types::VertexId;
use serde::{Deserialize, Serialize};

/// One edge-level congestion observation: every directed arc `from → to`
/// (there may be parallel arcs) takes `factor` × its free-flow weight.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficEdge {
    /// Source vertex of the congested arc(s).
    pub from: VertexId,
    /// Target vertex of the congested arc(s).
    pub to: VertexId,
    /// Multiplicative slowdown over free-flow; must be finite and ≥ 1.0.
    pub factor: f64,
}

/// Per-arc multiplicative traffic factors over a specific network.
///
/// Bound to the network it was created from (arc count is the tie); all
/// factors are ≥ 1.0 by construction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// One factor per CSR arc index of the network.
    factors: Vec<f64>,
    /// Bumped on every batch mutation; purely an observability aid (the
    /// oracle keeps its own metric epoch, stamped on cache entries).
    version: u64,
}

/// Panics unless `factor` is a valid traffic factor (finite, ≥ 1.0).
#[inline]
fn check_factor(factor: f64) {
    assert!(
        factor.is_finite() && factor >= 1.0,
        "traffic factors must be finite and >= 1.0 (got {factor}); \
         slowdowns only — factor decreases would break the base-metric lower bounds"
    );
}

impl TrafficModel {
    /// A free-flow model over `net`: every factor is exactly 1.0.
    pub fn free_flow(net: &RoadNetwork) -> Self {
        TrafficModel {
            factors: vec![1.0; net.num_directed_edges()],
            version: 0,
        }
    }

    /// A uniform congestion model: every arc takes `factor` × free-flow.
    ///
    /// # Panics
    /// Panics if `factor` is not finite or is below 1.0.
    pub fn uniform(net: &RoadNetwork, factor: f64) -> Self {
        check_factor(factor);
        TrafficModel {
            factors: vec![factor; net.num_directed_edges()],
            version: 0,
        }
    }

    /// Number of per-arc factors (the network's directed-arc count).
    pub fn num_arcs(&self) -> usize {
        self.factors.len()
    }

    /// Version counter, bumped once per batch mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The factor of the CSR arc at `index`.
    pub fn factor(&self, index: usize) -> f64 {
        self.factors[index]
    }

    /// All per-arc factors, indexed by CSR arc index.
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// Sets the factor of one CSR arc (no version bump; use the batch
    /// mutators for observable updates).
    ///
    /// # Panics
    /// Panics on an out-of-range index or an invalid factor.
    pub fn set_arc_factor(&mut self, index: usize, factor: f64) {
        check_factor(factor);
        self.factors[index] = factor;
    }

    /// Sets the factor of every arc `from → to` (parallel arcs included).
    /// Returns how many arcs matched.
    ///
    /// # Panics
    /// Panics on an invalid factor or a vertex outside the network.
    pub fn set_directed_factor(
        &mut self,
        net: &RoadNetwork,
        from: VertexId,
        to: VertexId,
        factor: f64,
    ) -> usize {
        check_factor(factor);
        debug_assert_eq!(self.factors.len(), net.num_directed_edges());
        let mut touched = 0;
        for i in net.out_arc_range(from) {
            if net.arc_target(i) == to {
                self.factors[i] = factor;
                touched += 1;
            }
        }
        touched
    }

    /// Sets the factor of every arc in **both** directions between `u` and
    /// `v` — the symmetric form road-segment congestion usually takes on
    /// undirected networks (symmetric factors preserve undirectedness).
    /// Returns how many arcs matched.
    pub fn set_segment_factor(
        &mut self,
        net: &RoadNetwork,
        u: VertexId,
        v: VertexId,
        factor: f64,
    ) -> usize {
        self.set_directed_factor(net, u, v, factor) + self.set_directed_factor(net, v, u, factor)
    }

    /// Applies a batch of edge observations and bumps the version. Returns
    /// the number of arcs touched.
    pub fn apply_update(&mut self, net: &RoadNetwork, edges: &[TrafficEdge]) -> usize {
        let mut touched = 0;
        for e in edges {
            touched += self.set_directed_factor(net, e.from, e.to, e.factor);
        }
        self.version += 1;
        touched
    }

    /// Resets every factor to free flow (1.0) and bumps the version.
    pub fn reset(&mut self) {
        self.factors.fill(1.0);
        self.version += 1;
    }

    /// Bumps the version (for callers that mutate through the per-arc
    /// setters and want the batch to be observable as one update).
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Number of arcs currently above free flow.
    pub fn congested_arcs(&self) -> usize {
        self.factors.iter().filter(|&&f| f > 1.0).count()
    }

    /// The largest factor in the model (1.0 when fully free-flow).
    pub fn max_factor(&self) -> f64 {
        self.factors.iter().copied().fold(1.0, f64::max)
    }

    /// The scaled per-arc weights `base_weight[i] * factor[i]` — the metric
    /// the oracle swaps in via [`RoadNetwork::with_metric`]. The exact same
    /// products feed CH customization, so unpacked CH sums and Dijkstra
    /// relaxations fold bit-identical weights.
    ///
    /// # Panics
    /// Panics if the model was built for a network with a different arc
    /// count.
    pub fn scaled_weights(&self, net: &RoadNetwork) -> Vec<f64> {
        assert_eq!(
            self.factors.len(),
            net.num_directed_edges(),
            "traffic model built for a different network (arc count mismatch)"
        );
        (0..self.factors.len())
            .map(|i| net.arc_weight(i) * self.factors[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    fn line() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(200.0, 0.0);
        b.add_bidirectional_edge(v0, v1, 100.0);
        b.add_bidirectional_edge(v1, v2, 100.0);
        b.build().unwrap()
    }

    #[test]
    fn free_flow_scales_to_the_base_metric_bit_for_bit() {
        let net = line();
        let model = TrafficModel::free_flow(&net);
        assert_eq!(model.num_arcs(), net.num_directed_edges());
        assert_eq!(model.congested_arcs(), 0);
        assert_eq!(model.max_factor(), 1.0);
        let scaled = model.scaled_weights(&net);
        for (i, w) in scaled.iter().enumerate() {
            assert_eq!(w.to_bits(), net.arc_weight(i).to_bits());
        }
        let metric = net.with_metric(scaled).unwrap();
        assert!(metric.is_undirected());
        assert_eq!(
            metric.min_weight_ratio().to_bits(),
            net.min_weight_ratio().to_bits()
        );
    }

    #[test]
    fn segment_factor_touches_both_directions() {
        let net = line();
        let mut model = TrafficModel::free_flow(&net);
        let touched = model.set_segment_factor(&net, VertexId(0), VertexId(1), 2.5);
        assert_eq!(touched, 2);
        assert_eq!(model.congested_arcs(), 2);
        assert_eq!(model.max_factor(), 2.5);
        let metric = net.with_metric(model.scaled_weights(&net)).unwrap();
        // Symmetric factors keep the network undirected.
        assert!(metric.is_undirected());
        assert_eq!(
            crate::dijkstra::distance(&metric, VertexId(0), VertexId(2)),
            Some(350.0)
        );
    }

    #[test]
    fn asymmetric_factor_breaks_undirectedness() {
        let net = line();
        let mut model = TrafficModel::free_flow(&net);
        assert_eq!(
            model.set_directed_factor(&net, VertexId(0), VertexId(1), 3.0),
            1
        );
        let metric = net.with_metric(model.scaled_weights(&net)).unwrap();
        assert!(!metric.is_undirected());
        assert_eq!(
            crate::dijkstra::distance(&metric, VertexId(0), VertexId(1)),
            Some(300.0)
        );
        assert_eq!(
            crate::dijkstra::distance(&metric, VertexId(1), VertexId(0)),
            Some(100.0)
        );
    }

    #[test]
    fn apply_update_bumps_version_and_reset_restores_free_flow() {
        let net = line();
        let mut model = TrafficModel::free_flow(&net);
        assert_eq!(model.version(), 0);
        let touched = model.apply_update(
            &net,
            &[TrafficEdge {
                from: VertexId(1),
                to: VertexId(2),
                factor: 4.0,
            }],
        );
        assert_eq!(touched, 1);
        assert_eq!(model.version(), 1);
        model.reset();
        assert_eq!(model.version(), 2);
        assert_eq!(model.congested_arcs(), 0);
        let scaled = model.scaled_weights(&net);
        for (i, w) in scaled.iter().enumerate() {
            assert_eq!(w.to_bits(), net.arc_weight(i).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "factors must be finite and >= 1.0")]
    fn sub_unit_factor_is_rejected() {
        let net = line();
        let mut model = TrafficModel::free_flow(&net);
        model.set_arc_factor(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "factors must be finite and >= 1.0")]
    fn non_finite_factor_is_rejected() {
        let net = line();
        let _ = TrafficModel::uniform(&net, f64::INFINITY);
    }

    #[test]
    fn metric_length_mismatch_is_rejected() {
        let net = line();
        assert!(matches!(
            net.with_metric(vec![1.0]).unwrap_err(),
            crate::RoadNetError::MetricLengthMismatch {
                expected: 4,
                got: 1
            }
        ));
    }
}
