//! Exact shortest-path engines: Dijkstra variants used as ground truth and
//! as the exact-distance backend of [`crate::DistanceOracle`].
//!
//! All functions operate on non-negative edge weights (enforced at network
//! construction time) and therefore return the true shortest-path distance
//! `dist(u, v)` of Section 2.1.

use crate::graph::RoadNetwork;
use crate::scratch::{with_scratch, with_scratch_pair};
use crate::types::{OrdF64, VertexId, INFINITE_DISTANCE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Point-to-point shortest path distance with early termination.
///
/// Allocation-free: reuses this thread's generation-stamped
/// [`SearchScratch`](crate::scratch::SearchScratch) instead of building an
/// `O(V)` distance vector per call. Returns `None` when `target` is
/// unreachable from `source`.
pub fn distance(net: &RoadNetwork, source: VertexId, target: VertexId) -> Option<f64> {
    if source == target {
        return Some(0.0);
    }
    with_scratch(|s| {
        s.begin(net.num_vertices());
        s.set(source, 0.0);
        s.push(0.0, source);
        while let Some((d, u)) = s.pop() {
            if d > s.get(u) {
                continue;
            }
            if u == target {
                return Some(d);
            }
            for (v, w) in net.neighbors(u) {
                let nd = d + w;
                if nd < s.get(v) {
                    s.set(v, nd);
                    s.push(nd, v);
                }
            }
        }
        None
    })
}

/// The seed's per-call-allocating Dijkstra, kept as the measurement baseline
/// for the perf report (`BENCH_e9.json` quotes scratch vs. allocating).
#[doc(hidden)]
pub fn distance_allocating(net: &RoadNetwork, source: VertexId, target: VertexId) -> Option<f64> {
    if source == target {
        return Some(0.0);
    }
    let mut dist = vec![INFINITE_DISTANCE; net.num_vertices()];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Reverse((OrdF64(0.0), source)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        if u == target {
            return Some(d);
        }
        for (v, w) in net.neighbors(u) {
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    None
}

/// One-to-many shortest-path distances: a single bounded Dijkstra from
/// `source` that stops as soon as every vertex in `targets` is settled.
///
/// Allocation-free apart from the output vector; the target set is marked in
/// the second thread-local scratch (its generation stamps double as a
/// membership bitmap), so batching `k` queries costs one search instead of
/// `k` independent point-to-point searches. Unreachable targets get
/// [`INFINITE_DISTANCE`]. Duplicate targets are fine.
pub fn multi_target(net: &RoadNetwork, source: VertexId, targets: &[VertexId]) -> Vec<f64> {
    if targets.is_empty() {
        return Vec::new();
    }
    with_scratch_pair(|s, marks| {
        let n = net.num_vertices();
        s.begin(n);
        marks.begin(n);
        // Mark targets; `remaining` counts distinct unsettled targets.
        let mut remaining = 0usize;
        for &t in targets {
            if marks.get(t).is_infinite() {
                marks.set(t, 1.0);
                remaining += 1;
            }
        }
        s.set(source, 0.0);
        s.push(0.0, source);
        while let Some((d, u)) = s.pop() {
            if d > s.get(u) {
                continue;
            }
            if marks.get(u) == 1.0 {
                marks.set(u, 2.0); // settled target
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            for (v, w) in net.neighbors(u) {
                let nd = d + w;
                if nd < s.get(v) {
                    s.set(v, nd);
                    s.push(nd, v);
                }
            }
        }
        targets.iter().map(|&t| s.get(t)).collect()
    })
}

/// One-to-many like [`multi_target`], but every returned distance is folded
/// in **canonical direction**: for a target `t` with a smaller vertex id
/// than `source`, the found shortest path's edge weights are re-summed in
/// `t → source` order instead of returning the search's `source → t`
/// accumulation.
///
/// Floating-point addition is not associative, so the two orders can differ
/// in the last bit; re-folding makes the bits a function of the *pair*
/// rather than of which endpoint the search ran from. The memoising
/// oracle's canonical-fold cache policy relies on this to stay
/// query-order-independent on undirected networks (where the same pair is
/// reached from both directions). Requires symmetric edge weights — the
/// re-fold reads the `t → source` weights off the tree edges — so callers
/// must only use it when [`RoadNetwork::is_undirected`] holds.
///
/// Caveat: when a pair has several shortest paths whose float sums differ
/// in the last bit, this search and a `t`-rooted search may tie-break onto
/// different paths and fold to different bits; see the canonical-fold
/// discussion in `crate::oracle` for why that residual is accepted.
pub fn multi_target_canonical(
    net: &RoadNetwork,
    source: VertexId,
    targets: &[VertexId],
) -> Vec<f64> {
    if targets.is_empty() {
        return Vec::new();
    }
    with_scratch_pair(|s, marks| {
        let n = net.num_vertices();
        s.begin(n);
        marks.begin(n);
        let mut remaining = 0usize;
        for &t in targets {
            if marks.get(t).is_infinite() {
                marks.set(t, 1.0);
                remaining += 1;
            }
        }
        s.set(source, 0.0);
        s.push(0.0, source);
        while let Some((d, u)) = s.pop() {
            if d > s.get(u) {
                continue;
            }
            if marks.get(u) == 1.0 {
                marks.set(u, 2.0);
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            for (v, w) in net.neighbors(u) {
                let nd = d + w;
                if nd < s.get(v) {
                    s.set_with_parent(v, nd, u);
                    s.push(nd, v);
                }
            }
        }
        targets
            .iter()
            .map(|&t| {
                let d = s.get(t);
                if t >= source || !d.is_finite() {
                    return d;
                }
                // Walk the tree path t → … → source, summing in walk order —
                // the fold a t-rooted search would accumulate on this path.
                let mut acc = 0.0;
                let mut cur = t;
                while cur != source {
                    let Some(parent) = s.parent_of(cur) else {
                        // Root reached unexpectedly; fall back to the
                        // forward fold rather than returning a wrong sum.
                        return d;
                    };
                    // The relaxed tree edge carries the minimum weight among
                    // parallel `cur → parent` edges (symmetric on undirected
                    // networks, so this is also the `parent → cur` weight).
                    let mut weight = INFINITE_DISTANCE;
                    for (v, w) in net.neighbors(cur) {
                        if v == parent && w < weight {
                            weight = w;
                        }
                    }
                    acc += weight;
                    cur = parent;
                }
                acc
            })
            .collect()
    })
}

/// Point-to-point shortest path returning `(distance, path)`.
///
/// The path includes both endpoints. Returns `None` when unreachable.
/// Allocation-free apart from the returned path: runs on the thread-local
/// scratch with generation-stamped parent pointers.
pub fn shortest_path(
    net: &RoadNetwork,
    source: VertexId,
    target: VertexId,
) -> Option<(f64, Vec<VertexId>)> {
    if source == target {
        return Some((0.0, vec![source]));
    }
    with_scratch(|s| {
        s.begin(net.num_vertices());
        s.set(source, 0.0);
        s.push(0.0, source);
        while let Some((d, u)) = s.pop() {
            if d > s.get(u) {
                continue;
            }
            if u == target {
                break;
            }
            for (v, w) in net.neighbors(u) {
                let nd = d + w;
                if nd < s.get(v) {
                    s.set_with_parent(v, nd, u);
                    s.push(nd, v);
                }
            }
        }
        let total = s.get(target);
        if total.is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = s.parent_of(cur) {
            path.push(p);
            cur = p;
            if cur == source {
                break;
            }
        }
        path.reverse();
        debug_assert_eq!(path.first(), Some(&source));
        Some((total, path))
    })
}

/// Single-source shortest path distances to every vertex.
///
/// Unreachable vertices get [`INFINITE_DISTANCE`].
pub fn single_source(net: &RoadNetwork, source: VertexId) -> Vec<f64> {
    multi_source(net, std::iter::once(source))
}

/// Multi-source shortest path distances: for every vertex, the distance from
/// the *nearest* source.
///
/// Used to compute `v.min` (distance to the nearest border vertex of the
/// cell, Section 3.2.1) and the cell-pair lower-bound matrix.
pub fn multi_source(net: &RoadNetwork, sources: impl IntoIterator<Item = VertexId>) -> Vec<f64> {
    let mut dist = vec![INFINITE_DISTANCE; net.num_vertices()];
    let mut heap = BinaryHeap::new();
    for s in sources {
        if dist[s.index()] > 0.0 {
            dist[s.index()] = 0.0;
            heap.push(Reverse((OrdF64(0.0), s)));
        }
    }
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for (v, w) in net.neighbors(u) {
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    dist
}

/// Single-source Dijkstra that stops as soon as every vertex in `targets`
/// has been settled; returns the distance to each target in the same order.
///
/// Used by the grid index to compute per-vertex border-distance tables
/// without exploring the whole network.
pub fn distances_to_targets(net: &RoadNetwork, source: VertexId, targets: &[VertexId]) -> Vec<f64> {
    multi_target(net, source, targets)
}

/// Single-source Dijkstra truncated at a radius: returns `(vertex, distance)`
/// for every vertex whose distance from `source` is at most `radius`.
pub fn within_radius(net: &RoadNetwork, source: VertexId, radius: f64) -> Vec<(VertexId, f64)> {
    let mut dist = vec![INFINITE_DISTANCE; net.num_vertices()];
    let mut heap = BinaryHeap::new();
    let mut out = Vec::new();
    dist[source.index()] = 0.0;
    heap.push(Reverse((OrdF64(0.0), source)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        if d > radius {
            break;
        }
        out.push((u, d));
        for (v, w) in net.neighbors(u) {
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    out
}

/// Bidirectional Dijkstra for point-to-point distance queries.
///
/// On an undirected network this typically settles far fewer vertices than
/// unidirectional search; it assumes every directed edge has a reverse edge
/// with the same weight (true for all networks produced by
/// `RoadNetworkBuilder::add_bidirectional_edge` and by the workload
/// generators). Returns `None` when unreachable.
pub fn bidirectional_distance(
    net: &RoadNetwork,
    source: VertexId,
    target: VertexId,
) -> Option<f64> {
    if source == target {
        return Some(0.0);
    }
    let n = net.num_vertices();
    let mut dist_f = vec![INFINITE_DISTANCE; n];
    let mut dist_b = vec![INFINITE_DISTANCE; n];
    let mut heap_f = BinaryHeap::new();
    let mut heap_b = BinaryHeap::new();
    dist_f[source.index()] = 0.0;
    dist_b[target.index()] = 0.0;
    heap_f.push(Reverse((OrdF64(0.0), source)));
    heap_b.push(Reverse((OrdF64(0.0), target)));
    let mut best = INFINITE_DISTANCE;

    loop {
        let top_f = heap_f.peek().map(|Reverse((OrdF64(d), _))| *d);
        let top_b = heap_b.peek().map(|Reverse((OrdF64(d), _))| *d);
        if let (None, None) = (top_f, top_b) {
            break;
        }
        let tf = top_f.unwrap_or(INFINITE_DISTANCE);
        let tb = top_b.unwrap_or(INFINITE_DISTANCE);
        if tf + tb >= best {
            break;
        }
        // Expand the side with the smaller frontier distance.
        if tf <= tb {
            if let Some(Reverse((OrdF64(d), u))) = heap_f.pop() {
                if d > dist_f[u.index()] {
                    continue;
                }
                for (v, w) in net.neighbors(u) {
                    let nd = d + w;
                    if nd < dist_f[v.index()] {
                        dist_f[v.index()] = nd;
                        heap_f.push(Reverse((OrdF64(nd), v)));
                    }
                    if dist_b[v.index()].is_finite() {
                        best = best.min(nd + dist_b[v.index()]);
                    }
                }
            }
        } else if let Some(Reverse((OrdF64(d), u))) = heap_b.pop() {
            if d > dist_b[u.index()] {
                continue;
            }
            for (v, w) in net.neighbors(u) {
                let nd = d + w;
                if nd < dist_b[v.index()] {
                    dist_b[v.index()] = nd;
                    heap_b.push(Reverse((OrdF64(nd), v)));
                }
                if dist_f[v.index()].is_finite() {
                    best = best.min(nd + dist_f[v.index()]);
                }
            }
        }
    }

    if best.is_finite() {
        Some(best)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    /// The line network v0 - v1 - v2 - v3 with unit coordinates and weights
    /// 1, 2, 3.
    fn line_net() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i as f64, 0.0)).collect();
        b.add_bidirectional_edge(v[0], v[1], 1.0);
        b.add_bidirectional_edge(v[1], v[2], 2.0);
        b.add_bidirectional_edge(v[2], v[3], 3.0);
        b.build().unwrap()
    }

    /// A network with a shortcut so the shortest path is not the direct edge.
    fn shortcut_net() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(1.0, 0.0);
        let v2 = b.add_vertex(2.0, 0.0);
        b.add_bidirectional_edge(v0, v2, 10.0);
        b.add_bidirectional_edge(v0, v1, 1.0);
        b.add_bidirectional_edge(v1, v2, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn distance_on_line() {
        let net = line_net();
        assert_eq!(distance(&net, VertexId(0), VertexId(3)), Some(6.0));
        assert_eq!(distance(&net, VertexId(3), VertexId(0)), Some(6.0));
        assert_eq!(distance(&net, VertexId(1), VertexId(1)), Some(0.0));
    }

    #[test]
    fn distance_prefers_shortcut() {
        let net = shortcut_net();
        assert_eq!(distance(&net, VertexId(0), VertexId(2)), Some(2.0));
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let _v1 = b.add_vertex(1.0, 0.0);
        let v2 = b.add_vertex(2.0, 0.0);
        b.add_directed_edge(v0, v2, 1.0);
        let net = b.build().unwrap();
        assert_eq!(distance(&net, VertexId(0), VertexId(1)), None);
        assert_eq!(bidirectional_distance(&net, VertexId(0), VertexId(1)), None);
        assert_eq!(shortest_path(&net, VertexId(0), VertexId(1)), None);
    }

    #[test]
    fn shortest_path_returns_vertices_in_order() {
        let net = shortcut_net();
        let (d, path) = shortest_path(&net, VertexId(0), VertexId(2)).unwrap();
        assert_eq!(d, 2.0);
        assert_eq!(path, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn shortest_path_trivial_self_loop() {
        let net = line_net();
        let (d, path) = shortest_path(&net, VertexId(2), VertexId(2)).unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(path, vec![VertexId(2)]);
    }

    #[test]
    fn single_source_matches_pairwise() {
        let net = line_net();
        let dist = single_source(&net, VertexId(0));
        assert_eq!(dist, vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let net = line_net();
        let dist = multi_source(&net, [VertexId(0), VertexId(3)]);
        assert_eq!(dist, vec![0.0, 1.0, 3.0, 0.0]);
    }

    #[test]
    fn distances_to_targets_early_exit() {
        let net = line_net();
        let d = distances_to_targets(&net, VertexId(0), &[VertexId(1), VertexId(2)]);
        assert_eq!(d, vec![1.0, 3.0]);
    }

    #[test]
    fn multi_target_canonical_folds_toward_the_smaller_endpoint() {
        // Irregular weights whose sums are inexact in f64, so fold order is
        // observable at the bit level.
        let mut b = RoadNetworkBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i as f64, 0.0)).collect();
        b.add_bidirectional_edge(v[0], v[1], 1.1);
        b.add_bidirectional_edge(v[1], v[2], 2.3);
        b.add_bidirectional_edge(v[2], v[3], 3.7);
        let net = b.build().unwrap();
        assert!(net.is_undirected());

        // Searching *from* v3, the canonical variant must report v0 and v1
        // with the exact bits a v0-/v1-rooted fold produces.
        let canonical =
            multi_target_canonical(&net, VertexId(3), &[VertexId(0), VertexId(1), VertexId(3)]);
        assert_eq!(
            canonical[0].to_bits(),
            distance(&net, VertexId(0), VertexId(3)).unwrap().to_bits()
        );
        assert_eq!(
            canonical[1].to_bits(),
            distance(&net, VertexId(1), VertexId(3)).unwrap().to_bits()
        );
        assert_eq!(canonical[2], 0.0);
        // Targets above the source keep the plain forward fold.
        let forward = multi_target_canonical(&net, VertexId(0), &[VertexId(3)]);
        assert_eq!(
            forward[0].to_bits(),
            distance(&net, VertexId(0), VertexId(3)).unwrap().to_bits()
        );
        // And the values always agree with the reference within rounding.
        let plain = multi_target(&net, VertexId(3), &[VertexId(0), VertexId(1)]);
        for (c, p) in canonical.iter().zip(&plain) {
            assert!((c - p).abs() < 1e-9);
        }
    }

    #[test]
    fn within_radius_truncates() {
        let net = line_net();
        let mut inside = within_radius(&net, VertexId(0), 3.0);
        inside.sort_by_key(|(v, _)| *v);
        assert_eq!(
            inside,
            vec![(VertexId(0), 0.0), (VertexId(1), 1.0), (VertexId(2), 3.0)]
        );
    }

    #[test]
    fn bidirectional_matches_unidirectional() {
        let net = shortcut_net();
        for s in 0..3u32 {
            for t in 0..3u32 {
                let a = distance(&net, VertexId(s), VertexId(t));
                let b = bidirectional_distance(&net, VertexId(s), VertexId(t));
                assert_eq!(a, b, "mismatch for {s}->{t}");
            }
        }
    }
}
