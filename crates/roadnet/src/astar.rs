//! A* point-to-point search with an admissible Euclidean heuristic.
//!
//! The heuristic scales the straight-line distance by the smallest
//! weight/length ratio observed over all edges of the network
//! ([`RoadNetwork::min_weight_ratio`]), which guarantees admissibility even
//! when some edges are cheaper than their geometric length (e.g. highway
//! edges in the synthetic Shanghai-like networks).

use crate::graph::RoadNetwork;
use crate::types::{OrdF64, VertexId, INFINITE_DISTANCE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Point-to-point shortest-path distance using A*.
///
/// Produces exactly the same result as [`crate::dijkstra::distance`]; it is
/// usually faster on spatial networks because the heuristic directs the
/// search toward the target.
pub fn distance(net: &RoadNetwork, source: VertexId, target: VertexId) -> Option<f64> {
    if source == target {
        return Some(0.0);
    }
    let ratio = net.min_weight_ratio();
    let h = |v: VertexId| net.euclidean(v, target) * ratio;

    let n = net.num_vertices();
    let mut g = vec![INFINITE_DISTANCE; n];
    let mut heap = BinaryHeap::new();
    g[source.index()] = 0.0;
    heap.push(Reverse((OrdF64(h(source)), source)));
    while let Some(Reverse((OrdF64(f), u))) = heap.pop() {
        let gu = g[u.index()];
        if f > gu + h(u) + 1e-9 {
            continue;
        }
        if u == target {
            return Some(gu);
        }
        for (v, w) in net.neighbors(u) {
            let ng = gu + w;
            if ng < g[v.index()] {
                g[v.index()] = ng;
                heap.push(Reverse((OrdF64(ng + h(v)), v)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::graph::RoadNetworkBuilder;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn grid_network(side: usize) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let mut ids = Vec::with_capacity(side * side);
        for y in 0..side {
            for x in 0..side {
                ids.push(b.add_vertex(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for y in 0..side {
            for x in 0..side {
                let u = ids[y * side + x];
                if x + 1 < side {
                    let v = ids[y * side + x + 1];
                    b.add_bidirectional_edge(u, v, 100.0 * rng.gen_range(1.0..1.5));
                }
                if y + 1 < side {
                    let v = ids[(y + 1) * side + x];
                    b.add_bidirectional_edge(u, v, 100.0 * rng.gen_range(1.0..1.5));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn astar_matches_dijkstra_on_random_grid() {
        let net = grid_network(8);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..50 {
            let s = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let t = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let a = distance(&net, s, t);
            let d = dijkstra::distance(&net, s, t);
            match (a, d) {
                (Some(a), Some(d)) => assert!((a - d).abs() < 1e-6, "A*={a} dijkstra={d}"),
                (None, None) => {}
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn astar_identity() {
        let net = grid_network(3);
        assert_eq!(distance(&net, VertexId(4), VertexId(4)), Some(0.0));
    }
}
