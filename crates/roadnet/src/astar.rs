//! A* point-to-point search with pluggable admissible heuristics.
//!
//! The base heuristic scales the straight-line distance by the smallest
//! weight/length ratio observed over all edges of the network
//! ([`RoadNetwork::min_weight_ratio`]), which guarantees admissibility even
//! when some edges are cheaper than their geometric length (e.g. highway
//! edges in the synthetic Shanghai-like networks).
//! [`distance_with_landmarks`] additionally folds in the ALT bound of
//! [`LandmarkIndex`] and the grid-index cell bound, taking the maximum of
//! all three — still admissible, and much more goal-directed on city-scale
//! graphs.
//!
//! All searches run on the thread-local generation-stamped scratch of
//! [`crate::scratch`], so no per-query allocation happens. The heuristics
//! here can be *inconsistent* (the max of consistent heuristics need not be
//! consistent); the search therefore re-expands a vertex whenever its `g`
//! value improves, which preserves optimality for any admissible heuristic.

use crate::graph::RoadNetwork;
use crate::grid::GridIndex;
use crate::landmarks::LandmarkIndex;
use crate::scratch::with_scratch;
use crate::types::VertexId;

/// Point-to-point shortest-path distance using A* with the Euclidean
/// heuristic.
///
/// Produces exactly the same result as [`crate::dijkstra::distance`]; it is
/// usually faster on spatial networks because the heuristic directs the
/// search toward the target.
pub fn distance(net: &RoadNetwork, source: VertexId, target: VertexId) -> Option<f64> {
    let ratio = net.min_weight_ratio();
    distance_with_heuristic(net, source, target, |v| net.euclidean(v, target) * ratio)
}

/// A* distance with the tightest available heuristic:
/// `max(euclidean, grid cell bound, ALT landmark bound)`.
///
/// Both index arguments are optional so callers can pass whatever they have
/// built; every component is an admissible lower bound on the remaining
/// distance, hence so is their maximum.
pub fn distance_with_landmarks(
    net: &RoadNetwork,
    source: VertexId,
    target: VertexId,
    grid: Option<&GridIndex>,
    landmarks: Option<&LandmarkIndex>,
) -> Option<f64> {
    let ratio = net.min_weight_ratio();
    // The grid tables are built from forward border-to-vertex searches, so
    // their bound is only admissible when dist(u,v) = dist(v,u) holds; on a
    // directed network an inflated heuristic would corrupt exact results.
    let grid = if net.is_undirected() { grid } else { None };
    distance_with_heuristic(net, source, target, |v| {
        let mut h = net.euclidean(v, target) * ratio;
        if let Some(g) = grid {
            let gh = g.lower_bound(v, target);
            if gh > h {
                h = gh;
            }
        }
        if let Some(l) = landmarks {
            let lh = l.lower_bound(v, target);
            if lh > h {
                h = lh;
            }
        }
        h
    })
}

/// A* point-to-point shortest path returning `(distance, path)`, using the
/// Euclidean heuristic. Exactly matches [`crate::dijkstra::shortest_path`]
/// but settles far fewer vertices on spatial networks; used by the vehicle
/// index to find the grid cells a schedule leg crosses.
pub fn shortest_path(
    net: &RoadNetwork,
    source: VertexId,
    target: VertexId,
) -> Option<(f64, Vec<VertexId>)> {
    if source == target {
        return Some((0.0, vec![source]));
    }
    let ratio = net.min_weight_ratio();
    let h = |v: VertexId| net.euclidean(v, target) * ratio;
    crate::scratch::with_scratch(|s| {
        s.begin(net.num_vertices());
        s.set(source, 0.0);
        s.push(h(source), source);
        while let Some((f, u)) = s.pop() {
            let gu = s.get(u);
            if f > gu + h(u) + 1e-9 {
                continue;
            }
            if u == target {
                break;
            }
            for (v, w) in net.neighbors(u) {
                let ng = gu + w;
                if ng < s.get(v) {
                    s.set_with_parent(v, ng, u);
                    s.push(ng + h(v), v);
                }
            }
        }
        let total = s.get(target);
        if total.is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = s.parent_of(cur) {
            path.push(p);
            cur = p;
            if cur == source {
                break;
            }
        }
        path.reverse();
        debug_assert_eq!(path.first(), Some(&source));
        Some((total, path))
    })
}

/// A* core over an arbitrary admissible heuristic `h(v) ≤ dist(v, target)`.
pub fn distance_with_heuristic(
    net: &RoadNetwork,
    source: VertexId,
    target: VertexId,
    h: impl Fn(VertexId) -> f64,
) -> Option<f64> {
    if source == target {
        return Some(0.0);
    }
    with_scratch(|s| {
        s.begin(net.num_vertices());
        s.set(source, 0.0);
        s.push(h(source), source);
        while let Some((f, u)) = s.pop() {
            let gu = s.get(u);
            // Stale entry: a better g for u was found after this push.
            if f > gu + h(u) + 1e-9 {
                continue;
            }
            if u == target {
                return Some(gu);
            }
            for (v, w) in net.neighbors(u) {
                let ng = gu + w;
                if ng < s.get(v) {
                    s.set(v, ng);
                    s.push(ng + h(v), v);
                }
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::graph::RoadNetworkBuilder;
    use crate::grid::GridConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn grid_network(side: usize) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let mut ids = Vec::with_capacity(side * side);
        for y in 0..side {
            for x in 0..side {
                ids.push(b.add_vertex(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for y in 0..side {
            for x in 0..side {
                let u = ids[y * side + x];
                if x + 1 < side {
                    let v = ids[y * side + x + 1];
                    b.add_bidirectional_edge(u, v, 100.0 * rng.gen_range(1.0..1.5));
                }
                if y + 1 < side {
                    let v = ids[(y + 1) * side + x];
                    b.add_bidirectional_edge(u, v, 100.0 * rng.gen_range(1.0..1.5));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn astar_matches_dijkstra_on_random_grid() {
        let net = grid_network(8);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..50 {
            let s = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let t = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let a = distance(&net, s, t);
            let d = dijkstra::distance(&net, s, t);
            match (a, d) {
                (Some(a), Some(d)) => assert!((a - d).abs() < 1e-6, "A*={a} dijkstra={d}"),
                (None, None) => {}
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn alt_accelerated_astar_matches_dijkstra() {
        let net = grid_network(8);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(3, 3));
        let landmarks = LandmarkIndex::build(&net, 4, VertexId(0));
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..100 {
            let s = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let t = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let a = distance_with_landmarks(&net, s, t, Some(&grid), Some(&landmarks));
            let d = dijkstra::distance(&net, s, t);
            match (a, d) {
                (Some(a), Some(d)) => assert!((a - d).abs() < 1e-6, "ALT-A*={a} dijkstra={d}"),
                (None, None) => {}
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn alt_astar_is_exact_on_directed_networks() {
        // One-way shortcut: the ALT bound must degrade to the one-sided
        // form, and A* must still return exact distances both ways.
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(200.0, 0.0);
        b.add_bidirectional_edge(v0, v1, 100.0);
        b.add_bidirectional_edge(v1, v2, 100.0);
        b.add_directed_edge(v0, v2, 50.0); // one-way shortcut
        let net = b.build().unwrap();
        assert!(!net.is_undirected());
        let landmarks = LandmarkIndex::build(&net, 2, v0);
        for (s, t) in [(v0, v2), (v2, v0), (v1, v2), (v2, v1)] {
            let a = distance_with_landmarks(&net, s, t, None, Some(&landmarks));
            let d = dijkstra::distance(&net, s, t);
            assert_eq!(a, d, "{s}->{t}");
        }
    }

    #[test]
    fn astar_identity() {
        let net = grid_network(3);
        assert_eq!(distance(&net, VertexId(4), VertexId(4)), Some(0.0));
    }
}
