//! Thread-local, generation-stamped scratch state for shortest-path
//! searches.
//!
//! The seed implementation allocated a fresh `O(V)` distance vector for
//! every point-to-point query — the dominant per-query cost once graphs
//! grow past a few thousand vertices and the main obstacle to running the
//! matchers' verification loops in parallel. This module replaces that with
//! one reusable [`SearchScratch`] per thread:
//!
//! * `dist` / `parent` arrays are allocated once and grown on demand;
//! * instead of clearing them between queries, every slot carries a
//!   generation stamp — a slot is "unvisited" unless its stamp equals the
//!   current query's generation, so starting a new query is a single
//!   counter increment;
//! * the binary heap is drained by the search loop and merely `clear()`ed,
//!   keeping its allocation.
//!
//! When the `u32` generation counter would wrap, the stamp array is zeroed
//! once and the counter restarts — correctness never depends on stamps
//! from 4 billion queries ago.

use crate::types::{OrdF64, VertexId, INFINITE_DISTANCE};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable per-thread state for Dijkstra / A* runs.
pub struct SearchScratch {
    dist: Vec<f64>,
    parent: Vec<VertexId>,
    stamp: Vec<u32>,
    generation: u32,
    /// Priority queue of `(key, vertex)`; `key` is `g` for Dijkstra and
    /// `g + h` for A*.
    pub(crate) heap: BinaryHeap<Reverse<(OrdF64, VertexId)>>,
}

impl SearchScratch {
    fn new() -> Self {
        SearchScratch {
            dist: Vec::new(),
            parent: Vec::new(),
            stamp: Vec::new(),
            generation: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Starts a new query over a graph with `n` vertices: bumps the
    /// generation, grows the arrays if needed and clears the heap.
    pub fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITE_DISTANCE);
            self.parent.resize(n, VertexId(u32::MAX));
            self.stamp.resize(n, 0);
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.heap.clear();
    }

    /// Tentative distance of `v` in the current query.
    #[inline]
    pub fn get(&self, v: VertexId) -> f64 {
        if self.stamp[v.index()] == self.generation {
            self.dist[v.index()]
        } else {
            INFINITE_DISTANCE
        }
    }

    /// Sets the tentative distance of `v` in the current query (and clears
    /// its predecessor, so stale parents from earlier generations can never
    /// leak into [`Self::parent_of`]).
    #[inline]
    pub fn set(&mut self, v: VertexId, d: f64) {
        self.dist[v.index()] = d;
        self.parent[v.index()] = VertexId(u32::MAX);
        self.stamp[v.index()] = self.generation;
    }

    /// Sets the tentative distance and predecessor of `v`.
    #[inline]
    pub fn set_with_parent(&mut self, v: VertexId, d: f64, parent: VertexId) {
        self.dist[v.index()] = d;
        self.parent[v.index()] = parent;
        self.stamp[v.index()] = self.generation;
    }

    /// Predecessor of `v` on the current query's shortest-path tree, if `v`
    /// was labelled via [`Self::set_with_parent`] this query.
    #[inline]
    pub fn parent_of(&self, v: VertexId) -> Option<VertexId> {
        if self.stamp[v.index()] == self.generation {
            let p = self.parent[v.index()];
            (p.0 != u32::MAX).then_some(p)
        } else {
            None
        }
    }

    /// Pushes `(key, v)` onto the search frontier.
    #[inline]
    pub fn push(&mut self, key: f64, v: VertexId) {
        self.heap.push(Reverse((OrdF64(key), v)));
    }

    /// Pops the frontier entry with the smallest key.
    #[inline]
    pub fn pop(&mut self) -> Option<(f64, VertexId)> {
        self.heap.pop().map(|Reverse((OrdF64(k), v))| (k, v))
    }

    /// Smallest key currently on the frontier, without popping it. Drives
    /// the alternation and termination tests of bidirectional searches
    /// (e.g. the contraction-hierarchy upward query).
    #[inline]
    pub fn peek(&self) -> Option<(f64, VertexId)> {
        self.heap.peek().map(|&Reverse((OrdF64(k), v))| (k, v))
    }
}

thread_local! {
    static SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::new());
    /// Second scratch for algorithms that need two independent distance
    /// labellings at once (e.g. bidirectional search).
    static SCRATCH_B: RefCell<SearchScratch> = RefCell::new(SearchScratch::new());
}

/// Runs `f` with this thread's primary scratch buffer.
pub fn with_scratch<R>(f: impl FnOnce(&mut SearchScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Runs `f` with both of this thread's scratch buffers.
pub fn with_scratch_pair<R>(f: impl FnOnce(&mut SearchScratch, &mut SearchScratch) -> R) -> R {
    SCRATCH.with(|a| SCRATCH_B.with(|b| f(&mut a.borrow_mut(), &mut b.borrow_mut())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_isolate_queries() {
        let mut s = SearchScratch::new();
        s.begin(4);
        s.set(VertexId(1), 5.0);
        assert_eq!(s.get(VertexId(1)), 5.0);
        assert_eq!(s.get(VertexId(2)), INFINITE_DISTANCE);
        s.begin(4);
        // Previous query's labels are invisible without any clearing.
        assert_eq!(s.get(VertexId(1)), INFINITE_DISTANCE);
    }

    #[test]
    fn arrays_grow_on_demand() {
        let mut s = SearchScratch::new();
        s.begin(2);
        s.set(VertexId(1), 1.0);
        s.begin(10);
        s.set(VertexId(9), 2.0);
        assert_eq!(s.get(VertexId(9)), 2.0);
        assert_eq!(s.get(VertexId(1)), INFINITE_DISTANCE);
    }

    #[test]
    fn wraparound_resets_stamps() {
        let mut s = SearchScratch::new();
        s.begin(3);
        s.set(VertexId(0), 1.0);
        s.generation = u32::MAX;
        s.begin(3);
        assert_eq!(s.generation, 1);
        assert_eq!(s.get(VertexId(0)), INFINITE_DISTANCE);
    }

    #[test]
    fn heap_orders_by_key() {
        let mut s = SearchScratch::new();
        s.begin(4);
        s.push(3.0, VertexId(3));
        s.push(1.0, VertexId(1));
        s.push(2.0, VertexId(2));
        assert_eq!(s.pop(), Some((1.0, VertexId(1))));
        assert_eq!(s.pop(), Some((2.0, VertexId(2))));
        assert_eq!(s.pop(), Some((3.0, VertexId(3))));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn thread_local_scratch_is_reusable() {
        let total: f64 = (0..10)
            .map(|i| {
                with_scratch(|s| {
                    s.begin(8);
                    s.set(VertexId(i % 8), i as f64);
                    s.get(VertexId(i % 8))
                })
            })
            .sum();
        assert_eq!(total, 45.0);
    }
}
