//! Fundamental identifier and geometry types shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Sentinel distance used for unreachable vertices.
pub const INFINITE_DISTANCE: f64 = f64::INFINITY;

/// Identifier of a vertex (road intersection) in a [`crate::RoadNetwork`].
///
/// Vertex identifiers are dense: a network with `n` vertices uses ids
/// `0..n`. The newtype keeps them from being confused with other integer
/// quantities (cell ids, vehicle ids, …).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(value: u32) -> Self {
        VertexId(value)
    }
}

/// A planar coordinate in metres.
///
/// The synthetic networks used in this reproduction place vertices on a
/// plane; coordinates are only used for grid partitioning, A* heuristics
/// and workload generation, never for pricing (prices use road distances).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Creates a new point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, in metres.
    #[inline]
    pub fn euclidean(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Constant vehicle speed used to convert between distance and time.
///
/// The paper's demonstration assumes a constant speed of 48 km/h
/// (Section 4). [`Speed::paper_default`] returns exactly that.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Speed {
    metres_per_second: f64,
}

impl Speed {
    /// Creates a speed from a value in kilometres per hour.
    ///
    /// # Panics
    /// Panics if `kmh` is not strictly positive and finite.
    pub fn from_kmh(kmh: f64) -> Self {
        assert!(
            kmh.is_finite() && kmh > 0.0,
            "speed must be positive and finite, got {kmh}"
        );
        Speed {
            metres_per_second: kmh * 1000.0 / 3600.0,
        }
    }

    /// Creates a speed from a value in metres per second.
    ///
    /// # Panics
    /// Panics if `mps` is not strictly positive and finite.
    pub fn from_mps(mps: f64) -> Self {
        assert!(
            mps.is_finite() && mps > 0.0,
            "speed must be positive and finite, got {mps}"
        );
        Speed {
            metres_per_second: mps,
        }
    }

    /// The paper's constant speed of 48 km/h.
    pub fn paper_default() -> Self {
        Speed::from_kmh(48.0)
    }

    /// Speed in metres per second.
    #[inline]
    pub fn mps(&self) -> f64 {
        self.metres_per_second
    }

    /// Speed in kilometres per hour.
    #[inline]
    pub fn kmh(&self) -> f64 {
        self.metres_per_second * 3.6
    }

    /// Converts a road distance in metres to a travel time in seconds.
    #[inline]
    pub fn distance_to_seconds(&self, metres: f64) -> f64 {
        metres / self.metres_per_second
    }

    /// Converts a travel time in seconds to a road distance in metres.
    #[inline]
    pub fn seconds_to_distance(&self, seconds: f64) -> f64 {
        seconds * self.metres_per_second
    }
}

impl Default for Speed {
    fn default() -> Self {
        Speed::paper_default()
    }
}

/// A totally ordered wrapper around a non-NaN `f64`, used as priority in
/// binary heaps throughout the crate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("OrdF64 must not contain NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId(42);
        assert_eq!(v.index(), 42);
        assert_eq!(VertexId::from(42u32), v);
        assert_eq!(format!("{v}"), "v42");
        assert_eq!(format!("{v:?}"), "v42");
    }

    #[test]
    fn point_euclidean_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.euclidean(&b) - 5.0).abs() < 1e-12);
        assert!((b.euclidean(&a) - 5.0).abs() < 1e-12);
        assert_eq!(a.euclidean(&a), 0.0);
    }

    #[test]
    fn speed_paper_default_is_48_kmh() {
        let s = Speed::paper_default();
        assert!((s.kmh() - 48.0).abs() < 1e-9);
        // 48 km/h is 13.333… m/s
        assert!((s.mps() - 13.333_333_333).abs() < 1e-6);
    }

    #[test]
    fn speed_conversion_roundtrip() {
        let s = Speed::from_kmh(48.0);
        let metres = 12_000.0;
        let secs = s.distance_to_seconds(metres);
        assert!((s.seconds_to_distance(secs) - metres).abs() < 1e-9);
        // 12 km at 48 km/h is 15 minutes.
        assert!((secs - 900.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn speed_rejects_zero() {
        let _ = Speed::from_kmh(0.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn speed_rejects_negative_mps() {
        let _ = Speed::from_mps(-3.0);
    }

    #[test]
    fn ordf64_total_order() {
        let mut xs = vec![OrdF64(3.0), OrdF64(1.0), OrdF64(2.0)];
        xs.sort();
        assert_eq!(xs, vec![OrdF64(1.0), OrdF64(2.0), OrdF64(3.0)]);
    }
}
