//! Many-to-many bucket query: one-to-many distances over a contraction
//! hierarchy.
//!
//! The matchers batch their verification distances through
//! [`crate::DistanceOracle::distances_from`]; on the ALT backend that is a
//! bounded multi-target Dijkstra whose ball radius is the furthest miss. A
//! hierarchy answers the same batch with the bucket scheme of Knopp et al.:
//!
//! 1. for every (distinct) target `t`, run the *backward* upward search from
//!    `t` and deposit an entry `(t, dist(u → t))` in the bucket of every
//!    vertex `u` it settles;
//! 2. run one *forward* upward search from the source; every settled vertex
//!    `u` scans its bucket and proposes `dist(s → u) + dist(u → t)` for each
//!    entry.
//!
//! Each search touches only an upward search space (hundreds of vertices on
//! a city graph), so the batch costs `k + 1` tiny searches — and unlike the
//! multi-target Dijkstra its cost does not grow with the geometric spread of
//! the targets. Stall-on-demand prunes expansions in both phases; stalled
//! vertices still deposit/scan buckets (their labels are genuine path
//! lengths, so candidates derived from them are upper bounds that can only
//! be tightened, and the optimal meeting vertex is never stalled).
//!
//! Results are **unpacked** exactly like the point query: bucket entries
//! remember their parent toward the target, so the winning up-down path per
//! target can be reconstructed, expanded into original edges and re-folded
//! in path order — keeping batch answers bit-identical to point queries and
//! to Dijkstra.

use super::ContractionHierarchy;
use crate::scratch::with_scratch;
use crate::types::{VertexId, INFINITE_DISTANCE};
use std::collections::HashMap;

/// Bucket entry at vertex `u` for one target: `(target slot, dist(u → t),
/// parent vertex toward t, or u32::MAX when u is the target itself)`.
type Entry = (u32, f64, u32);

pub(super) fn distances_from(ch: &ContractionHierarchy, source: u32, targets: &[u32]) -> Vec<f64> {
    if targets.is_empty() {
        return Vec::new();
    }
    let (up, down) = ch.graphs();
    let n = ch.num_vertices();

    // Deduplicate targets into slots so repeated targets share one backward
    // search and one bucket entry set.
    let mut slot_of: HashMap<u32, usize> = HashMap::with_capacity(targets.len());
    let mut distinct: Vec<u32> = Vec::with_capacity(targets.len());
    for &t in targets {
        slot_of.entry(t).or_insert_with(|| {
            distinct.push(t);
            distinct.len() - 1
        });
    }

    let mut buckets: HashMap<u32, Vec<Entry>> = HashMap::new();
    for (slot, &t) in distinct.iter().enumerate() {
        if t == source {
            continue; // answered trivially below, no search needed
        }
        with_scratch(|s| {
            s.begin(n);
            s.set(VertexId(t), 0.0);
            s.push(0.0, VertexId(t));
            while let Some((d, u)) = s.pop() {
                if d > s.get(u) {
                    continue;
                }
                let parent = s.parent_of(u).map(|p| p.0).unwrap_or(u32::MAX);
                buckets
                    .entry(u.0)
                    .or_default()
                    .push((slot as u32, d, parent));
                // Backward stall: some higher-ranked x reaches t more
                // cheaply through u than u's own label claims.
                if up.arcs(u.0).any(|(x, w)| s.get(VertexId(x)) + w < d) {
                    continue;
                }
                for (x, w) in down.arcs(u.0) {
                    let nd = d + w;
                    if nd < s.get(VertexId(x)) {
                        s.set_with_parent(VertexId(x), nd, u);
                        s.push(nd, VertexId(x));
                    }
                }
            }
        });
    }

    // Forward upward search; per slot, remember the best candidate and its
    // meeting vertex for unpacking.
    let mut best = vec![INFINITE_DISTANCE; distinct.len()];
    let mut meet = vec![u32::MAX; distinct.len()];
    with_scratch(|s| {
        s.begin(n);
        s.set(VertexId(source), 0.0);
        s.push(0.0, VertexId(source));
        while let Some((d, u)) = s.pop() {
            if d > s.get(u) {
                continue;
            }
            if let Some(entries) = buckets.get(&u.0) {
                for &(slot, bd, _) in entries {
                    let cand = d + bd;
                    if cand < best[slot as usize] {
                        best[slot as usize] = cand;
                        meet[slot as usize] = u.0;
                    }
                }
            }
            if down.arcs(u.0).any(|(x, w)| s.get(VertexId(x)) + w < d) {
                continue;
            }
            for (x, w) in up.arcs(u.0) {
                let nd = d + w;
                if nd < s.get(VertexId(x)) {
                    s.set_with_parent(VertexId(x), nd, u);
                    s.push(nd, VertexId(x));
                }
            }
        }

        // Unpack each reachable target's winning path while the forward
        // parent tree is still alive in this scratch.
        let mut fwd_chain = Vec::new();
        for slot in 0..distinct.len() {
            let m = meet[slot];
            if m == u32::MAX {
                continue;
            }
            let mut total = 0.0;
            fwd_chain.clear();
            fwd_chain.push(m);
            let mut cur = VertexId(m);
            while let Some(p) = s.parent_of(cur) {
                fwd_chain.push(p.0);
                cur = p;
            }
            debug_assert_eq!(*fwd_chain.last().unwrap(), source);
            for pair in fwd_chain.windows(2).rev() {
                ch.unpack_arc(pair[1], pair[0], &mut total);
            }
            // Backward chain: follow bucket parents from the meeting vertex
            // to the target.
            let mut cur = m;
            loop {
                let entry = buckets
                    .get(&cur)
                    .and_then(|es| es.iter().find(|e| e.0 == slot as u32))
                    .expect("bucket chain: settled vertices carry entries");
                let parent = entry.2;
                if parent == u32::MAX {
                    break; // reached the target
                }
                ch.unpack_arc(cur, parent, &mut total);
                cur = parent;
            }
            debug_assert_eq!(cur, distinct[slot]);
            best[slot] = total;
        }
    });
    if let Some(&slot) = slot_of.get(&source) {
        best[slot] = 0.0;
    }

    targets.iter().map(|t| best[slot_of[t]]).collect()
}

#[cfg(test)]
mod tests {
    use super::super::ContractionHierarchy;
    use crate::dijkstra;
    use crate::graph::RoadNetworkBuilder;
    use crate::types::VertexId;

    #[test]
    fn buckets_handle_duplicates_source_and_unreachable_targets() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(200.0, 0.0);
        let island = b.add_vertex(900.0, 900.0);
        b.add_bidirectional_edge(v0, v1, 100.0);
        b.add_directed_edge(v1, v2, 30.0);
        let net = b.build().unwrap();
        let ch = ContractionHierarchy::build(&net).unwrap();
        let targets = vec![v2, v0, island, v2, v1];
        let got = ch.distances_from(v0, &targets);
        assert_eq!(got.len(), targets.len());
        for (t, d) in targets.iter().zip(&got) {
            let exact = dijkstra::distance(&net, v0, *t).unwrap_or(crate::types::INFINITE_DISTANCE);
            assert!(
                *d == exact || (d.is_infinite() && exact.is_infinite()),
                "{t}: {d} vs {exact}"
            );
        }
    }

    #[test]
    fn empty_targets_yield_empty_output() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let _ = b.add_vertex(1.0, 0.0);
        let net = b.build().unwrap();
        let ch = ContractionHierarchy::build(&net).unwrap();
        assert!(ch.distances_from(v0, &[]).is_empty());
        assert_eq!(ch.distances_from(v0, &[VertexId(0)]), vec![0.0]);
    }
}
