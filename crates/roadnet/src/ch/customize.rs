//! Customizable-CH-style metric repair: fix a contraction order once,
//! recompute shortcut weights bottom-up per traffic epoch.
//!
//! A witness-pruned hierarchy ([`super::builder`]) is metric-*dependent*: a
//! shortcut is omitted exactly when some witness path is at least as short
//! under the build-time metric, so a traffic-induced weight change can make
//! an omitted shortcut necessary and silently corrupt distances. The
//! classic fix (Dibbelt et al.'s customizable contraction hierarchies) is
//! to separate the **metric-independent topology** from the **per-metric
//! weights**:
//!
//! 1. [`CchTopology::build`] contracts the network **without witness
//!    searches** — every in-neighbour × out-neighbour pair of a contracted
//!    vertex gets an arc. Which arcs exist depends only on the graph
//!    structure and the contraction order, never on weights, so the
//!    topology is built **once** and reused for every traffic epoch. Each
//!    enumeration of an (in-arc, out-arc, shortcut) triple is recorded as
//!    a *lower triangle* of the shortcut arc.
//!
//!    The order is a **geometric nested dissection** over the vertex
//!    coordinates (recursive median bisection along the wider axis;
//!    boundary vertices of each cut form the separator and rank above
//!    both halves) — *not* the witness hierarchy's edge-difference order.
//!    That order is tuned for witness-pruned search graphs and its
//!    witness-free fill-in explodes on city-scale grids (measured: > 16×
//!    the arc count on a 25.6k-vertex city; greedy min-degree fared
//!    little better there at 14× with 88M triangles). Nested dissection
//!    is what real CCH implementations use, and road networks ship the
//!    planar coordinates that make the geometric variant a few dozen
//!    lines. The order is computed once per topology and shared by every
//!    epoch, which is what makes a traffic update a *customization*
//!    rather than a rebuild.
//! 2. [`CchTopology::customize`] computes the weights for one metric with
//!    the basic customization pass: initialise every arc with its original
//!    edge weight (`∞` for pure shortcuts), then relax all lower triangles
//!    in **ascending rank of the middle vertex** — when triangle
//!    `(u → m, m → x)` improves arc `u → x`, the arc's weight becomes the
//!    sum and its *middle* becomes `m`. Processing middles bottom-up makes
//!    every triangle's side arcs final before they are read (their own
//!    triangles have strictly lower middles), which is the standard CCH
//!    correctness argument. The result is a regular
//!    [`ContractionHierarchy`]: the query and unpacking machinery of
//!    [`super::query`] / [`super::bucket`] runs on it unchanged, so
//!    customized distances are **bit-identical to Dijkstra on the new
//!    metric** for exactly the reason build-time CH distances are — the
//!    winning up-down path is unpacked into original arcs and re-folded in
//!    path order.
//!
//! The trade-off: witness-free contraction inserts more shortcuts than the
//! witness-pruned build (queries are somewhat slower, memory somewhat
//! larger), but a traffic epoch costs one allocation-light linear pass over
//! the triangle list — no node ordering, no witness Dijkstras — instead of
//! a full rebuild. On pathological inputs whose witness-free contraction
//! would blow past the shortcut budget, [`CchTopology::build`] fails
//! cleanly and the caller (the [`crate::DistanceOracle`]) serves traffic
//! epochs through the ALT backend instead.
//!
//! # Level-parallel customization
//!
//! The per-epoch pass parallelises along the **elimination tree**: vertex
//! levels satisfy `level[x] >= level[r] + 1` for every skeleton arc
//! `r — x` (`x` ranked higher), and a triangle inherits its middle's
//! level. Two facts make a level a synchronisation-free unit of work:
//! every arc a level-`L` triangle *reads* was last written at a level
//! `< L` (a side arc `m — u` is only written by triangles whose middle has
//! an arc to `m`, hence sits strictly below `m`), and every arc it
//! *writes* is only read at a level `> L` (the target `u — x` serves as a
//! side arc only for the middle `min(u, x)`, which sits strictly above
//! `m`). Within one level, two triangles can still share a *target* arc,
//! so the triangle arrays are sorted by `(level, target, middle)` and
//! chunk boundaries snap to target runs — each target arc then belongs to
//! exactly one worker per level, and levels are separated by thread joins.
//!
//! An equal-weight tie-break (keep the smallest middle rank among minimum
//! achievers; never displace "no middle") makes the fold independent of
//! processing order, so every thread count — including the plain
//! single-pass sequential path — produces the bit-identical hierarchy.
//! Triangles live in structure-of-arrays layout (four parallel `u32`
//! columns instead of a 16-byte struct) so the relaxation streams four
//! tight arrays instead of striding over padded records.

use super::{ChBuildError, ContractionHierarchy, SearchGraph, NO_MIDDLE};
use crate::graph::RoadNetwork;
use crate::types::VertexId;

/// Levels whose triangle count falls below this bound are relaxed inline
/// rather than fanned out: the spawn/join cost of a scoped round trip
/// dwarfs the work itself for tiny levels (the deep, narrow tail of the
/// elimination tree).
const PAR_LEVEL_MIN_TRIANGLES: usize = 512;

/// Default shortcut budget for witness-free re-contraction, as a multiple
/// of the original directed-arc count. Looser than
/// [`super::ChConfig::max_shortcut_factor`] because skipping witness
/// searches necessarily inserts more shortcuts; road-like graphs still stay
/// well under this.
pub const CCH_MAX_SHORTCUT_FACTOR: f64 = 16.0;

/// One lower triangle: relaxing `in_arc + out_arc` may improve `target`,
/// with `middle` (internal id) as the bypassed vertex. Assembly-time only;
/// the topology stores triangles as structure-of-arrays columns.
#[derive(Clone, Copy, Debug)]
struct Triangle {
    /// Arc `u → middle` (global arc id).
    in_arc: u32,
    /// Arc `middle → x` (global arc id).
    out_arc: u32,
    /// Arc `u → x` (global arc id).
    target: u32,
    /// Internal (rank) id of the bypassed vertex.
    middle: u32,
}

/// Separator quality statistics recorded while computing the
/// nested-dissection order. Separator sizes drive witness-free fill-in
/// (shortcuts only form within a region or into its separator stack), so
/// these numbers are how an order change is audited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeparatorStats {
    /// Recursive bisections performed (leaves excluded).
    pub cuts: usize,
    /// Vertices in the largest single separator.
    pub max_separator: usize,
    /// Vertices across all separators.
    pub total_separator: usize,
    /// What the separators would have totalled under the unrefined
    /// boundary heuristic (every left-half vertex with a right-half
    /// neighbour); `total_separator` is never larger.
    pub boundary_vertices: usize,
}

/// The metric-independent repair topology of a road network: a fill-in-
/// reducing contraction order, the witness-free search-graph skeleton it
/// induces, and the lower-triangle list that drives per-epoch weight
/// customization.
///
/// Built once per network with [`CchTopology::build`];
/// [`CchTopology::customize`] then produces a queryable
/// [`ContractionHierarchy`] for any metric over the same topology.
pub struct CchTopology {
    /// `rank[v]` = internal id of external vertex `v` under the topology's
    /// own (minimum-degree) contraction order.
    rank: Vec<u32>,
    /// Witness-free upward search-graph skeleton (offsets/targets only).
    up_offsets: Vec<u32>,
    up_targets: Vec<u32>,
    /// Witness-free downward search-graph skeleton.
    down_offsets: Vec<u32>,
    down_targets: Vec<u32>,
    /// `(csr arc index, global hierarchy arc id)` pairs: which original
    /// network arcs initialise which hierarchy arcs (parallel arcs map to
    /// the same hierarchy arc; customization keeps the minimum).
    init: Vec<(u32, u32)>,
    /// Lower triangles in structure-of-arrays layout, sorted by
    /// `(elimination level of middle, target arc, middle rank)`:
    /// `tri_in[i]` / `tri_out[i]` are the side-arc ids whose sum may
    /// improve arc `tri_target[i]`, bypassing vertex `tri_middle[i]`.
    tri_in: Vec<u32>,
    tri_out: Vec<u32>,
    tri_target: Vec<u32>,
    tri_middle: Vec<u32>,
    /// Triangle ranges per non-empty elimination level: the `k`-th level
    /// spans `level_offsets[k]..level_offsets[k + 1]` of the columns above.
    level_offsets: Vec<u32>,
    /// Separator sizes of the nested-dissection order.
    separator: SeparatorStats,
    /// Hierarchy arcs that carry no original edge (pure shortcuts).
    num_shortcuts: usize,
}

/// Raw views of the customization weight/middle tables shared by the level
/// fan-out workers.
///
/// Why the aliasing is sound: within one level, chunk boundaries snap to
/// target-arc runs, so each target arc is written by exactly one worker;
/// the side arcs a triangle reads were last written while processing a
/// strictly lower level (see the module docs), and levels are separated by
/// thread joins, so no location is ever concurrently written and accessed.
struct TableView {
    weights: *mut f64,
    middles: *mut u32,
}

unsafe impl Send for TableView {}
unsafe impl Sync for TableView {}

/// Inserts `to` into a sorted arc-target list, returning `true` if new.
#[inline]
fn insert_sorted(list: &mut Vec<u32>, to: u32) -> bool {
    match list.binary_search(&to) {
        Ok(_) => false,
        Err(pos) => {
            list.insert(pos, to);
            true
        }
    }
}

/// Removes `to` from a sorted arc-target list.
#[inline]
fn remove_sorted(list: &mut Vec<u32>, to: u32) {
    if let Ok(pos) = list.binary_search(&to) {
        list.remove(pos);
    }
}

/// Picks a vertex cover of the crossing edges `(left, right)` greedily:
/// repeatedly take the vertex covering the most still-uncovered crossing
/// edges (smallest id on ties — deterministic), from either side of the
/// cut. Returns the cover sorted ascending. Classic greedy set cover, so
/// on boundary-shaped instances (a road-network cut is a near-matching)
/// it sits at or near the optimum and never above `ln`-factor of it.
fn greedy_crossing_cover(crossing: &[(u32, u32)]) -> Vec<u32> {
    let mut cand: Vec<u32> = crossing.iter().flat_map(|&(l, r)| [l, r]).collect();
    cand.sort_unstable();
    cand.dedup();
    let idx = |v: u32| cand.binary_search(&v).expect("endpoint is a candidate");
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); cand.len()];
    for (e, &(l, r)) in crossing.iter().enumerate() {
        incident[idx(l)].push(e as u32);
        incident[idx(r)].push(e as u32);
    }
    let mut deg: Vec<u32> = incident.iter().map(|list| list.len() as u32).collect();
    let mut covered = vec![false; crossing.len()];
    let mut uncovered = crossing.len();
    let mut cover = Vec::new();
    while uncovered > 0 {
        let (mut best, mut best_deg) = (0usize, 0u32);
        for (i, &d) in deg.iter().enumerate() {
            if d > best_deg {
                best = i;
                best_deg = d;
            }
        }
        debug_assert!(best_deg > 0, "uncovered edge must have an endpoint");
        cover.push(cand[best]);
        for &e in &incident[best] {
            if !covered[e as usize] {
                covered[e as usize] = true;
                uncovered -= 1;
                let (l, r) = crossing[e as usize];
                deg[idx(l)] -= 1;
                deg[idx(r)] -= 1;
            }
        }
    }
    cover.sort_unstable();
    cover
}

/// A geometric nested-dissection contraction order: recursively bisect the
/// vertex set at the coordinate median of its wider bounding-box axis
/// (ties broken by vertex id, so duplicate coordinates still split
/// deterministically); a refined vertex cover of the cut's crossing edges
/// forms the separator and receives the **highest** ranks of its region,
/// above both recursed halves. Removing the separator disconnects the
/// halves (every crossing edge has an endpoint in the cover), which is
/// what bounds the witness-free fill-in: shortcuts only ever form within a
/// region or into its separator stack.
///
/// The cover is the greedy crossing-edge cover ([`greedy_crossing_cover`]),
/// clamped to never exceed the one-sided boundary heuristic it replaces
/// (the set of left vertices with a right neighbour is itself a cover);
/// both candidate sizes are recorded in the returned [`SeparatorStats`] so
/// the refinement stays auditable.
///
/// Metric-independent (coordinates + topology only) and deterministic, so
/// the order — and with it the repair topology — is stable across epochs.
fn nested_dissection_rank(net: &RoadNetwork) -> (Vec<u32>, SeparatorStats) {
    let n = net.num_vertices();
    // Undirected neighbour sets drive separator detection.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in net.edges() {
        if e.from == e.to {
            continue;
        }
        if insert_sorted(&mut adj[e.from.index()], e.to.0) {
            insert_sorted(&mut adj[e.to.index()], e.from.0);
        }
    }

    let mut rank = vec![0u32; n];
    let mut stats = SeparatorStats::default();
    // Region membership markers for O(1) "is in right half" / "is in the
    // separator" tests.
    let mut in_right = vec![false; n];
    let mut in_sep = vec![false; n];
    // Explicit stack of (region, base rank) work items.
    let mut stack: Vec<(Vec<u32>, u32)> = vec![((0..n as u32).collect(), 0)];
    while let Some((mut region, base)) = stack.pop() {
        if region.len() <= 16 {
            // Leaf: order by degree ascending (cheap local heuristic; the
            // region is too small for a cut to matter).
            region.sort_unstable_by_key(|&v| (adj[v as usize].len(), v));
            for (i, &v) in region.iter().enumerate() {
                rank[v as usize] = base + i as u32;
            }
            continue;
        }
        // Median split along the wider axis of the region's bounding box.
        let coord = |v: u32, x_axis: bool| {
            let p = net.coord(VertexId(v));
            if x_axis {
                p.x
            } else {
                p.y
            }
        };
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &region {
            let p = net.coord(VertexId(v));
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let x_axis = (max_x - min_x) >= (max_y - min_y);
        let half = region.len() / 2;
        region.select_nth_unstable_by(half, |&a, &b| {
            coord(a, x_axis)
                .partial_cmp(&coord(b, x_axis))
                .unwrap()
                .then(a.cmp(&b))
        });
        let right: Vec<u32> = region.split_off(half);
        let left = region;
        for &v in &right {
            in_right[v as usize] = true;
        }
        // Crossing edges of the cut, left endpoint first.
        let mut crossing: Vec<(u32, u32)> = Vec::new();
        for &v in &left {
            for &w in &adj[v as usize] {
                if in_right[w as usize] {
                    crossing.push((v, w));
                }
            }
        }
        // The unrefined heuristic — every left endpoint — is itself a
        // cover; the greedy cover is used when strictly smaller so
        // refinement can never regress a cut.
        let mut boundary: Vec<u32> = crossing.iter().map(|&(l, _)| l).collect();
        boundary.sort_unstable();
        boundary.dedup();
        stats.boundary_vertices += boundary.len();
        let cover = greedy_crossing_cover(&crossing);
        let separator = if cover.len() < boundary.len() {
            cover
        } else {
            boundary
        };
        stats.cuts += 1;
        stats.max_separator = stats.max_separator.max(separator.len());
        stats.total_separator += separator.len();

        for &v in &separator {
            in_sep[v as usize] = true;
        }
        let left_rest: Vec<u32> = left
            .iter()
            .copied()
            .filter(|&v| !in_sep[v as usize])
            .collect();
        let right_rest: Vec<u32> = right
            .iter()
            .copied()
            .filter(|&v| !in_sep[v as usize])
            .collect();
        for &v in &right {
            in_right[v as usize] = false;
        }
        for &v in &separator {
            in_sep[v as usize] = false;
        }
        // Rank layout within [base, base + |region|): left rest, right
        // rest, separator on top.
        let sep_base = base + (left_rest.len() + right_rest.len()) as u32;
        for (i, &v) in separator.iter().enumerate() {
            rank[v as usize] = sep_base + i as u32;
        }
        let right_base = base + left_rest.len() as u32;
        stack.push((left_rest, base));
        stack.push((right_rest, right_base));
    }
    (rank, stats)
}

impl CchTopology {
    /// Builds the repair topology for a network with the default shortcut
    /// budget ([`CCH_MAX_SHORTCUT_FACTOR`]).
    pub fn build(net: &RoadNetwork) -> Result<Self, ChBuildError> {
        Self::build_with(net, CCH_MAX_SHORTCUT_FACTOR)
    }

    /// Builds the repair topology with an explicit shortcut budget (as a
    /// multiple of the original directed-arc count). Fails with
    /// [`ChBuildError::TooManyShortcuts`] when witness-free contraction
    /// would exceed it.
    pub fn build_with(net: &RoadNetwork, max_shortcut_factor: f64) -> Result<Self, ChBuildError> {
        let n = net.num_vertices();

        // The fill-in-reducing contraction order, fixed for the lifetime of
        // the topology.
        let (rank, separator) = nested_dissection_rank(net);

        // Directed overlay adjacency in internal (rank) ids, topology only.
        // Sorted target lists so membership tests and unlinking are
        // logarithmic.
        let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut bwd: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut original_arcs = 0usize;
        for e in net.edges() {
            if e.from == e.to {
                continue; // self-loops never lie on a shortest path
            }
            let (ru, rv) = (rank[e.from.index()], rank[e.to.index()]);
            if insert_sorted(&mut fwd[ru as usize], rv) {
                original_arcs += 1;
            }
            insert_sorted(&mut bwd[rv as usize], ru);
        }
        let budget = ((original_arcs as f64) * max_shortcut_factor).ceil() as usize;

        // Witness-free contraction in ascending internal id (= rank) order.
        let mut up_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut down_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Triangles (middle, u, x) in internal ids, recorded in contraction
        // order — i.e. already ascending in the middle's rank; arc ids are
        // resolved once the final CSR skeleton exists.
        let mut raw_triangles: Vec<(u32, u32, u32)> = Vec::new();
        let mut num_arcs = original_arcs;
        for r in 0..n as u32 {
            let ri = r as usize;
            let out = std::mem::take(&mut fwd[ri]);
            let inn = std::mem::take(&mut bwd[ri]);
            for &x in &out {
                remove_sorted(&mut bwd[x as usize], r);
            }
            for &u in &inn {
                remove_sorted(&mut fwd[u as usize], r);
            }
            // The shortcut arc u → x exists whether or not a witness would
            // have pruned it — that is what makes the topology
            // metric-independent. Every enumeration is a lower triangle of
            // the arc, including those over pre-existing arcs.
            for &u in &inn {
                for &x in &out {
                    if u == x {
                        continue;
                    }
                    if insert_sorted(&mut fwd[u as usize], x) {
                        insert_sorted(&mut bwd[x as usize], u);
                        num_arcs += 1;
                        if num_arcs - original_arcs > budget {
                            return Err(ChBuildError::TooManyShortcuts {
                                shortcuts: num_arcs - original_arcs,
                                original_arcs,
                            });
                        }
                    }
                    raw_triangles.push((r, u, x));
                }
            }
            up_adj[ri] = out;
            down_adj[ri] = inn;
        }

        // Freeze the CSR skeletons (targets already sorted).
        let build_csr = |adj: &[Vec<u32>]| -> (Vec<u32>, Vec<u32>) {
            let mut offsets = Vec::with_capacity(n + 1);
            offsets.push(0u32);
            let total: usize = adj.iter().map(Vec::len).sum();
            let mut targets = Vec::with_capacity(total);
            for list in adj {
                targets.extend_from_slice(list);
                offsets.push(targets.len() as u32);
            }
            (offsets, targets)
        };
        let (up_offsets, up_targets) = build_csr(&up_adj);
        let (down_offsets, down_targets) = build_csr(&down_adj);
        let up_len = up_targets.len() as u32;

        // Global arc id of the hierarchy arc `from → to` (orig direction,
        // internal ids): up arcs first, then down arcs.
        let arc_id = |from: u32, to: u32| -> u32 {
            if to > from {
                let lo = up_offsets[from as usize] as usize;
                let hi = up_offsets[from as usize + 1] as usize;
                let pos = up_targets[lo..hi]
                    .binary_search(&to)
                    .expect("frozen arc must be in the up skeleton");
                (lo + pos) as u32
            } else {
                let lo = down_offsets[to as usize] as usize;
                let hi = down_offsets[to as usize + 1] as usize;
                let pos = down_targets[lo..hi]
                    .binary_search(&from)
                    .expect("frozen arc must be in the down skeleton");
                up_len + (lo + pos) as u32
            }
        };

        // Resolve arc ids — a pure per-triangle map, fanned out over the
        // preprocessing workers (chunk boundaries cannot change a pure
        // map's output).
        let threads = super::preprocess_threads();
        let triangles: Vec<Triangle> = if threads >= 2 && raw_triangles.len() >= 1 << 16 {
            super::builder::par_map_chunks(&raw_triangles, threads, |chunk| {
                chunk
                    .iter()
                    .map(|&(m, u, x)| Triangle {
                        in_arc: arc_id(u, m),
                        out_arc: arc_id(m, x),
                        target: arc_id(u, x),
                        middle: m,
                    })
                    .collect::<Vec<Triangle>>()
            })
            .concat()
        } else {
            raw_triangles
                .iter()
                .map(|&(m, u, x)| Triangle {
                    in_arc: arc_id(u, m),
                    out_arc: arc_id(m, x),
                    target: arc_id(u, x),
                    middle: m,
                })
                .collect()
        };
        drop(raw_triangles);

        // Elimination-tree vertex levels: every skeleton arc connects an
        // internal vertex `r` to higher-ranked targets, so one ascending
        // sweep fixes `level[x] = 1 + max(level[r])` over all lower arc
        // endpoints `r` of `x`.
        let mut vlevel = vec![0u32; n];
        for r in 0..n {
            let bumped = vlevel[r] + 1;
            let (ulo, uhi) = (up_offsets[r] as usize, up_offsets[r + 1] as usize);
            let (dlo, dhi) = (down_offsets[r] as usize, down_offsets[r + 1] as usize);
            for &x in up_targets[ulo..uhi].iter().chain(&down_targets[dlo..dhi]) {
                if vlevel[x as usize] < bumped {
                    vlevel[x as usize] = bumped;
                }
            }
        }
        // Order for the level-parallel pass: levels ascending, target runs
        // contiguous within a level, middles ascending within a run. A
        // counting sort groups by level (one count pass, one scatter pass —
        // no comparison sort over the full table), then each level is
        // sorted by the packed `(target, middle)` key. Keys are unique (one
        // triangle per (middle, target) pair), so the final order is
        // deterministic no matter how the scatter interleaved a level.
        let num_levels = vlevel.iter().max().map_or(0, |&l| l as usize) + 1;
        let mut level_counts = vec![0u32; num_levels];
        for t in &triangles {
            level_counts[vlevel[t.middle as usize] as usize] += 1;
        }
        let mut level_starts = vec![0u32; num_levels + 1];
        for (l, &c) in level_counts.iter().enumerate() {
            level_starts[l + 1] = level_starts[l] + c;
        }
        let mut cursors = level_starts[..num_levels].to_vec();
        // Scatter: every triangle lands at a distinct index inside its
        // level's range, so the zero-filled placeholders are all replaced.
        let mut by_level: Vec<Triangle> = vec![
            Triangle {
                in_arc: 0,
                out_arc: 0,
                target: 0,
                middle: 0,
            };
            triangles.len()
        ];
        for t in &triangles {
            let cursor = &mut cursors[vlevel[t.middle as usize] as usize];
            by_level[*cursor as usize] = *t;
            *cursor += 1;
        }
        drop(triangles);
        // Boundaries of the non-empty levels only (duplicate prefix sums
        // are empty levels); always ends at the total so `windows(2)`
        // covers every triangle.
        let mut level_offsets = vec![0u32];
        for &end in &level_starts[1..] {
            if end != *level_offsets.last().expect("non-empty") {
                level_offsets.push(end);
            }
        }
        if level_offsets.len() == 1 {
            level_offsets.push(0);
        }
        // Per-level (target, middle) sorts are independent — fan them out.
        let sort_level = |seg: &mut [Triangle]| {
            seg.sort_unstable_by_key(|t| ((t.target as u64) << 32) | t.middle as u64);
        };
        if threads >= 2 {
            let mut rest: &mut [Triangle] = &mut by_level;
            let mut segments: Vec<&mut [Triangle]> = Vec::with_capacity(num_levels);
            for window in level_offsets.windows(2) {
                let len = (window[1] - window[0]) as usize;
                let (seg, tail) = rest.split_at_mut(len);
                segments.push(seg);
                rest = tail;
            }
            std::thread::scope(|scope| {
                let sort_level = &sort_level;
                let chunk = segments.len().div_ceil(threads).max(1);
                for group in segments.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for seg in group.iter_mut() {
                            sort_level(seg);
                        }
                    });
                }
            });
        } else {
            for window in level_offsets.windows(2) {
                sort_level(&mut by_level[window[0] as usize..window[1] as usize]);
            }
        }
        let mut tri_in = Vec::with_capacity(by_level.len());
        let mut tri_out = Vec::with_capacity(by_level.len());
        let mut tri_target = Vec::with_capacity(by_level.len());
        let mut tri_middle = Vec::with_capacity(by_level.len());
        for t in &by_level {
            tri_in.push(t.in_arc);
            tri_out.push(t.out_arc);
            tri_target.push(t.target);
            tri_middle.push(t.middle);
        }

        let mut has_original = vec![false; up_targets.len() + down_targets.len()];
        let mut init = Vec::with_capacity(net.num_directed_edges());
        for v in net.vertices() {
            for i in net.out_arc_range(v) {
                let t = net.arc_target(i);
                if t == v {
                    continue;
                }
                let id = arc_id(rank[v.index()], rank[t.index()]);
                has_original[id as usize] = true;
                init.push((i as u32, id));
            }
        }
        let num_shortcuts = has_original.iter().filter(|&&o| !o).count();

        Ok(CchTopology {
            rank,
            up_offsets,
            up_targets,
            down_offsets,
            down_targets,
            init,
            tri_in,
            tri_out,
            tri_target,
            tri_middle,
            level_offsets,
            separator,
            num_shortcuts,
        })
    }

    /// Number of vertices covered by the topology.
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// Total hierarchy arcs (originals plus witness-free shortcuts).
    pub fn num_arcs(&self) -> usize {
        self.up_targets.len() + self.down_targets.len()
    }

    /// Pure shortcut arcs (no original edge maps onto them).
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Lower triangles the customization pass relaxes per epoch.
    pub fn num_triangles(&self) -> usize {
        self.tri_target.len()
    }

    /// Non-empty elimination-tree levels of the triangle pass — the number
    /// of synchronisation points of a parallel customization.
    pub fn num_levels(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// Separator sizes of the nested-dissection order, for auditing
    /// fill-in against order-quality changes.
    pub fn separator_stats(&self) -> SeparatorStats {
        self.separator
    }

    /// Relaxes the triangle range `lo..hi` against the weight/middle
    /// tables. The equal-weight tie-break keeps the smallest middle rank
    /// among minimum achievers and never displaces "no middle", which
    /// makes the final tables independent of processing order — the whole
    /// bit-identity story of the parallel pass.
    ///
    /// # Safety
    /// The caller must guarantee that no other thread concurrently writes
    /// any target arc in the range or any side arc it reads; see
    /// [`TableView`] for why the level fan-out satisfies this.
    unsafe fn relax_range(&self, tables: &TableView, lo: usize, hi: usize) {
        for i in lo..hi {
            let cand = *tables.weights.add(self.tri_in[i] as usize)
                + *tables.weights.add(self.tri_out[i] as usize);
            let target = self.tri_target[i] as usize;
            let current = *tables.weights.add(target);
            if cand < current {
                *tables.weights.add(target) = cand;
                *tables.middles.add(target) = self.tri_middle[i];
            } else if cand == current {
                let middle = self.tri_middle[i];
                let held = *tables.middles.add(target);
                if held != NO_MIDDLE && middle < held {
                    *tables.middles.add(target) = middle;
                }
            }
        }
    }

    /// Computes the hierarchy for one metric: `arc_weights[i]` is the
    /// weight of the network's CSR arc `i` (for a traffic epoch, the scaled
    /// weights of [`crate::traffic::TrafficModel::scaled_weights`] — the
    /// *same* values the metric network carries, so unpacked folds are
    /// bit-identical to Dijkstra on that network).
    ///
    /// Cost: `O(arcs + triangles)`, no search, no ordering.
    ///
    /// # Panics
    /// Panics if `arc_weights` does not carry one weight per network arc
    /// the topology was built from.
    pub fn customize(&self, arc_weights: &[f64]) -> ContractionHierarchy {
        self.customize_with_threads(arc_weights, super::preprocess_threads())
    }

    /// [`Self::customize`] with an explicit worker count, ignoring
    /// `PTRIDER_PREPROCESS_THREADS`. Every thread count produces the
    /// bit-identical hierarchy (weights *and* middles — see
    /// [`Self::relax_range`]); `threads == 1` runs one plain pass over the
    /// triangle columns with no scoped threads at all.
    pub fn customize_with_threads(
        &self,
        arc_weights: &[f64],
        threads: usize,
    ) -> ContractionHierarchy {
        let up_len = self.up_targets.len();
        let total = up_len + self.down_targets.len();
        let mut weights = vec![f64::INFINITY; total];
        let mut middles = vec![NO_MIDDLE; total];
        for &(csr, arc) in &self.init {
            let w = arc_weights[csr as usize];
            if w < weights[arc as usize] {
                weights[arc as usize] = w;
            }
        }
        // Bottom-up triangle relaxation: the columns are sorted level-major,
        // so one ascending pass (sequential) or a per-level fan-out
        // (parallel) both read only-final side arcs.
        let tables = TableView {
            weights: weights.as_mut_ptr(),
            middles: middles.as_mut_ptr(),
        };
        if threads <= 1 {
            // SAFETY: exclusive access — no other thread exists.
            unsafe { self.relax_range(&tables, 0, self.tri_target.len()) };
        } else {
            for window in self.level_offsets.windows(2) {
                let (lo, hi) = (window[0] as usize, window[1] as usize);
                if hi - lo < PAR_LEVEL_MIN_TRIANGLES {
                    // SAFETY: inline on the coordinating thread, between
                    // joins — exclusive access.
                    unsafe { self.relax_range(&tables, lo, hi) };
                    continue;
                }
                let chunk = (hi - lo).div_ceil(threads);
                let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(threads);
                let mut start = lo;
                while start < hi {
                    let mut end = (start + chunk).min(hi);
                    // Snap to the end of the target run so each target arc
                    // has exactly one writer this level.
                    while end < hi && self.tri_target[end] == self.tri_target[end - 1] {
                        end += 1;
                    }
                    bounds.push((start, end));
                    start = end;
                }
                let tables = &tables;
                std::thread::scope(|scope| {
                    for &(lo, hi) in &bounds {
                        // SAFETY: disjoint target runs per worker, side
                        // arcs finalised at lower levels (TableView docs).
                        scope.spawn(move || unsafe { self.relax_range(tables, lo, hi) });
                    }
                });
            }
        }

        let slice_graph = |offsets: &[u32], targets: &[u32], base: usize| -> SearchGraph {
            SearchGraph {
                offsets: offsets.to_vec(),
                targets: targets.to_vec(),
                weights: weights[base..base + targets.len()].to_vec(),
                middles: middles[base..base + targets.len()].to_vec(),
            }
        };
        let up = slice_graph(&self.up_offsets, &self.up_targets, 0);
        let down = slice_graph(&self.down_offsets, &self.down_targets, up_len);
        ContractionHierarchy::from_parts(self.rank.clone(), up, down, self.num_shortcuts)
    }
}

impl std::fmt::Debug for CchTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CchTopology")
            .field("vertices", &self.num_vertices())
            .field("arcs", &self.num_arcs())
            .field("shortcuts", &self.num_shortcuts)
            .field("triangles", &self.num_triangles())
            .field("levels", &self.num_levels())
            .field("separator", &self.separator)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::graph::RoadNetworkBuilder;
    use crate::traffic::TrafficModel;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn lattice(side: usize, seed: u64) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ids = Vec::new();
        for y in 0..side {
            for x in 0..side {
                ids.push(b.add_vertex(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        for y in 0..side {
            for x in 0..side {
                let u = ids[y * side + x];
                if x + 1 < side {
                    b.add_bidirectional_edge(u, ids[y * side + x + 1], rng.gen_range(80.0..200.0));
                }
                if y + 1 < side {
                    b.add_bidirectional_edge(
                        u,
                        ids[(y + 1) * side + x],
                        rng.gen_range(80.0..200.0),
                    );
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn base_metric_customization_matches_dijkstra_bit_for_bit() {
        let net = lattice(6, 7);
        let topo = CchTopology::build(&net).unwrap();
        assert!(topo.num_arcs() >= net.num_directed_edges());
        assert!(topo.num_triangles() > 0);
        let weights: Vec<f64> = (0..net.num_directed_edges())
            .map(|i| net.arc_weight(i))
            .collect();
        let custom = topo.customize(&weights);
        for u in net.vertices() {
            for v in net.vertices() {
                let exact = dijkstra::distance(&net, u, v).unwrap();
                assert_eq!(custom.distance(u, v), exact, "{u}->{v}");
            }
        }
    }

    #[test]
    fn witness_pruned_hierarchy_alone_is_wrong_under_traffic() {
        // The motivating counterexample: dist(a, c) via b equals the direct
        // edge, so the witness build inserts no shortcut for b. Congesting
        // the direct edge makes the through-path the shortest — which the
        // frozen witness hierarchy cannot represent, while the customized
        // topology can.
        let mut b = RoadNetworkBuilder::new();
        let va = b.add_vertex(0.0, 0.0);
        let vb = b.add_vertex(50.0, 50.0);
        let vc = b.add_vertex(100.0, 0.0);
        b.add_bidirectional_edge(va, vb, 1.0);
        b.add_bidirectional_edge(vb, vc, 1.0);
        b.add_bidirectional_edge(va, vc, 2.0);
        let net = b.build().unwrap();
        let ch = ContractionHierarchy::build(&net).unwrap();
        assert_eq!(ch.num_shortcuts(), 0);

        let mut model = TrafficModel::free_flow(&net);
        model.set_segment_factor(&net, va, vc, 3.0); // direct edge now 6.0
        let scaled = model.scaled_weights(&net);
        let metric = net.with_metric(scaled.clone()).unwrap();
        assert_eq!(dijkstra::distance(&metric, va, vc), Some(2.0));

        let topo = CchTopology::build(&net).unwrap();
        let custom = topo.customize(&scaled);
        for u in net.vertices() {
            for v in net.vertices() {
                let exact = dijkstra::distance(&metric, u, v).unwrap();
                assert_eq!(custom.distance(u, v), exact, "{u}->{v}");
            }
        }
    }

    #[test]
    fn customization_tracks_a_sequence_of_metrics_on_directed_networks() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(200.0, 0.0);
        let v3 = b.add_vertex(300.0, 0.0);
        b.add_bidirectional_edge(v0, v1, 100.0);
        b.add_bidirectional_edge(v1, v2, 100.0);
        b.add_bidirectional_edge(v2, v3, 100.0);
        b.add_directed_edge(v0, v3, 250.0);
        let net = b.build().unwrap();
        let topo = CchTopology::build(&net).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut model = TrafficModel::free_flow(&net);
        for _ in 0..8 {
            for i in 0..net.num_directed_edges() {
                if rng.gen_bool(0.5) {
                    model.set_arc_factor(i, rng.gen_range(1.0..4.0));
                }
            }
            let scaled = model.scaled_weights(&net);
            let metric = net.with_metric(scaled.clone()).unwrap();
            let custom = topo.customize(&scaled);
            for u in net.vertices() {
                for v in net.vertices() {
                    let exact = dijkstra::distance(&metric, u, v).unwrap_or(f64::INFINITY);
                    let got = custom.distance(u, v);
                    assert!(
                        got == exact || (got.is_infinite() && exact.is_infinite()),
                        "{u}->{v}: custom {got} vs dijkstra {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn customization_is_bit_identical_across_thread_counts() {
        let net = lattice(12, 41);
        let topo = CchTopology::build(&net).unwrap();
        assert!(topo.num_levels() > 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut model = TrafficModel::free_flow(&net);
        for i in 0..net.num_directed_edges() {
            if rng.gen_bool(0.4) {
                model.set_arc_factor(i, rng.gen_range(1.0..3.0));
            }
        }
        let scaled = model.scaled_weights(&net);
        let seq = topo.customize_with_threads(&scaled, 1);
        for threads in [2, 3, 8] {
            let par = topo.customize_with_threads(&scaled, threads);
            assert_eq!(par.num_shortcuts(), seq.num_shortcuts());
            for u in net.vertices() {
                for v in net.vertices() {
                    let a = seq.distance(u, v);
                    let b = par.distance(u, v);
                    assert!(
                        a == b || (a.is_infinite() && b.is_infinite()),
                        "threads={threads}, {u}->{v}: seq {a} vs par {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn separator_stats_are_recorded_and_refinement_never_regresses() {
        let net = lattice(10, 13);
        let topo = CchTopology::build(&net).unwrap();
        let stats = topo.separator_stats();
        assert!(stats.cuts > 0);
        assert!(stats.max_separator > 0);
        assert!(stats.total_separator >= stats.max_separator);
        // The refined cover is clamped to the unrefined boundary heuristic.
        assert!(stats.total_separator <= stats.boundary_vertices);
    }

    #[test]
    fn tiny_budget_aborts_cleanly() {
        let net = lattice(5, 3);
        match CchTopology::build_with(&net, 0.0) {
            Err(ChBuildError::TooManyShortcuts { .. }) => {}
            Ok(topo) => {
                // A lattice always needs some shortcut under contraction.
                panic!("0-budget topology unexpectedly built: {topo:?}");
            }
        }
    }
}
