//! Customizable-CH-style metric repair: fix a contraction order once,
//! recompute shortcut weights bottom-up per traffic epoch.
//!
//! A witness-pruned hierarchy ([`super::builder`]) is metric-*dependent*: a
//! shortcut is omitted exactly when some witness path is at least as short
//! under the build-time metric, so a traffic-induced weight change can make
//! an omitted shortcut necessary and silently corrupt distances. The
//! classic fix (Dibbelt et al.'s customizable contraction hierarchies) is
//! to separate the **metric-independent topology** from the **per-metric
//! weights**:
//!
//! 1. [`CchTopology::build`] contracts the network **without witness
//!    searches** — every in-neighbour × out-neighbour pair of a contracted
//!    vertex gets an arc. Which arcs exist depends only on the graph
//!    structure and the contraction order, never on weights, so the
//!    topology is built **once** and reused for every traffic epoch. Each
//!    enumeration of an (in-arc, out-arc, shortcut) triple is recorded as
//!    a *lower triangle* of the shortcut arc.
//!
//!    The order is a **geometric nested dissection** over the vertex
//!    coordinates (recursive median bisection along the wider axis;
//!    boundary vertices of each cut form the separator and rank above
//!    both halves) — *not* the witness hierarchy's edge-difference order.
//!    That order is tuned for witness-pruned search graphs and its
//!    witness-free fill-in explodes on city-scale grids (measured: > 16×
//!    the arc count on a 25.6k-vertex city; greedy min-degree fared
//!    little better there at 14× with 88M triangles). Nested dissection
//!    is what real CCH implementations use, and road networks ship the
//!    planar coordinates that make the geometric variant a few dozen
//!    lines. The order is computed once per topology and shared by every
//!    epoch, which is what makes a traffic update a *customization*
//!    rather than a rebuild.
//! 2. [`CchTopology::customize`] computes the weights for one metric with
//!    the basic customization pass: initialise every arc with its original
//!    edge weight (`∞` for pure shortcuts), then relax all lower triangles
//!    in **ascending rank of the middle vertex** — when triangle
//!    `(u → m, m → x)` improves arc `u → x`, the arc's weight becomes the
//!    sum and its *middle* becomes `m`. Processing middles bottom-up makes
//!    every triangle's side arcs final before they are read (their own
//!    triangles have strictly lower middles), which is the standard CCH
//!    correctness argument. The result is a regular
//!    [`ContractionHierarchy`]: the query and unpacking machinery of
//!    [`super::query`] / [`super::bucket`] runs on it unchanged, so
//!    customized distances are **bit-identical to Dijkstra on the new
//!    metric** for exactly the reason build-time CH distances are — the
//!    winning up-down path is unpacked into original arcs and re-folded in
//!    path order.
//!
//! The trade-off: witness-free contraction inserts more shortcuts than the
//! witness-pruned build (queries are somewhat slower, memory somewhat
//! larger), but a traffic epoch costs one allocation-light linear pass over
//! the triangle list — no node ordering, no witness Dijkstras — instead of
//! a full rebuild. On pathological inputs whose witness-free contraction
//! would blow past the shortcut budget, [`CchTopology::build`] fails
//! cleanly and the caller (the [`crate::DistanceOracle`]) serves traffic
//! epochs through the ALT backend instead.

use super::{ChBuildError, ContractionHierarchy, SearchGraph, NO_MIDDLE};
use crate::graph::RoadNetwork;
use crate::types::VertexId;

/// Default shortcut budget for witness-free re-contraction, as a multiple
/// of the original directed-arc count. Looser than
/// [`super::ChConfig::max_shortcut_factor`] because skipping witness
/// searches necessarily inserts more shortcuts; road-like graphs still stay
/// well under this.
pub const CCH_MAX_SHORTCUT_FACTOR: f64 = 16.0;

/// One lower triangle: relaxing `in_arc + out_arc` may improve `target`,
/// with `middle` (internal id) as the bypassed vertex.
#[derive(Clone, Copy, Debug)]
struct Triangle {
    /// Arc `u → middle` (global arc id).
    in_arc: u32,
    /// Arc `middle → x` (global arc id).
    out_arc: u32,
    /// Arc `u → x` (global arc id).
    target: u32,
    /// Internal (rank) id of the bypassed vertex.
    middle: u32,
}

/// The metric-independent repair topology of a road network: a fill-in-
/// reducing contraction order, the witness-free search-graph skeleton it
/// induces, and the lower-triangle list that drives per-epoch weight
/// customization.
///
/// Built once per network with [`CchTopology::build`];
/// [`CchTopology::customize`] then produces a queryable
/// [`ContractionHierarchy`] for any metric over the same topology.
pub struct CchTopology {
    /// `rank[v]` = internal id of external vertex `v` under the topology's
    /// own (minimum-degree) contraction order.
    rank: Vec<u32>,
    /// Witness-free upward search-graph skeleton (offsets/targets only).
    up_offsets: Vec<u32>,
    up_targets: Vec<u32>,
    /// Witness-free downward search-graph skeleton.
    down_offsets: Vec<u32>,
    down_targets: Vec<u32>,
    /// `(csr arc index, global hierarchy arc id)` pairs: which original
    /// network arcs initialise which hierarchy arcs (parallel arcs map to
    /// the same hierarchy arc; customization keeps the minimum).
    init: Vec<(u32, u32)>,
    /// All lower triangles, ascending by middle rank (recorded in
    /// contraction order, which *is* ascending rank).
    triangles: Vec<Triangle>,
    /// Hierarchy arcs that carry no original edge (pure shortcuts).
    num_shortcuts: usize,
}

/// Inserts `to` into a sorted arc-target list, returning `true` if new.
#[inline]
fn insert_sorted(list: &mut Vec<u32>, to: u32) -> bool {
    match list.binary_search(&to) {
        Ok(_) => false,
        Err(pos) => {
            list.insert(pos, to);
            true
        }
    }
}

/// Removes `to` from a sorted arc-target list.
#[inline]
fn remove_sorted(list: &mut Vec<u32>, to: u32) {
    if let Ok(pos) = list.binary_search(&to) {
        list.remove(pos);
    }
}

/// A geometric nested-dissection contraction order: recursively bisect the
/// vertex set at the coordinate median of its wider bounding-box axis; the
/// left-half vertices with a neighbour in the right half form the
/// separator of the cut and receive the **highest** ranks of their region,
/// above both recursed halves. Removing the separator disconnects the
/// halves (any crossing edge would put its left endpoint into the
/// separator), which is what bounds the witness-free fill-in: shortcuts
/// only ever form within a region or into its separator stack.
///
/// Metric-independent (coordinates + topology only) and deterministic, so
/// the order — and with it the repair topology — is stable across epochs.
fn nested_dissection_rank(net: &RoadNetwork) -> Vec<u32> {
    let n = net.num_vertices();
    // Undirected neighbour sets drive separator detection.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in net.edges() {
        if e.from == e.to {
            continue;
        }
        if insert_sorted(&mut adj[e.from.index()], e.to.0) {
            insert_sorted(&mut adj[e.to.index()], e.from.0);
        }
    }

    let mut rank = vec![0u32; n];
    // Region membership marker for O(1) "is in right half" tests.
    let mut in_right = vec![false; n];
    // Explicit stack of (region, base rank) work items.
    let mut stack: Vec<(Vec<u32>, u32)> = vec![((0..n as u32).collect(), 0)];
    while let Some((mut region, base)) = stack.pop() {
        if region.len() <= 16 {
            // Leaf: order by degree ascending (cheap local heuristic; the
            // region is too small for a cut to matter).
            region.sort_unstable_by_key(|&v| (adj[v as usize].len(), v));
            for (i, &v) in region.iter().enumerate() {
                rank[v as usize] = base + i as u32;
            }
            continue;
        }
        // Median split along the wider axis of the region's bounding box.
        let coord = |v: u32, x_axis: bool| {
            let p = net.coord(VertexId(v));
            if x_axis {
                p.x
            } else {
                p.y
            }
        };
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &region {
            let p = net.coord(VertexId(v));
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let x_axis = (max_x - min_x) >= (max_y - min_y);
        let half = region.len() / 2;
        region.select_nth_unstable_by(half, |&a, &b| {
            coord(a, x_axis)
                .partial_cmp(&coord(b, x_axis))
                .unwrap()
                .then(a.cmp(&b))
        });
        let right: Vec<u32> = region.split_off(half);
        let left = region;
        for &v in &right {
            in_right[v as usize] = true;
        }
        // Separator: left vertices adjacent to the right half.
        let mut separator = Vec::new();
        let mut left_rest = Vec::with_capacity(left.len());
        for &v in &left {
            if adj[v as usize].iter().any(|&w| in_right[w as usize]) {
                separator.push(v);
            } else {
                left_rest.push(v);
            }
        }
        for &v in &right {
            in_right[v as usize] = false;
        }
        // Rank layout within [base, base + |region|): left rest, right,
        // separator on top.
        let sep_base = base + (left_rest.len() + right.len()) as u32;
        for (i, &v) in separator.iter().enumerate() {
            rank[v as usize] = sep_base + i as u32;
        }
        let right_base = base + left_rest.len() as u32;
        stack.push((left_rest, base));
        stack.push((right, right_base));
    }
    rank
}

impl CchTopology {
    /// Builds the repair topology for a network with the default shortcut
    /// budget ([`CCH_MAX_SHORTCUT_FACTOR`]).
    pub fn build(net: &RoadNetwork) -> Result<Self, ChBuildError> {
        Self::build_with(net, CCH_MAX_SHORTCUT_FACTOR)
    }

    /// Builds the repair topology with an explicit shortcut budget (as a
    /// multiple of the original directed-arc count). Fails with
    /// [`ChBuildError::TooManyShortcuts`] when witness-free contraction
    /// would exceed it.
    pub fn build_with(net: &RoadNetwork, max_shortcut_factor: f64) -> Result<Self, ChBuildError> {
        let n = net.num_vertices();

        // The fill-in-reducing contraction order, fixed for the lifetime of
        // the topology.
        let rank = nested_dissection_rank(net);

        // Directed overlay adjacency in internal (rank) ids, topology only.
        // Sorted target lists so membership tests and unlinking are
        // logarithmic.
        let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut bwd: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut original_arcs = 0usize;
        for e in net.edges() {
            if e.from == e.to {
                continue; // self-loops never lie on a shortest path
            }
            let (ru, rv) = (rank[e.from.index()], rank[e.to.index()]);
            if insert_sorted(&mut fwd[ru as usize], rv) {
                original_arcs += 1;
            }
            insert_sorted(&mut bwd[rv as usize], ru);
        }
        let budget = ((original_arcs as f64) * max_shortcut_factor).ceil() as usize;

        // Witness-free contraction in ascending internal id (= rank) order.
        let mut up_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut down_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Triangles (middle, u, x) in internal ids, recorded in contraction
        // order — i.e. already ascending in the middle's rank; arc ids are
        // resolved once the final CSR skeleton exists.
        let mut raw_triangles: Vec<(u32, u32, u32)> = Vec::new();
        let mut num_arcs = original_arcs;
        for r in 0..n as u32 {
            let ri = r as usize;
            let out = std::mem::take(&mut fwd[ri]);
            let inn = std::mem::take(&mut bwd[ri]);
            for &x in &out {
                remove_sorted(&mut bwd[x as usize], r);
            }
            for &u in &inn {
                remove_sorted(&mut fwd[u as usize], r);
            }
            // The shortcut arc u → x exists whether or not a witness would
            // have pruned it — that is what makes the topology
            // metric-independent. Every enumeration is a lower triangle of
            // the arc, including those over pre-existing arcs.
            for &u in &inn {
                for &x in &out {
                    if u == x {
                        continue;
                    }
                    if insert_sorted(&mut fwd[u as usize], x) {
                        insert_sorted(&mut bwd[x as usize], u);
                        num_arcs += 1;
                        if num_arcs - original_arcs > budget {
                            return Err(ChBuildError::TooManyShortcuts {
                                shortcuts: num_arcs - original_arcs,
                                original_arcs,
                            });
                        }
                    }
                    raw_triangles.push((r, u, x));
                }
            }
            up_adj[ri] = out;
            down_adj[ri] = inn;
        }

        // Freeze the CSR skeletons (targets already sorted).
        let build_csr = |adj: &[Vec<u32>]| -> (Vec<u32>, Vec<u32>) {
            let mut offsets = Vec::with_capacity(n + 1);
            offsets.push(0u32);
            let total: usize = adj.iter().map(Vec::len).sum();
            let mut targets = Vec::with_capacity(total);
            for list in adj {
                targets.extend_from_slice(list);
                offsets.push(targets.len() as u32);
            }
            (offsets, targets)
        };
        let (up_offsets, up_targets) = build_csr(&up_adj);
        let (down_offsets, down_targets) = build_csr(&down_adj);
        let up_len = up_targets.len() as u32;

        // Global arc id of the hierarchy arc `from → to` (orig direction,
        // internal ids): up arcs first, then down arcs.
        let arc_id = |from: u32, to: u32| -> u32 {
            if to > from {
                let lo = up_offsets[from as usize] as usize;
                let hi = up_offsets[from as usize + 1] as usize;
                let pos = up_targets[lo..hi]
                    .binary_search(&to)
                    .expect("frozen arc must be in the up skeleton");
                (lo + pos) as u32
            } else {
                let lo = down_offsets[to as usize] as usize;
                let hi = down_offsets[to as usize + 1] as usize;
                let pos = down_targets[lo..hi]
                    .binary_search(&from)
                    .expect("frozen arc must be in the down skeleton");
                up_len + (lo + pos) as u32
            }
        };

        let triangles: Vec<Triangle> = raw_triangles
            .into_iter()
            .map(|(m, u, x)| Triangle {
                in_arc: arc_id(u, m),
                out_arc: arc_id(m, x),
                target: arc_id(u, x),
                middle: m,
            })
            .collect();

        let mut has_original = vec![false; up_targets.len() + down_targets.len()];
        let mut init = Vec::with_capacity(net.num_directed_edges());
        for v in net.vertices() {
            for i in net.out_arc_range(v) {
                let t = net.arc_target(i);
                if t == v {
                    continue;
                }
                let id = arc_id(rank[v.index()], rank[t.index()]);
                has_original[id as usize] = true;
                init.push((i as u32, id));
            }
        }
        let num_shortcuts = has_original.iter().filter(|&&o| !o).count();

        Ok(CchTopology {
            rank,
            up_offsets,
            up_targets,
            down_offsets,
            down_targets,
            init,
            triangles,
            num_shortcuts,
        })
    }

    /// Number of vertices covered by the topology.
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// Total hierarchy arcs (originals plus witness-free shortcuts).
    pub fn num_arcs(&self) -> usize {
        self.up_targets.len() + self.down_targets.len()
    }

    /// Pure shortcut arcs (no original edge maps onto them).
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Lower triangles the customization pass relaxes per epoch.
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Computes the hierarchy for one metric: `arc_weights[i]` is the
    /// weight of the network's CSR arc `i` (for a traffic epoch, the scaled
    /// weights of [`crate::traffic::TrafficModel::scaled_weights`] — the
    /// *same* values the metric network carries, so unpacked folds are
    /// bit-identical to Dijkstra on that network).
    ///
    /// Cost: `O(arcs + triangles)`, no search, no ordering.
    ///
    /// # Panics
    /// Panics if `arc_weights` does not carry one weight per network arc
    /// the topology was built from.
    pub fn customize(&self, arc_weights: &[f64]) -> ContractionHierarchy {
        let up_len = self.up_targets.len();
        let total = up_len + self.down_targets.len();
        let mut weights = vec![f64::INFINITY; total];
        let mut middles = vec![NO_MIDDLE; total];
        for &(csr, arc) in &self.init {
            let w = arc_weights[csr as usize];
            if w < weights[arc as usize] {
                weights[arc as usize] = w;
            }
        }
        // Bottom-up triangle relaxation: `triangles` is ascending in middle
        // rank, so both side arcs are final when read.
        for t in &self.triangles {
            let cand = weights[t.in_arc as usize] + weights[t.out_arc as usize];
            if cand < weights[t.target as usize] {
                weights[t.target as usize] = cand;
                middles[t.target as usize] = t.middle;
            }
        }

        let slice_graph = |offsets: &[u32], targets: &[u32], base: usize| -> SearchGraph {
            SearchGraph {
                offsets: offsets.to_vec(),
                targets: targets.to_vec(),
                weights: weights[base..base + targets.len()].to_vec(),
                middles: middles[base..base + targets.len()].to_vec(),
            }
        };
        let up = slice_graph(&self.up_offsets, &self.up_targets, 0);
        let down = slice_graph(&self.down_offsets, &self.down_targets, up_len);
        ContractionHierarchy::from_parts(self.rank.clone(), up, down, self.num_shortcuts)
    }
}

impl std::fmt::Debug for CchTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CchTopology")
            .field("vertices", &self.num_vertices())
            .field("arcs", &self.num_arcs())
            .field("shortcuts", &self.num_shortcuts)
            .field("triangles", &self.triangles.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::graph::RoadNetworkBuilder;
    use crate::traffic::TrafficModel;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn lattice(side: usize, seed: u64) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ids = Vec::new();
        for y in 0..side {
            for x in 0..side {
                ids.push(b.add_vertex(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        for y in 0..side {
            for x in 0..side {
                let u = ids[y * side + x];
                if x + 1 < side {
                    b.add_bidirectional_edge(u, ids[y * side + x + 1], rng.gen_range(80.0..200.0));
                }
                if y + 1 < side {
                    b.add_bidirectional_edge(
                        u,
                        ids[(y + 1) * side + x],
                        rng.gen_range(80.0..200.0),
                    );
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn base_metric_customization_matches_dijkstra_bit_for_bit() {
        let net = lattice(6, 7);
        let topo = CchTopology::build(&net).unwrap();
        assert!(topo.num_arcs() >= net.num_directed_edges());
        assert!(topo.num_triangles() > 0);
        let weights: Vec<f64> = (0..net.num_directed_edges())
            .map(|i| net.arc_weight(i))
            .collect();
        let custom = topo.customize(&weights);
        for u in net.vertices() {
            for v in net.vertices() {
                let exact = dijkstra::distance(&net, u, v).unwrap();
                assert_eq!(custom.distance(u, v), exact, "{u}->{v}");
            }
        }
    }

    #[test]
    fn witness_pruned_hierarchy_alone_is_wrong_under_traffic() {
        // The motivating counterexample: dist(a, c) via b equals the direct
        // edge, so the witness build inserts no shortcut for b. Congesting
        // the direct edge makes the through-path the shortest — which the
        // frozen witness hierarchy cannot represent, while the customized
        // topology can.
        let mut b = RoadNetworkBuilder::new();
        let va = b.add_vertex(0.0, 0.0);
        let vb = b.add_vertex(50.0, 50.0);
        let vc = b.add_vertex(100.0, 0.0);
        b.add_bidirectional_edge(va, vb, 1.0);
        b.add_bidirectional_edge(vb, vc, 1.0);
        b.add_bidirectional_edge(va, vc, 2.0);
        let net = b.build().unwrap();
        let ch = ContractionHierarchy::build(&net).unwrap();
        assert_eq!(ch.num_shortcuts(), 0);

        let mut model = TrafficModel::free_flow(&net);
        model.set_segment_factor(&net, va, vc, 3.0); // direct edge now 6.0
        let scaled = model.scaled_weights(&net);
        let metric = net.with_metric(scaled.clone()).unwrap();
        assert_eq!(dijkstra::distance(&metric, va, vc), Some(2.0));

        let topo = CchTopology::build(&net).unwrap();
        let custom = topo.customize(&scaled);
        for u in net.vertices() {
            for v in net.vertices() {
                let exact = dijkstra::distance(&metric, u, v).unwrap();
                assert_eq!(custom.distance(u, v), exact, "{u}->{v}");
            }
        }
    }

    #[test]
    fn customization_tracks_a_sequence_of_metrics_on_directed_networks() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(200.0, 0.0);
        let v3 = b.add_vertex(300.0, 0.0);
        b.add_bidirectional_edge(v0, v1, 100.0);
        b.add_bidirectional_edge(v1, v2, 100.0);
        b.add_bidirectional_edge(v2, v3, 100.0);
        b.add_directed_edge(v0, v3, 250.0);
        let net = b.build().unwrap();
        let topo = CchTopology::build(&net).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut model = TrafficModel::free_flow(&net);
        for _ in 0..8 {
            for i in 0..net.num_directed_edges() {
                if rng.gen_bool(0.5) {
                    model.set_arc_factor(i, rng.gen_range(1.0..4.0));
                }
            }
            let scaled = model.scaled_weights(&net);
            let metric = net.with_metric(scaled.clone()).unwrap();
            let custom = topo.customize(&scaled);
            for u in net.vertices() {
                for v in net.vertices() {
                    let exact = dijkstra::distance(&metric, u, v).unwrap_or(f64::INFINITY);
                    let got = custom.distance(u, v);
                    assert!(
                        got == exact || (got.is_infinite() && exact.is_infinite()),
                        "{u}->{v}: custom {got} vs dijkstra {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_budget_aborts_cleanly() {
        let net = lattice(5, 3);
        match CchTopology::build_with(&net, 0.0) {
            Err(ChBuildError::TooManyShortcuts { .. }) => {}
            Ok(topo) => {
                // A lattice always needs some shortcut under contraction.
                panic!("0-budget topology unexpectedly built: {topo:?}");
            }
        }
    }
}
