//! Bidirectional upward point query with stall-on-demand and exact path
//! unpacking.
//!
//! Every shortest path in a contraction hierarchy can be written as an
//! *up-down* path: ranks strictly increase from the source to some apex
//! vertex and strictly decrease from there to the target. The query
//! therefore runs two Dijkstra searches that both climb: a forward search
//! from `s` relaxing the upward arcs, and a backward search from `t`
//! relaxing the downward arcs in reverse. Whenever a vertex carries labels
//! from both sides, their sum is a candidate distance; the smallest such
//! candidate over all meeting vertices is exact.
//!
//! **Termination** is per-direction: a side stops once the smallest key in
//! its frontier is no smaller than the best candidate found so far (the
//! plain bidirectional `topf + topb ≥ best` test is wrong here because the
//! two searches do not partition one shortest path).
//!
//! **Stall-on-demand**: when the forward search settles `u`, it checks the
//! *downward* arcs into `u` — if some higher-ranked `x` already has a
//! forward label with `dist(x) + w(x→u) < dist(u)`, then `u`'s label is not
//! part of any shortest up-down path and its expansion is skipped
//! (symmetrically for the backward side via the upward arcs). The meeting
//! check still runs for stalled vertices — their labels are genuine path
//! lengths, so using them can only tighten the candidate, never corrupt it.
//!
//! **Unpacking**: shortcut weights are nested sums (`w₁ + w₂` where either
//! side may itself be a shortcut), so the raw candidate `d_f + d_b` can
//! differ from Dijkstra's left-to-right fold of the same path in the last
//! float bit. The query therefore walks the parent pointers of both search
//! trees from the best meeting vertex, expands every shortcut into its
//! original edges ([`ContractionHierarchy::unpack_arc`]), and re-folds the
//! weights in `s → t` order — returning exactly the `f64` Dijkstra produces
//! for that path. The skylines of the matchers are tie-sensitive, so this
//! bit-level agreement is what makes the backends interchangeable.

use super::ContractionHierarchy;
use crate::scratch::with_scratch_pair;
use crate::types::{VertexId, INFINITE_DISTANCE};

/// Result of a settle-capped bidirectional upward query
/// ([`bounded_distance`]).
pub(crate) enum Bounded {
    /// Both upward search spaces were exhausted within the cap: the exact
    /// distance, unpacked and re-folded like [`distance`] (bit-identical to
    /// Dijkstra; `INFINITE_DISTANCE` when unreachable).
    Exact(f64),
    /// The cap was hit first: a value guaranteed not to exceed the exact
    /// distance.
    AtLeast(f64),
}

/// Settle-capped variant of [`distance`] serving the oracle's `lower_bound`
/// on the CH backend: tiny upward spaces resolve **exactly** (and the
/// caller can cache the answer); larger ones yield an admissible truncated
/// bound in `O(settle_cap · log)` regardless of graph size.
///
/// Why the truncated bound is admissible: let `P` be a shortest up-down
/// path of length `d*` and consider the moment the cap fires. On each side,
/// either every vertex of `P`'s leg is settled with final labels — in which
/// case the meeting check has already pushed `best ≤ d*` — or the first
/// unsettled vertex of the leg still sits in that side's frontier with a
/// key that is a prefix length of `P`, hence `≤ d*`. So
/// `min(best, top_f, top_b) ≤ d*` in real arithmetic. A final `1 - 1e-9`
/// haircut absorbs float association differences between frontier-key sums
/// and Dijkstra's path-order fold (relative error bounded by a few ulps per
/// term; the margin is ~4 orders looser), so the returned bound never
/// exceeds the exact folded distance even bit-wise.
pub(crate) fn bounded_distance(
    ch: &ContractionHierarchy,
    s: u32,
    t: u32,
    settle_cap: usize,
) -> Bounded {
    if s == t {
        return Bounded::Exact(0.0);
    }
    let (up, down) = ch.graphs();
    let n = ch.num_vertices();
    with_scratch_pair(|f, b| {
        f.begin(n);
        b.begin(n);
        f.set(VertexId(s), 0.0);
        f.push(0.0, VertexId(s));
        b.set(VertexId(t), 0.0);
        b.push(0.0, VertexId(t));
        let mut best = INFINITE_DISTANCE;
        let mut meet = u32::MAX;
        let mut settles = 0usize;
        loop {
            let top_f = f.peek().map(|(k, _)| k).unwrap_or(INFINITE_DISTANCE);
            let top_b = b.peek().map(|(k, _)| k).unwrap_or(INFINITE_DISTANCE);
            let min_top = top_f.min(top_b);
            if min_top >= best || min_top.is_infinite() {
                break;
            }
            if settles >= settle_cap {
                let bound = best.min(min_top) * (1.0 - 1e-9);
                return Bounded::AtLeast(bound.max(0.0));
            }
            if top_f <= top_b {
                let Some((d, u)) = f.pop() else { break };
                if d > f.get(u) {
                    continue; // stale frontier entry
                }
                settles += 1;
                let db = b.get(u);
                if db.is_finite() && d + db < best {
                    best = d + db;
                    meet = u.0;
                }
                let stalled = down.arcs(u.0).any(|(x, w)| f.get(VertexId(x)) + w < d);
                if stalled {
                    continue;
                }
                for (x, w) in up.arcs(u.0) {
                    let nd = d + w;
                    if nd < f.get(VertexId(x)) {
                        f.set_with_parent(VertexId(x), nd, u);
                        f.push(nd, VertexId(x));
                    }
                }
            } else {
                let Some((d, u)) = b.pop() else { break };
                if d > b.get(u) {
                    continue;
                }
                settles += 1;
                let df = f.get(u);
                if df.is_finite() && d + df < best {
                    best = d + df;
                    meet = u.0;
                }
                let stalled = up.arcs(u.0).any(|(x, w)| b.get(VertexId(x)) + w < d);
                if stalled {
                    continue;
                }
                for (x, w) in down.arcs(u.0) {
                    let nd = d + w;
                    if nd < b.get(VertexId(x)) {
                        b.set_with_parent(VertexId(x), nd, u);
                        b.push(nd, VertexId(x));
                    }
                }
            }
        }
        if meet == u32::MAX {
            return Bounded::Exact(INFINITE_DISTANCE);
        }
        // Complete: unpack exactly like the full query.
        let mut total = 0.0;
        let mut fwd_chain = vec![meet];
        let mut cur = VertexId(meet);
        while let Some(p) = f.parent_of(cur) {
            fwd_chain.push(p.0);
            cur = p;
        }
        debug_assert_eq!(*fwd_chain.last().unwrap(), s);
        for pair in fwd_chain.windows(2).rev() {
            ch.unpack_arc(pair[1], pair[0], &mut total);
        }
        let mut cur = VertexId(meet);
        while let Some(p) = b.parent_of(cur) {
            ch.unpack_arc(cur.0, p.0, &mut total);
            cur = p;
        }
        debug_assert_eq!(cur.0, t);
        Bounded::Exact(total)
    })
}

/// Point query over internal (rank) ids.
pub(super) fn distance(ch: &ContractionHierarchy, s: u32, t: u32) -> f64 {
    if s == t {
        return 0.0;
    }
    let (up, down) = ch.graphs();
    let n = ch.num_vertices();
    with_scratch_pair(|f, b| {
        f.begin(n);
        b.begin(n);
        f.set(VertexId(s), 0.0);
        f.push(0.0, VertexId(s));
        b.set(VertexId(t), 0.0);
        b.push(0.0, VertexId(t));
        let mut best = INFINITE_DISTANCE;
        let mut meet = u32::MAX;
        loop {
            let top_f = f.peek().map(|(k, _)| k).unwrap_or(INFINITE_DISTANCE);
            let top_b = b.peek().map(|(k, _)| k).unwrap_or(INFINITE_DISTANCE);
            let min_top = top_f.min(top_b);
            if min_top >= best || min_top.is_infinite() {
                break;
            }
            if top_f <= top_b {
                let Some((d, u)) = f.pop() else { break };
                if d > f.get(u) {
                    continue; // stale frontier entry
                }
                let db = b.get(u);
                if db.is_finite() && d + db < best {
                    best = d + db;
                    meet = u.0;
                }
                // Stall: a higher-ranked vertex reaches u more cheaply, so
                // no shortest up-path extends through this label.
                let stalled = down.arcs(u.0).any(|(x, w)| f.get(VertexId(x)) + w < d);
                if stalled {
                    continue;
                }
                for (x, w) in up.arcs(u.0) {
                    let nd = d + w;
                    if nd < f.get(VertexId(x)) {
                        f.set_with_parent(VertexId(x), nd, u);
                        f.push(nd, VertexId(x));
                    }
                }
            } else {
                let Some((d, u)) = b.pop() else { break };
                if d > b.get(u) {
                    continue;
                }
                let df = f.get(u);
                if df.is_finite() && d + df < best {
                    best = d + df;
                    meet = u.0;
                }
                let stalled = up.arcs(u.0).any(|(x, w)| b.get(VertexId(x)) + w < d);
                if stalled {
                    continue;
                }
                for (x, w) in down.arcs(u.0) {
                    let nd = d + w;
                    if nd < b.get(VertexId(x)) {
                        b.set_with_parent(VertexId(x), nd, u);
                        b.push(nd, VertexId(x));
                    }
                }
            }
        }
        if meet == u32::MAX {
            return INFINITE_DISTANCE;
        }

        // Unpack the winning up-down path and re-fold its original edge
        // weights in s → t order, reproducing Dijkstra's sum bit-for-bit.
        let mut total = 0.0;
        let mut fwd_chain = vec![meet];
        let mut cur = VertexId(meet);
        while let Some(p) = f.parent_of(cur) {
            fwd_chain.push(p.0);
            cur = p;
        }
        debug_assert_eq!(*fwd_chain.last().unwrap(), s);
        for pair in fwd_chain.windows(2).rev() {
            // fwd_chain runs meet → s; reversed windows give s → meet arcs.
            ch.unpack_arc(pair[1], pair[0], &mut total);
        }
        let mut cur = VertexId(meet);
        while let Some(p) = b.parent_of(cur) {
            ch.unpack_arc(cur.0, p.0, &mut total);
            cur = p;
        }
        debug_assert_eq!(cur.0, t);
        total
    })
}

#[cfg(test)]
mod tests {
    use super::super::ContractionHierarchy;
    use crate::dijkstra;
    use crate::graph::RoadNetworkBuilder;

    #[test]
    fn query_alternates_and_terminates_on_asymmetric_weights() {
        // A ladder where one rail is cheap and the other expensive, so the
        // two search frontiers advance at very different rates.
        let mut b = RoadNetworkBuilder::new();
        let k = 6usize;
        let lo: Vec<_> = (0..k)
            .map(|i| b.add_vertex(i as f64 * 100.0, 0.0))
            .collect();
        let hi: Vec<_> = (0..k)
            .map(|i| b.add_vertex(i as f64 * 100.0, 100.0))
            .collect();
        for i in 0..k - 1 {
            b.add_bidirectional_edge(lo[i], lo[i + 1], 10.0);
            b.add_bidirectional_edge(hi[i], hi[i + 1], 500.0);
        }
        for i in 0..k {
            b.add_bidirectional_edge(lo[i], hi[i], 50.0);
        }
        let net = b.build().unwrap();
        let ch = ContractionHierarchy::build(&net).unwrap();
        for u in net.vertices() {
            for v in net.vertices() {
                let exact = dijkstra::distance(&net, u, v).unwrap();
                let got = ch.distance(u, v);
                assert_eq!(got, exact, "{u}->{v}: {got} vs {exact}");
            }
        }
    }

    #[test]
    fn unpacked_sums_match_dijkstra_bit_for_bit_on_irrational_weights() {
        // Weights whose partial sums are association-sensitive: if the
        // query returned raw shortcut sums, these would differ in the last
        // bits; with unpacking they must be identical.
        let mut b = RoadNetworkBuilder::new();
        let k = 12usize;
        let vs: Vec<_> = (0..k).map(|i| b.add_vertex(i as f64 * 97.0, 0.0)).collect();
        for i in 0..k - 1 {
            let w = 100.0 + (i as f64 * 0.7).sin() * 13.37 + 1.0 / (i as f64 + 3.0);
            b.add_bidirectional_edge(vs[i], vs[i + 1], w);
        }
        let net = b.build().unwrap();
        let ch = ContractionHierarchy::build(&net).unwrap();
        for u in net.vertices() {
            for v in net.vertices() {
                let exact = dijkstra::distance(&net, u, v).unwrap();
                let got = ch.distance(u, v);
                assert!(
                    got.to_bits() == exact.to_bits(),
                    "{u}->{v}: ch {got:?} vs dijkstra {exact:?}"
                );
            }
        }
    }
}
