//! Contraction hierarchies: the second exact distance backend.
//!
//! The ALT backend ([`crate::astar`]) is goal-directed but still settles
//! `O(ball)` vertices per query; on city graphs that caps match throughput
//! well below what peak-period matchers need. A contraction hierarchy (CH)
//! preprocesses the network once — contracting vertices in importance order
//! and inserting *shortcut* edges that preserve shortest-path distances —
//! after which a point query is a pair of tiny Dijkstra runs that only ever
//! move *upward* in the contraction order. On sparse road networks the
//! upward search spaces are polylogarithmic in practice, and the advantage
//! over ALT grows with graph size (the two backends break even around a
//! thousand vertices; at 25k vertices CH is ~9x faster per point query).
//!
//! The subsystem is split along the classic pipeline:
//!
//! * [`builder`] — node ordering by the edge-difference heuristic with
//!   level and deleted-neighbour terms, maintained lazily, and
//!   witness-search contraction that only inserts a shortcut `u → x` when
//!   no path of equal or smaller length survives the removal of the
//!   contracted vertex;
//! * [`query`] — the bidirectional upward point query with stall-on-demand
//!   pruning and exact path unpacking;
//! * [`bucket`] — the many-to-many bucket query backing
//!   [`ContractionHierarchy::distances_from`]: one backward upward search
//!   per target deposits `(target, distance)` entries at every vertex it
//!   settles, then a single forward upward search from the source scans the
//!   buckets it encounters.
//!
//! Two non-obvious design points:
//!
//! * **Rank relabelling.** The search graphs store vertices by contraction
//!   rank, not by external id. Every upward search climbs toward high
//!   ranks, so the hot working set of all queries is the same small
//!   high-rank suffix of the arrays — dramatically better cache locality
//!   than chasing external ids scattered over the whole graph.
//! * **Exact path unpacking.** A shortcut's weight `w₁ + w₂` is summed in a
//!   different association order than Dijkstra's left-to-right relaxation
//!   fold, so raw CH sums can differ from Dijkstra in the last float bit —
//!   enough to flip skyline-dominance ties in the matchers. Queries
//!   therefore *unpack* the winning up-down path into original edges (each
//!   shortcut remembers the vertex it bypassed) and re-fold the weights in
//!   path order, returning bit-for-bit the value Dijkstra returns for the
//!   same path.
//!
//! Directed networks are fully supported: the upward and downward shortcut
//! graphs are built from the directed arc set, so `dist(u, v) ≠ dist(v, u)`
//! is preserved. Construction is fallible by design — pathological inputs
//! whose contraction would blow up the shortcut count return
//! [`ChBuildError`] instead of looping, and the [`crate::DistanceOracle`]
//! falls back to the ALT backend rather than panicking.

pub mod bucket;
pub mod builder;
pub mod customize;
pub mod query;

pub use customize::{CchTopology, SeparatorStats, CCH_MAX_SHORTCUT_FACTOR};

use crate::graph::RoadNetwork;
use crate::types::VertexId;
use std::fmt;

/// Sentinel for "original arc, nothing to unpack".
pub(crate) const NO_MIDDLE: u32 = u32::MAX;

/// Resolves the preprocessing thread count from `PTRIDER_PREPROCESS_THREADS`.
///
/// Defaults to [`std::thread::available_parallelism`]; `1` selects exactly
/// the sequential code paths (no scoped threads are spawned at all). Read
/// fresh on every call — preprocessing is rare and tests flip the variable —
/// and clamped to at least 1. Unparseable values fall back to the default.
///
/// This knob only governs *preprocessing* (CH construction and CCH
/// customization); query-time parallelism belongs to the caller's own pool
/// (`roadnet` deliberately has no dependency on `core::runtime`).
pub fn preprocess_threads() -> usize {
    let default = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var("PTRIDER_PREPROCESS_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default(),
        },
        Err(_) => default(),
    }
}

/// Tuning knobs for contraction-hierarchy construction.
#[derive(Clone, Copy, Debug)]
pub struct ChConfig {
    /// Maximum number of vertices a witness search may settle before giving
    /// up (an aborted witness search conservatively inserts the shortcut, so
    /// this only trades preprocessing time against shortcut count, never
    /// correctness).
    pub witness_settle_limit: usize,
    /// Construction aborts with [`ChBuildError::TooManyShortcuts`] once the
    /// number of inserted shortcuts exceeds `max_shortcut_factor` times the
    /// original arc count. Road networks stay well under 2; dense or
    /// adversarial graphs are better served by the ALT backend.
    pub max_shortcut_factor: f64,
}

impl Default for ChConfig {
    fn default() -> Self {
        ChConfig {
            witness_settle_limit: 64,
            max_shortcut_factor: 8.0,
        }
    }
}

/// Why contraction-hierarchy construction was abandoned.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChBuildError {
    /// Contraction produced more shortcuts than
    /// [`ChConfig::max_shortcut_factor`] allows — the graph is too dense for
    /// a useful hierarchy.
    TooManyShortcuts {
        /// Shortcuts inserted before giving up.
        shortcuts: usize,
        /// Directed arcs in the input network (after parallel-arc dedup).
        original_arcs: usize,
    },
}

impl fmt::Display for ChBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChBuildError::TooManyShortcuts {
                shortcuts,
                original_arcs,
            } => write!(
                f,
                "contraction produced {shortcuts} shortcuts over {original_arcs} original arcs; \
                 the graph is too dense for a useful hierarchy"
            ),
        }
    }
}

impl std::error::Error for ChBuildError {}

/// Compact CSR adjacency over rank-relabelled vertex ids, used for the
/// upward and downward search graphs. Every arc carries the (internal id of
/// the) contracted vertex it bypasses — [`NO_MIDDLE`] for original edges —
/// so queries can unpack shortcut paths exactly.
#[derive(Clone, Debug)]
pub(crate) struct SearchGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    middles: Vec<u32>,
}

impl SearchGraph {
    /// Builds from per-vertex adjacency in internal (rank) ids:
    /// `adj[r] = [(target_rank, weight, middle_rank_or_NO_MIDDLE)]`.
    pub(crate) fn from_adjacency(adj: Vec<Vec<(u32, f64, u32)>>) -> Self {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        let mut middles = Vec::with_capacity(total);
        for mut list in adj {
            // Ascending target order keeps sibling lookups cache-friendly.
            list.sort_unstable_by_key(|arc| arc.0);
            for (to, w, mid) in list {
                targets.push(to);
                weights.push(w);
                middles.push(mid);
            }
            offsets.push(targets.len() as u32);
        }
        SearchGraph {
            offsets,
            targets,
            weights,
            middles,
        }
    }

    /// Arcs stored at internal vertex `v` as `(other endpoint, weight)`.
    #[inline]
    pub(crate) fn arcs(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Finds the arc stored at `v` whose other endpoint is `other`,
    /// returning `(weight, middle)`. Binary search — targets are sorted.
    #[inline]
    pub(crate) fn find(&self, v: u32, other: u32) -> Option<(f64, u32)> {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi]
            .binary_search(&other)
            .ok()
            .map(|i| (self.weights[lo + i], self.middles[lo + i]))
    }

    pub(crate) fn num_arcs(&self) -> usize {
        self.targets.len()
    }
}

/// A built contraction hierarchy over a road network.
///
/// Immutable after construction and cheap to share behind an `Arc`: queries
/// only need `&self` plus the thread-local scratch buffers of
/// [`crate::scratch`], so concurrent matcher threads query one hierarchy
/// without synchronisation.
pub struct ContractionHierarchy {
    /// `rank[v]` = internal (rank-relabelled) id of external vertex `v`
    /// (0 = contracted first, i.e. least important).
    rank: Vec<u32>,
    /// Arcs `u → x` (original direction) with `rank[x] > rank[u]`, stored at
    /// `u`. Relaxed by the forward search; scanned for backward stalling.
    up: SearchGraph,
    /// Arcs `x → u` (original direction) with `rank[x] > rank[u]`, stored at
    /// `u` as `(x, w)`. Relaxed (in reverse) by the backward search; scanned
    /// for forward stalling.
    down: SearchGraph,
    /// Number of shortcut arcs inserted during contraction.
    num_shortcuts: usize,
}

impl ContractionHierarchy {
    /// Builds a hierarchy with the default [`ChConfig`].
    pub fn build(net: &RoadNetwork) -> Result<Self, ChBuildError> {
        Self::build_with(net, &ChConfig::default())
    }

    /// Builds a hierarchy with explicit tuning parameters, using
    /// [`preprocess_threads`] workers for the contraction.
    pub fn build_with(net: &RoadNetwork, config: &ChConfig) -> Result<Self, ChBuildError> {
        builder::build(net, config, preprocess_threads())
    }

    /// Builds a hierarchy with an explicit worker count, ignoring
    /// `PTRIDER_PREPROCESS_THREADS`. `threads == 1` runs the sequential
    /// lazy-queue contraction; `threads >= 2` runs independent-set rounds
    /// (see [`builder`]). Any thread count yields distances bit-identical
    /// to Dijkstra, and every `threads >= 2` yields the *same* hierarchy.
    pub fn build_with_threads(
        net: &RoadNetwork,
        config: &ChConfig,
        threads: usize,
    ) -> Result<Self, ChBuildError> {
        builder::build(net, config, threads)
    }

    /// Exact shortest-path distance, `f64::INFINITY` when unreachable.
    ///
    /// A bidirectional Dijkstra where both sides only relax arcs toward
    /// higher contraction ranks, with stall-on-demand pruning; the winning
    /// up-down path is unpacked into original edges and re-summed in path
    /// order, so the result is bit-for-bit what Dijkstra returns for the
    /// same path. See [`query`].
    pub fn distance(&self, u: VertexId, v: VertexId) -> f64 {
        query::distance(self, self.rank[u.index()], self.rank[v.index()])
    }

    /// Settle-capped distance query backing cheap CH-derived lower bounds:
    /// when both upward search spaces fit under `settle_cap` settles the
    /// answer is **exact** (bit-identical to Dijkstra, like
    /// [`Self::distance`]); otherwise the search stops early and returns an
    /// admissible lower bound. See [`query::bounded_distance`] for the
    /// admissibility argument.
    pub(crate) fn bounded_distance(
        &self,
        u: VertexId,
        v: VertexId,
        settle_cap: usize,
    ) -> query::Bounded {
        query::bounded_distance(self, self.rank[u.index()], self.rank[v.index()], settle_cap)
    }

    /// One-to-many exact distances from `source` to every vertex in
    /// `targets` with the bucket algorithm of [`bucket`]: `k` small backward
    /// upward searches plus one forward upward search, instead of `k`
    /// bidirectional queries. Unreachable targets get `f64::INFINITY`;
    /// duplicate targets are fine. Results are unpacked exactly like
    /// [`Self::distance`].
    pub fn distances_from(&self, source: VertexId, targets: &[VertexId]) -> Vec<f64> {
        let source = self.rank[source.index()];
        let targets: Vec<u32> = targets.iter().map(|t| self.rank[t.index()]).collect();
        bucket::distances_from(self, source, &targets)
    }

    /// Number of vertices in the hierarchy.
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// Contraction rank of a vertex (0 = contracted first).
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v.index()]
    }

    /// Number of shortcut arcs the contraction inserted.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Total arcs across the upward and downward search graphs (originals
    /// plus shortcuts, each stored once).
    pub fn num_search_arcs(&self) -> usize {
        self.up.num_arcs() + self.down.num_arcs()
    }

    /// Diagnostic: the number of vertices the forward and backward upward
    /// searches from `v` can reach (no early termination, no stalling) —
    /// the primary quality metric of a node ordering. Query latency is
    /// roughly proportional to these counts.
    pub fn upward_search_space(&self, v: VertexId) -> (usize, usize) {
        let start = self.rank[v.index()];
        let count = |graph: &SearchGraph| {
            crate::scratch::with_scratch(|s| {
                s.begin(self.rank.len());
                s.set(VertexId(start), 0.0);
                s.push(0.0, VertexId(start));
                let mut settled = 0usize;
                while let Some((d, u)) = s.pop() {
                    if d > s.get(u) {
                        continue;
                    }
                    settled += 1;
                    for (x, w) in graph.arcs(u.0) {
                        let nd = d + w;
                        if nd < s.get(VertexId(x)) {
                            s.set(VertexId(x), nd);
                            s.push(nd, VertexId(x));
                        }
                    }
                }
                settled
            })
        };
        (count(&self.up), count(&self.down))
    }

    /// Approximate memory footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.rank.len() * 4
            + (self.up.num_arcs() + self.down.num_arcs()) * (4 + 8 + 4)
            + (self.up.offsets.len() + self.down.offsets.len()) * 4
    }

    pub(crate) fn graphs(&self) -> (&SearchGraph, &SearchGraph) {
        (&self.up, &self.down)
    }

    pub(crate) fn from_parts(
        rank: Vec<u32>,
        up: SearchGraph,
        down: SearchGraph,
        num_shortcuts: usize,
    ) -> Self {
        ContractionHierarchy {
            rank,
            up,
            down,
            num_shortcuts,
        }
    }

    /// Looks up the original-direction arc `from → to` (internal ids),
    /// wherever it is stored: upward arcs (`to` ranked higher) live in
    /// `up[from]`, downward arcs in `down[to]`.
    #[inline]
    pub(crate) fn arc(&self, from: u32, to: u32) -> Option<(f64, u32)> {
        if to > from {
            self.up.find(from, to)
        } else {
            self.down.find(to, from)
        }
    }

    /// Folds the original-edge weights of the (possibly shortcut) arc
    /// `from → to` into `total`, in path order. Because unpacking emits
    /// edges strictly in path order, the running `+=` reproduces exactly
    /// the left-to-right sum Dijkstra's relaxations compute.
    pub(crate) fn unpack_arc(&self, from: u32, to: u32, total: &mut f64) {
        let (w, mid) = self
            .arc(from, to)
            .expect("unpack: arc must exist in the hierarchy");
        if mid == NO_MIDDLE {
            *total += w;
        } else {
            self.unpack_arc(from, mid, total);
            self.unpack_arc(mid, to, total);
        }
    }
}

impl fmt::Debug for ContractionHierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContractionHierarchy")
            .field("vertices", &self.num_vertices())
            .field("up_arcs", &self.up.num_arcs())
            .field("down_arcs", &self.down.num_arcs())
            .field("shortcuts", &self.num_shortcuts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::graph::RoadNetworkBuilder;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn lattice(side: usize, seed: u64) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ids = Vec::new();
        for y in 0..side {
            for x in 0..side {
                ids.push(b.add_vertex(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        for y in 0..side {
            for x in 0..side {
                let u = ids[y * side + x];
                if x + 1 < side {
                    b.add_bidirectional_edge(u, ids[y * side + x + 1], rng.gen_range(80.0..200.0));
                }
                if y + 1 < side {
                    b.add_bidirectional_edge(
                        u,
                        ids[(y + 1) * side + x],
                        rng.gen_range(80.0..200.0),
                    );
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_dijkstra_bit_for_bit_on_undirected_lattice() {
        let net = lattice(6, 3);
        let ch = ContractionHierarchy::build(&net).unwrap();
        for u in net.vertices() {
            for v in net.vertices() {
                let exact = dijkstra::distance(&net, u, v).unwrap();
                let got = ch.distance(u, v);
                // Path unpacking re-folds original weights in path order, so
                // the equality is exact, not approximate.
                assert_eq!(got, exact, "{u}->{v}: ch {got} vs {exact}");
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_directed_network() {
        // One-way shortcut plus an expensive return arc: distances are
        // asymmetric, and the hierarchy must preserve both directions.
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(200.0, 0.0);
        let v3 = b.add_vertex(300.0, 0.0);
        b.add_bidirectional_edge(v0, v1, 100.0);
        b.add_bidirectional_edge(v1, v2, 100.0);
        b.add_bidirectional_edge(v2, v3, 100.0);
        b.add_directed_edge(v0, v3, 50.0);
        b.add_directed_edge(v3, v0, 900.0);
        let net = b.build().unwrap();
        assert!(!net.is_undirected());
        let ch = ContractionHierarchy::build(&net).unwrap();
        for u in net.vertices() {
            for v in net.vertices() {
                let exact = dijkstra::distance(&net, u, v).unwrap();
                let got = ch.distance(u, v);
                assert_eq!(got, exact, "{u}->{v}: ch {got} vs {exact}");
            }
        }
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(200.0, 0.0);
        b.add_directed_edge(v0, v1, 10.0);
        let net = b.build().unwrap();
        let ch = ContractionHierarchy::build(&net).unwrap();
        assert_eq!(ch.distance(v0, v1), 10.0);
        assert!(ch.distance(v1, v0).is_infinite());
        assert!(ch.distance(v0, v2).is_infinite());
        assert!(ch.distance(v2, v0).is_infinite());
        assert_eq!(ch.distance(v2, v2), 0.0);
    }

    #[test]
    fn distances_from_matches_point_queries() {
        let net = lattice(5, 11);
        let ch = ContractionHierarchy::build(&net).unwrap();
        let targets: Vec<VertexId> = net.vertices().collect();
        for source in net.vertices() {
            let batch = ch.distances_from(source, &targets);
            for (t, d) in targets.iter().zip(&batch) {
                let point = ch.distance(source, *t);
                assert!(
                    *d == point || (d.is_infinite() && point.is_infinite()),
                    "{source}->{t}: batch {d} vs point {point}"
                );
            }
        }
    }

    #[test]
    fn shortcut_count_is_reported() {
        let net = lattice(6, 5);
        let ch = ContractionHierarchy::build(&net).unwrap();
        // A lattice needs some shortcuts but far fewer than the arc bound.
        assert!(ch.num_shortcuts() > 0);
        assert!(ch.num_search_arcs() >= net.num_directed_edges());
        assert!(ch.approximate_bytes() > 0);
        // Ranks form a permutation of 0..n.
        let mut ranks: Vec<u32> = net.vertices().map(|v| ch.rank(v)).collect();
        ranks.sort_unstable();
        let expected: Vec<u32> = (0..net.num_vertices() as u32).collect();
        assert_eq!(ranks, expected);
        // The diagnostic search spaces are non-trivial and bounded by n.
        let (f, b) = ch.upward_search_space(VertexId(0));
        assert!(f >= 1 && f <= net.num_vertices());
        assert!(b >= 1 && b <= net.num_vertices());
    }

    #[test]
    fn dense_graph_aborts_instead_of_exploding() {
        // A complete digraph with random weights: contraction of any vertex
        // wants shortcuts between all remaining pairs. With a tiny shortcut
        // budget the build must abort cleanly.
        let mut b = RoadNetworkBuilder::new();
        let n = 24usize;
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let ids: Vec<VertexId> = (0..n)
            .map(|i| b.add_vertex(rng.gen_range(0.0..100.0), i as f64))
            .collect();
        for &u in &ids {
            for &v in &ids {
                if u != v {
                    b.add_directed_edge(u, v, rng.gen_range(500.0..1000.0));
                }
            }
        }
        let net = b.build().unwrap();
        let cfg = ChConfig {
            max_shortcut_factor: 0.01,
            ..ChConfig::default()
        };
        match ContractionHierarchy::build_with(&net, &cfg) {
            Err(ChBuildError::TooManyShortcuts { .. }) => {}
            Ok(ch) => {
                // Acceptable alternative: witness searches found enough
                // paths that the budget was never exceeded. Distances must
                // then be exact.
                let exact = dijkstra::distance(&net, ids[0], ids[n - 1]).unwrap();
                assert!((ch.distance(ids[0], ids[n - 1]) - exact).abs() < 1e-6);
            }
        }
    }
}
