//! Contraction-hierarchy construction: node ordering and witness-search
//! contraction.
//!
//! Vertices are contracted in ascending importance, where importance is the
//! classic *edge difference* heuristic (shortcuts a contraction would insert
//! minus arcs it removes) combined with a *deleted neighbours* term that
//! spreads contraction evenly across the network and a *level* term that
//! keeps the hierarchy shallow (a vertex whose neighbours are already high
//! in the hierarchy is pushed later, which empirically shrinks the upward
//! search spaces by ~2x on city lattices versus plain edge difference).
//! Priorities go stale as neighbours are contracted, so the queue is
//! maintained **lazily**: when a vertex is popped its priority is
//! recomputed, and it is only contracted if it still beats the next-best
//! entry — otherwise it is re-inserted with the fresh value (Geisberger et
//! al.'s lazy-update scheme).
//!
//! Contracting `v` must preserve all shortest paths that ran through `v`:
//! for every in-arc `u → v` (weight `w₁`) and out-arc `v → x` (weight `w₂`)
//! a **witness search** — a bounded Dijkstra from `u` in the current overlay
//! graph with `v` removed — checks whether some other path of length at most
//! `w₁ + w₂` already connects `u` to `x`. Only when no witness exists is the
//! shortcut `u → x` with weight `w₁ + w₂` inserted (remembering `v` as its
//! *middle* vertex so queries can unpack it). Witness searches are capped
//! ([`ChConfig::witness_settle_limit`]); an aborted witness search
//! conservatively inserts the shortcut, which can only cost memory, never
//! correctness.
//!
//! The final search graphs are **relabelled by rank**: internal vertex `r`
//! is the vertex contracted `r`-th. Upward searches then walk toward high
//! internal ids, concentrating the hot set of every query in the same
//! high-rank array suffix.

use super::{ChBuildError, ChConfig, ContractionHierarchy, SearchGraph, NO_MIDDLE};
use crate::graph::RoadNetwork;
use crate::scratch::with_scratch;
use crate::types::VertexId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Overlay arc: `(other endpoint, weight, middle vertex or NO_MIDDLE)`.
type Arc = (u32, f64, u32);

/// Inserts or min-updates the arc `list ∋ (to, w, mid)`; returns `true` when
/// the arc is new.
fn upsert(list: &mut Vec<Arc>, to: u32, w: f64, mid: u32) -> bool {
    for entry in list.iter_mut() {
        if entry.0 == to {
            if w < entry.1 {
                entry.1 = w;
                entry.2 = mid;
            }
            return false;
        }
    }
    list.push((to, w, mid));
    true
}

/// Witness-searches the contraction of `v` and records every shortcut it
/// would need into `shortcuts` (cleared first). Returns the shortcut count.
///
/// `fwd` is the current overlay adjacency (uncontracted vertices only);
/// `in_arcs` / `out_arcs` are `v`'s current incoming and outgoing arcs.
fn plan_shortcuts(
    fwd: &[Vec<Arc>],
    v: u32,
    in_arcs: &[Arc],
    out_arcs: &[Arc],
    settle_limit: usize,
    shortcuts: &mut Vec<(u32, u32, f64)>,
) -> usize {
    shortcuts.clear();
    if in_arcs.is_empty() || out_arcs.is_empty() {
        return 0;
    }
    let n = fwd.len();
    for &(u, w1, _) in in_arcs {
        // Distance cap: no witness longer than the longest candidate
        // shortcut from this `u` can matter.
        let mut limit = f64::NEG_INFINITY;
        let mut targets = 0usize;
        for &(x, w2, _) in out_arcs {
            if x != u {
                limit = limit.max(w1 + w2);
                targets += 1;
            }
        }
        if targets == 0 {
            continue;
        }
        with_scratch(|s| {
            s.begin(n);
            s.set(VertexId(u), 0.0);
            s.push(0.0, VertexId(u));
            let mut settled = 0usize;
            let mut remaining = targets;
            while let Some((d, y)) = s.pop() {
                if d > s.get(y) {
                    continue;
                }
                if d > limit {
                    break;
                }
                settled += 1;
                if settled > settle_limit {
                    break;
                }
                if remaining > 0 && out_arcs.iter().any(|&(x, _, _)| x == y.0 && x != u) {
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
                for &(z, w, _) in &fwd[y.index()] {
                    if z == v {
                        continue; // the vertex being contracted is removed
                    }
                    let nd = d + w;
                    if nd < s.get(VertexId(z)) {
                        s.set(VertexId(z), nd);
                        s.push(nd, VertexId(z));
                    }
                }
            }
            for &(x, w2, _) in out_arcs {
                if x == u {
                    continue;
                }
                let combined = w1 + w2;
                // A witness of equal length makes the shortcut redundant;
                // only a strictly longer (or aborted/absent) witness forces
                // insertion.
                if s.get(VertexId(x)) > combined {
                    shortcuts.push((u, x, combined));
                }
            }
        });
    }
    shortcuts.len()
}

/// Contraction priority; lower contracts first. Weights were tuned on the
/// synthetic city graphs (40–160 blocks per side): the level term is what
/// keeps upward search spaces small as the graph grows.
#[allow(clippy::too_many_arguments)]
fn priority(
    fwd: &[Vec<Arc>],
    v: u32,
    in_arcs: &[Arc],
    out_arcs: &[Arc],
    deleted_neighbors: u32,
    level: u32,
    settle_limit: usize,
    shortcuts: &mut Vec<(u32, u32, f64)>,
) -> i64 {
    let added = plan_shortcuts(fwd, v, in_arcs, out_arcs, settle_limit, shortcuts) as i64;
    let removed = (in_arcs.len() + out_arcs.len()) as i64;
    8 * added - 4 * removed + deleted_neighbors as i64 + 8 * level as i64
}

pub(super) fn build(
    net: &RoadNetwork,
    config: &ChConfig,
) -> Result<ContractionHierarchy, ChBuildError> {
    let n = net.num_vertices();

    // Overlay adjacency over uncontracted vertices, parallel arcs deduped to
    // their minimum weight. `fwd[u]` holds outgoing arcs, `bwd[v]` incoming.
    let mut fwd: Vec<Vec<Arc>> = vec![Vec::new(); n];
    let mut bwd: Vec<Vec<Arc>> = vec![Vec::new(); n];
    for e in net.edges() {
        if e.from == e.to {
            continue; // self-loops never lie on a shortest path
        }
        upsert(&mut fwd[e.from.index()], e.to.0, e.weight, NO_MIDDLE);
        upsert(&mut bwd[e.to.index()], e.from.0, e.weight, NO_MIDDLE);
    }
    let original_arcs: usize = fwd.iter().map(Vec::len).sum();
    let shortcut_budget = ((original_arcs as f64) * config.max_shortcut_factor).ceil() as usize;

    let mut contracted = vec![false; n];
    let mut deleted_neighbors = vec![0u32; n];
    let mut level = vec![0u32; n];
    let mut rank = vec![0u32; n];
    // Frozen arcs in *external* ids, translated to internal ids at the end.
    let mut up_ext: Vec<Vec<Arc>> = vec![Vec::new(); n];
    let mut down_ext: Vec<Vec<Arc>> = vec![Vec::new(); n];
    let mut planned: Vec<(u32, u32, f64)> = Vec::new();

    let mut queue: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::with_capacity(n);
    for v in 0..n as u32 {
        let p = priority(
            &fwd,
            v,
            &bwd[v as usize],
            &fwd[v as usize],
            0,
            0,
            config.witness_settle_limit,
            &mut planned,
        );
        queue.push(Reverse((p, v)));
    }

    let mut next_rank = 0u32;
    let mut num_shortcuts = 0usize;
    while let Some(Reverse((_, v))) = queue.pop() {
        let vi = v as usize;
        if contracted[vi] {
            continue;
        }
        // Lazy update: recompute against the current overlay; contract only
        // if the fresh priority still wins, else re-insert.
        let fresh = priority(
            &fwd,
            v,
            &bwd[vi],
            &fwd[vi],
            deleted_neighbors[vi],
            level[vi],
            config.witness_settle_limit,
            &mut planned,
        );
        if let Some(&Reverse((top, _))) = queue.peek() {
            if fresh > top {
                queue.push(Reverse((fresh, v)));
                continue;
            }
        }

        // Contract: freeze v's remaining arcs as its upward/downward search
        // arcs (every remaining neighbour is contracted later, i.e. ranked
        // higher), unlink v from the overlay, then insert the planned
        // shortcuts between the surviving neighbours.
        rank[vi] = next_rank;
        next_rank += 1;
        contracted[vi] = true;
        up_ext[vi] = std::mem::take(&mut fwd[vi]);
        down_ext[vi] = std::mem::take(&mut bwd[vi]);
        for &(x, _, _) in &up_ext[vi] {
            bwd[x as usize].retain(|&(y, _, _)| y != v);
        }
        for &(u, _, _) in &down_ext[vi] {
            fwd[u as usize].retain(|&(y, _, _)| y != v);
        }
        let mut touched: Vec<u32> = up_ext[vi]
            .iter()
            .chain(down_ext[vi].iter())
            .map(|&(x, _, _)| x)
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for x in touched {
            deleted_neighbors[x as usize] += 1;
            level[x as usize] = level[x as usize].max(level[vi] + 1);
        }
        for &(a, b, w) in &planned {
            if upsert(&mut fwd[a as usize], b, w, v) {
                num_shortcuts += 1;
            }
            upsert(&mut bwd[b as usize], a, w, v);
        }
        if num_shortcuts > shortcut_budget {
            return Err(ChBuildError::TooManyShortcuts {
                shortcuts: num_shortcuts,
                original_arcs,
            });
        }
    }
    debug_assert_eq!(next_rank as usize, n);

    // Relabel by rank: internal id r hosts the arcs of the vertex contracted
    // r-th, with targets and middles translated to internal ids too.
    let translate = |ext_adj: Vec<Vec<Arc>>| -> Vec<Vec<Arc>> {
        let mut internal: Vec<Vec<Arc>> = vec![Vec::new(); n];
        for (v, list) in ext_adj.into_iter().enumerate() {
            let r = rank[v] as usize;
            internal[r] = list
                .into_iter()
                .map(|(to, w, mid)| {
                    let mid = if mid == NO_MIDDLE {
                        NO_MIDDLE
                    } else {
                        rank[mid as usize]
                    };
                    (rank[to as usize], w, mid)
                })
                .collect();
        }
        internal
    };
    let up = SearchGraph::from_adjacency(translate(up_ext));
    let down = SearchGraph::from_adjacency(translate(down_ext));

    Ok(ContractionHierarchy::from_parts(
        rank,
        up,
        down,
        num_shortcuts,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    #[test]
    fn upsert_keeps_minimum_weight_and_its_middle() {
        let mut list = Vec::new();
        assert!(upsert(&mut list, 3, 10.0, 7));
        assert!(!upsert(&mut list, 3, 5.0, 9));
        assert!(!upsert(&mut list, 3, 7.0, 11));
        assert!(upsert(&mut list, 4, 1.0, NO_MIDDLE));
        assert_eq!(list, vec![(3, 5.0, 9), (4, 1.0, NO_MIDDLE)]);
    }

    #[test]
    fn line_graph_needs_no_redundant_shortcuts() {
        // Contracting the middle of a 3-line inserts exactly the two
        // through-shortcuts (one per direction); the endpoints none.
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(200.0, 0.0);
        b.add_bidirectional_edge(v0, v1, 100.0);
        b.add_bidirectional_edge(v1, v2, 100.0);
        let net = b.build().unwrap();
        let ch = build(&net, &ChConfig::default()).unwrap();
        // Only the middle vertex can force shortcuts, and only if it is
        // contracted first.
        assert!(ch.num_shortcuts() <= 2);
        assert_eq!(ch.distance(v0, v2), 200.0);
    }

    #[test]
    fn triangle_with_witness_path_adds_no_shortcut() {
        // dist(a, c) via b is 2; the direct arc a→c of weight 2 is an equal
        // witness, so contracting b must not insert a shortcut.
        let mut b = RoadNetworkBuilder::new();
        let va = b.add_vertex(0.0, 0.0);
        let vb = b.add_vertex(50.0, 50.0);
        let vc = b.add_vertex(100.0, 0.0);
        b.add_bidirectional_edge(va, vb, 1.0);
        b.add_bidirectional_edge(vb, vc, 1.0);
        b.add_bidirectional_edge(va, vc, 2.0);
        let net = b.build().unwrap();
        let ch = build(&net, &ChConfig::default()).unwrap();
        assert_eq!(ch.num_shortcuts(), 0);
        assert_eq!(ch.distance(va, vc), 2.0);
    }
}
