//! Contraction-hierarchy construction: node ordering and witness-search
//! contraction.
//!
//! Vertices are contracted in ascending importance, where importance is the
//! classic *edge difference* heuristic (shortcuts a contraction would insert
//! minus arcs it removes) combined with a *deleted neighbours* term that
//! spreads contraction evenly across the network and a *level* term that
//! keeps the hierarchy shallow (a vertex whose neighbours are already high
//! in the hierarchy is pushed later, which empirically shrinks the upward
//! search spaces by ~2x on city lattices versus plain edge difference).
//! Priorities go stale as neighbours are contracted, so the queue is
//! maintained **lazily**: when a vertex is popped its priority is
//! recomputed, and it is only contracted if it still beats the next-best
//! entry — otherwise it is re-inserted with the fresh value (Geisberger et
//! al.'s lazy-update scheme).
//!
//! Contracting `v` must preserve all shortest paths that ran through `v`:
//! for every in-arc `u → v` (weight `w₁`) and out-arc `v → x` (weight `w₂`)
//! a **witness search** — a bounded Dijkstra from `u` in the current overlay
//! graph with `v` removed — checks whether some other path of length at most
//! `w₁ + w₂` already connects `u` to `x`. Only when no witness exists is the
//! shortcut `u → x` with weight `w₁ + w₂` inserted (remembering `v` as its
//! *middle* vertex so queries can unpack it). Witness searches are capped
//! ([`ChConfig::witness_settle_limit`]); an aborted witness search
//! conservatively inserts the shortcut, which can only cost memory, never
//! correctness.
//!
//! The final search graphs are **relabelled by rank**: internal vertex `r`
//! is the vertex contracted `r`-th. Upward searches then walk toward high
//! internal ids, concentrating the hot set of every query in the same
//! high-rank array suffix.
//!
//! # Parallel construction (`threads >= 2`)
//!
//! With more than one worker the lazy queue is replaced by **independent-set
//! rounds**: each round (1) refreshes stale priorities in parallel,
//! (2) selects every remaining vertex that is a strict `(priority, id)`
//! minimum within its 2-hop neighbourhood — a set that is independent *and*
//! 2-hop independent by construction — (3) plans all selected contractions
//! concurrently with read-only witness searches, and (4) applies the round
//! sequentially in ascending vertex id: freeze arcs, assign ranks, unlink,
//! insert the planned shortcuts, check the budget.
//!
//! Two properties make the concurrent witness searches sound. First, a
//! round's witness searches exclude **every** selected vertex, not just the
//! one being contracted, so any witness found consists solely of vertices
//! (and arcs) that survive the whole round — it cannot be invalidated by a
//! sibling contraction. Second, an *extra* shortcut is always safe: its
//! weight is the length of a real path, so it can never shorten a distance,
//! only spend memory; omission is the only dangerous direction, and a
//! shortcut is only omitted when a round-surviving witness exists. 2-hop
//! independence additionally means no two selected vertices share a
//! neighbour, so the planned shortcut sets are endpoint-disjoint and each
//! frozen arc list is exactly what the planning phase saw.
//!
//! The rounds are deterministic: selection depends only on priorities and
//! vertex ids, never on thread scheduling, so every `threads >= 2` produces
//! the identical hierarchy. `threads == 1` takes the historical sequential
//! path, whose lazy-queue tie-breaks differ — both orders satisfy the same
//! bit-identical-to-Dijkstra contract (pinned by proptest).

use super::{ChBuildError, ChConfig, ContractionHierarchy, SearchGraph, NO_MIDDLE};
use crate::graph::RoadNetwork;
use crate::scratch::with_scratch;
use crate::types::VertexId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Overlay arc: `(other endpoint, weight, middle vertex or NO_MIDDLE)`.
type Arc = (u32, f64, u32);

/// Inserts or min-updates the arc `list ∋ (to, w, mid)`; returns `true` when
/// the arc is new.
fn upsert(list: &mut Vec<Arc>, to: u32, w: f64, mid: u32) -> bool {
    for entry in list.iter_mut() {
        if entry.0 == to {
            if w < entry.1 {
                entry.1 = w;
                entry.2 = mid;
            }
            return false;
        }
    }
    list.push((to, w, mid));
    true
}

/// Witness-searches the contraction of `v` and records every shortcut it
/// would need into `shortcuts` (cleared first). Returns the shortcut count.
///
/// `fwd` is the current overlay adjacency (uncontracted vertices only);
/// `in_arcs` / `out_arcs` are `v`'s current incoming and outgoing arcs.
/// `banned`, when present, removes further vertices from the witness
/// searches — the parallel build passes the whole round's selected set so a
/// found witness survives every contraction of the round (`banned[v]` is
/// expected to be true then; `v` is always excluded regardless).
fn plan_shortcuts(
    fwd: &[Vec<Arc>],
    v: u32,
    in_arcs: &[Arc],
    out_arcs: &[Arc],
    settle_limit: usize,
    banned: Option<&[bool]>,
    shortcuts: &mut Vec<(u32, u32, f64)>,
) -> usize {
    shortcuts.clear();
    if in_arcs.is_empty() || out_arcs.is_empty() {
        return 0;
    }
    let n = fwd.len();
    for &(u, w1, _) in in_arcs {
        // Distance cap: no witness longer than the longest candidate
        // shortcut from this `u` can matter.
        let mut limit = f64::NEG_INFINITY;
        let mut targets = 0usize;
        for &(x, w2, _) in out_arcs {
            if x != u {
                limit = limit.max(w1 + w2);
                targets += 1;
            }
        }
        if targets == 0 {
            continue;
        }
        with_scratch(|s| {
            s.begin(n);
            s.set(VertexId(u), 0.0);
            s.push(0.0, VertexId(u));
            let mut settled = 0usize;
            let mut remaining = targets;
            while let Some((d, y)) = s.pop() {
                if d > s.get(y) {
                    continue;
                }
                if d > limit {
                    break;
                }
                settled += 1;
                if settled > settle_limit {
                    break;
                }
                if remaining > 0 && out_arcs.iter().any(|&(x, _, _)| x == y.0 && x != u) {
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
                for &(z, w, _) in &fwd[y.index()] {
                    if z == v || banned.is_some_and(|b| b[z as usize]) {
                        continue; // contracted-this-round vertices are removed
                    }
                    let nd = d + w;
                    if nd < s.get(VertexId(z)) {
                        s.set(VertexId(z), nd);
                        s.push(nd, VertexId(z));
                    }
                }
            }
            for &(x, w2, _) in out_arcs {
                if x == u {
                    continue;
                }
                let combined = w1 + w2;
                // A witness of equal length makes the shortcut redundant;
                // only a strictly longer (or aborted/absent) witness forces
                // insertion.
                if s.get(VertexId(x)) > combined {
                    shortcuts.push((u, x, combined));
                }
            }
        });
    }
    shortcuts.len()
}

/// Contraction priority; lower contracts first. Weights were tuned on the
/// synthetic city graphs (40–160 blocks per side): the level term is what
/// keeps upward search spaces small as the graph grows.
#[allow(clippy::too_many_arguments)]
fn priority(
    fwd: &[Vec<Arc>],
    v: u32,
    in_arcs: &[Arc],
    out_arcs: &[Arc],
    deleted_neighbors: u32,
    level: u32,
    settle_limit: usize,
    shortcuts: &mut Vec<(u32, u32, f64)>,
) -> i64 {
    let added = plan_shortcuts(fwd, v, in_arcs, out_arcs, settle_limit, None, shortcuts) as i64;
    let removed = (in_arcs.len() + out_arcs.len()) as i64;
    8 * added - 4 * removed + deleted_neighbors as i64 + 8 * level as i64
}

pub(super) fn build(
    net: &RoadNetwork,
    config: &ChConfig,
    threads: usize,
) -> Result<ContractionHierarchy, ChBuildError> {
    if threads >= 2 {
        build_parallel(net, config, threads)
    } else {
        build_sequential(net, config)
    }
}

fn build_sequential(
    net: &RoadNetwork,
    config: &ChConfig,
) -> Result<ContractionHierarchy, ChBuildError> {
    let n = net.num_vertices();

    // Overlay adjacency over uncontracted vertices, parallel arcs deduped to
    // their minimum weight. `fwd[u]` holds outgoing arcs, `bwd[v]` incoming.
    let mut fwd: Vec<Vec<Arc>> = vec![Vec::new(); n];
    let mut bwd: Vec<Vec<Arc>> = vec![Vec::new(); n];
    for e in net.edges() {
        if e.from == e.to {
            continue; // self-loops never lie on a shortest path
        }
        upsert(&mut fwd[e.from.index()], e.to.0, e.weight, NO_MIDDLE);
        upsert(&mut bwd[e.to.index()], e.from.0, e.weight, NO_MIDDLE);
    }
    let original_arcs: usize = fwd.iter().map(Vec::len).sum();
    let shortcut_budget = ((original_arcs as f64) * config.max_shortcut_factor).ceil() as usize;

    let mut contracted = vec![false; n];
    let mut deleted_neighbors = vec![0u32; n];
    let mut level = vec![0u32; n];
    let mut rank = vec![0u32; n];
    // Frozen arcs in *external* ids, translated to internal ids at the end.
    let mut up_ext: Vec<Vec<Arc>> = vec![Vec::new(); n];
    let mut down_ext: Vec<Vec<Arc>> = vec![Vec::new(); n];
    let mut planned: Vec<(u32, u32, f64)> = Vec::new();

    let mut queue: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::with_capacity(n);
    for v in 0..n as u32 {
        let p = priority(
            &fwd,
            v,
            &bwd[v as usize],
            &fwd[v as usize],
            0,
            0,
            config.witness_settle_limit,
            &mut planned,
        );
        queue.push(Reverse((p, v)));
    }

    let mut next_rank = 0u32;
    let mut num_shortcuts = 0usize;
    while let Some(Reverse((_, v))) = queue.pop() {
        let vi = v as usize;
        if contracted[vi] {
            continue;
        }
        // Lazy update: recompute against the current overlay; contract only
        // if the fresh priority still wins, else re-insert.
        let fresh = priority(
            &fwd,
            v,
            &bwd[vi],
            &fwd[vi],
            deleted_neighbors[vi],
            level[vi],
            config.witness_settle_limit,
            &mut planned,
        );
        if let Some(&Reverse((top, _))) = queue.peek() {
            if fresh > top {
                queue.push(Reverse((fresh, v)));
                continue;
            }
        }

        // Contract: freeze v's remaining arcs as its upward/downward search
        // arcs (every remaining neighbour is contracted later, i.e. ranked
        // higher), unlink v from the overlay, then insert the planned
        // shortcuts between the surviving neighbours.
        rank[vi] = next_rank;
        next_rank += 1;
        contracted[vi] = true;
        up_ext[vi] = std::mem::take(&mut fwd[vi]);
        down_ext[vi] = std::mem::take(&mut bwd[vi]);
        for &(x, _, _) in &up_ext[vi] {
            bwd[x as usize].retain(|&(y, _, _)| y != v);
        }
        for &(u, _, _) in &down_ext[vi] {
            fwd[u as usize].retain(|&(y, _, _)| y != v);
        }
        let mut touched: Vec<u32> = up_ext[vi]
            .iter()
            .chain(down_ext[vi].iter())
            .map(|&(x, _, _)| x)
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for x in touched {
            deleted_neighbors[x as usize] += 1;
            level[x as usize] = level[x as usize].max(level[vi] + 1);
        }
        for &(a, b, w) in &planned {
            if upsert(&mut fwd[a as usize], b, w, v) {
                num_shortcuts += 1;
            }
            upsert(&mut bwd[b as usize], a, w, v);
        }
        if num_shortcuts > shortcut_budget {
            return Err(ChBuildError::TooManyShortcuts {
                shortcuts: num_shortcuts,
                original_arcs,
            });
        }
    }
    debug_assert_eq!(next_rank as usize, n);
    Ok(finish(rank, up_ext, down_ext, num_shortcuts))
}

/// Relabels the frozen external-id adjacency by rank and assembles the
/// hierarchy: internal id `r` hosts the arcs of the vertex contracted
/// `r`-th, with targets and middles translated to internal ids too.
fn finish(
    rank: Vec<u32>,
    up_ext: Vec<Vec<Arc>>,
    down_ext: Vec<Vec<Arc>>,
    num_shortcuts: usize,
) -> ContractionHierarchy {
    let n = rank.len();
    let translate = |ext_adj: Vec<Vec<Arc>>| -> Vec<Vec<Arc>> {
        let mut internal: Vec<Vec<Arc>> = vec![Vec::new(); n];
        for (v, list) in ext_adj.into_iter().enumerate() {
            let r = rank[v] as usize;
            internal[r] = list
                .into_iter()
                .map(|(to, w, mid)| {
                    let mid = if mid == NO_MIDDLE {
                        NO_MIDDLE
                    } else {
                        rank[mid as usize]
                    };
                    (rank[to as usize], w, mid)
                })
                .collect();
        }
        internal
    };
    let up = SearchGraph::from_adjacency(translate(up_ext));
    let down = SearchGraph::from_adjacency(translate(down_ext));
    ContractionHierarchy::from_parts(rank, up, down, num_shortcuts)
}

/// Maps `f` over `items` in roughly equal chunks on `threads` scoped
/// workers, returning per-chunk results in input order. Chunk boundaries
/// never affect the result for per-item-pure `f`, so outputs are identical
/// for every worker count.
pub(super) fn par_map_chunks<'a, T, R, F>(items: &'a [T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    let chunk = items.len().div_ceil(threads).max(1);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || f(c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("preprocessing worker panicked"))
            .collect()
    })
}

/// Is `v` a strict `(priority, id)` minimum within its 2-hop neighbourhood
/// of the overlay? The set of all such vertices is 2-hop independent (two
/// vertices within 2 hops compare against each other, and the shared key
/// order is total), and it always contains the global minimum, so every
/// round makes progress.
fn is_local_minimum(v: u32, fwd: &[Vec<Arc>], bwd: &[Vec<Arc>], priorities: &[i64]) -> bool {
    let key = |x: u32| (priorities[x as usize], x);
    let own = key(v);
    let beaten_via = |w: u32| -> bool {
        if key(w) < own {
            return true;
        }
        fwd[w as usize]
            .iter()
            .chain(bwd[w as usize].iter())
            .any(|&(z, _, _)| z != v && key(z) < own)
    };
    !fwd[v as usize]
        .iter()
        .chain(bwd[v as usize].iter())
        .any(|&(w, _, _)| beaten_via(w))
}

/// Independent-set parallel contraction; see the module docs for the round
/// structure and why concurrent witness searches stay correct.
fn build_parallel(
    net: &RoadNetwork,
    config: &ChConfig,
    threads: usize,
) -> Result<ContractionHierarchy, ChBuildError> {
    let n = net.num_vertices();

    let mut fwd: Vec<Vec<Arc>> = vec![Vec::new(); n];
    let mut bwd: Vec<Vec<Arc>> = vec![Vec::new(); n];
    for e in net.edges() {
        if e.from == e.to {
            continue; // self-loops never lie on a shortest path
        }
        upsert(&mut fwd[e.from.index()], e.to.0, e.weight, NO_MIDDLE);
        upsert(&mut bwd[e.to.index()], e.from.0, e.weight, NO_MIDDLE);
    }
    let original_arcs: usize = fwd.iter().map(Vec::len).sum();
    let shortcut_budget = ((original_arcs as f64) * config.max_shortcut_factor).ceil() as usize;

    let mut deleted_neighbors = vec![0u32; n];
    let mut level = vec![0u32; n];
    let mut rank = vec![0u32; n];
    let mut up_ext: Vec<Vec<Arc>> = vec![Vec::new(); n];
    let mut down_ext: Vec<Vec<Arc>> = vec![Vec::new(); n];

    let mut priorities = vec![0i64; n];
    // Priorities are refreshed when a neighbour was contracted last round —
    // the parallel analogue of the sequential lazy-update (which also lets
    // 2-hop staleness linger until relevant). Selection only needs a
    // consistent total order, not fresh values, for correctness.
    let mut dirty = vec![true; n];
    let mut banned = vec![false; n];
    let mut remaining: Vec<u32> = (0..n as u32).collect();
    let mut next_rank = 0u32;
    let mut num_shortcuts = 0usize;

    while !remaining.is_empty() {
        // Round phase 1: refresh stale priorities in parallel.
        let stale: Vec<u32> = remaining
            .iter()
            .copied()
            .filter(|&v| dirty[v as usize])
            .collect();
        if !stale.is_empty() {
            let fresh = par_map_chunks(&stale, threads, |chunk| {
                let mut planned = Vec::new();
                chunk
                    .iter()
                    .map(|&v| {
                        let vi = v as usize;
                        priority(
                            &fwd,
                            v,
                            &bwd[vi],
                            &fwd[vi],
                            deleted_neighbors[vi],
                            level[vi],
                            config.witness_settle_limit,
                            &mut planned,
                        )
                    })
                    .collect::<Vec<i64>>()
            });
            for (&v, p) in stale.iter().zip(fresh.into_iter().flatten()) {
                priorities[v as usize] = p;
                dirty[v as usize] = false;
            }
        }

        // Round phase 2: select the 2-hop independent set of local minima.
        let selected: Vec<u32> = par_map_chunks(&remaining, threads, |chunk| {
            chunk
                .iter()
                .copied()
                .filter(|&v| is_local_minimum(v, &fwd, &bwd, &priorities))
                .collect::<Vec<u32>>()
        })
        .concat();
        debug_assert!(!selected.is_empty(), "global minimum is always selected");

        // Round phase 3: plan every selected contraction concurrently.
        // Witness searches exclude the whole selected set (`banned`), so the
        // witnesses they find survive the round's sibling contractions.
        for &v in &selected {
            banned[v as usize] = true;
        }
        let plans: Vec<Vec<(u32, u32, f64)>> = par_map_chunks(&selected, threads, |chunk| {
            let mut out = Vec::with_capacity(chunk.len());
            let mut planned = Vec::new();
            for &v in chunk {
                let vi = v as usize;
                plan_shortcuts(
                    &fwd,
                    v,
                    &bwd[vi],
                    &fwd[vi],
                    config.witness_settle_limit,
                    Some(&banned),
                    &mut planned,
                );
                out.push(std::mem::take(&mut planned));
            }
            out
        })
        .concat();
        for &v in &selected {
            banned[v as usize] = false;
        }

        // Round phase 4: apply sequentially in ascending vertex id (the
        // selection already is — `remaining` stays sorted). 2-hop
        // independence means no frozen list or planned shortcut is
        // disturbed by a sibling's application, so the batch equals any
        // serialisation of the round.
        for (&v, planned) in selected.iter().zip(&plans) {
            let vi = v as usize;
            rank[vi] = next_rank;
            next_rank += 1;
            up_ext[vi] = std::mem::take(&mut fwd[vi]);
            down_ext[vi] = std::mem::take(&mut bwd[vi]);
            for &(x, _, _) in &up_ext[vi] {
                bwd[x as usize].retain(|&(y, _, _)| y != v);
            }
            for &(u, _, _) in &down_ext[vi] {
                fwd[u as usize].retain(|&(y, _, _)| y != v);
            }
            let mut touched: Vec<u32> = up_ext[vi]
                .iter()
                .chain(down_ext[vi].iter())
                .map(|&(x, _, _)| x)
                .collect();
            touched.sort_unstable();
            touched.dedup();
            for x in touched {
                deleted_neighbors[x as usize] += 1;
                level[x as usize] = level[x as usize].max(level[vi] + 1);
                dirty[x as usize] = true;
            }
            for &(a, b, w) in planned {
                if upsert(&mut fwd[a as usize], b, w, v) {
                    num_shortcuts += 1;
                }
                upsert(&mut bwd[b as usize], a, w, v);
            }
            if num_shortcuts > shortcut_budget {
                return Err(ChBuildError::TooManyShortcuts {
                    shortcuts: num_shortcuts,
                    original_arcs,
                });
            }
        }

        let mut i = 0usize;
        remaining.retain(|&v| {
            let keep = selected.get(i) != Some(&v);
            if !keep {
                i += 1;
            }
            keep
        });
    }
    debug_assert_eq!(next_rank as usize, n);
    Ok(finish(rank, up_ext, down_ext, num_shortcuts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    #[test]
    fn upsert_keeps_minimum_weight_and_its_middle() {
        let mut list = Vec::new();
        assert!(upsert(&mut list, 3, 10.0, 7));
        assert!(!upsert(&mut list, 3, 5.0, 9));
        assert!(!upsert(&mut list, 3, 7.0, 11));
        assert!(upsert(&mut list, 4, 1.0, NO_MIDDLE));
        assert_eq!(list, vec![(3, 5.0, 9), (4, 1.0, NO_MIDDLE)]);
    }

    #[test]
    fn line_graph_needs_no_redundant_shortcuts() {
        // Contracting the middle of a 3-line inserts exactly the two
        // through-shortcuts (one per direction); the endpoints none.
        let mut b = RoadNetworkBuilder::new();
        let v0 = b.add_vertex(0.0, 0.0);
        let v1 = b.add_vertex(100.0, 0.0);
        let v2 = b.add_vertex(200.0, 0.0);
        b.add_bidirectional_edge(v0, v1, 100.0);
        b.add_bidirectional_edge(v1, v2, 100.0);
        let net = b.build().unwrap();
        for threads in [1, 2, 4] {
            let ch = build(&net, &ChConfig::default(), threads).unwrap();
            // Only the middle vertex can force shortcuts, and only if it is
            // contracted first.
            assert!(ch.num_shortcuts() <= 2);
            assert_eq!(ch.distance(v0, v2), 200.0);
        }
    }

    #[test]
    fn triangle_with_witness_path_adds_no_shortcut() {
        // dist(a, c) via b is 2; the direct arc a→c of weight 2 is an equal
        // witness, so contracting b must not insert a shortcut.
        let mut b = RoadNetworkBuilder::new();
        let va = b.add_vertex(0.0, 0.0);
        let vb = b.add_vertex(50.0, 50.0);
        let vc = b.add_vertex(100.0, 0.0);
        b.add_bidirectional_edge(va, vb, 1.0);
        b.add_bidirectional_edge(vb, vc, 1.0);
        b.add_bidirectional_edge(va, vc, 2.0);
        let net = b.build().unwrap();
        for threads in [1, 2, 4] {
            let ch = build(&net, &ChConfig::default(), threads).unwrap();
            assert_eq!(ch.num_shortcuts(), 0, "threads={threads}");
            assert_eq!(ch.distance(va, vc), 2.0);
        }
    }

    #[test]
    fn parallel_rounds_are_thread_count_invariant() {
        // Every worker count >= 2 runs the same deterministic round
        // structure, so the hierarchies must be identical — ranks, shortcut
        // counts, and arcs.
        let mut b = RoadNetworkBuilder::new();
        let mut ids = Vec::new();
        for y in 0..7 {
            for x in 0..7 {
                ids.push(b.add_vertex(x as f64 * 90.0, y as f64 * 110.0));
            }
        }
        for y in 0..7usize {
            for x in 0..7usize {
                let u = ids[y * 7 + x];
                if x + 1 < 7 {
                    b.add_bidirectional_edge(u, ids[y * 7 + x + 1], 80.0 + (x * y) as f64);
                }
                if y + 1 < 7 {
                    b.add_bidirectional_edge(u, ids[(y + 1) * 7 + x], 95.0 + (x + y) as f64);
                }
            }
        }
        let net = b.build().unwrap();
        let reference = build(&net, &ChConfig::default(), 2).unwrap();
        for threads in [3, 5, 8, 64] {
            let ch = build(&net, &ChConfig::default(), threads).unwrap();
            assert_eq!(ch.num_shortcuts(), reference.num_shortcuts());
            for &v in &ids {
                assert_eq!(ch.rank(v), reference.rank(v), "threads={threads}, {v}");
            }
        }
    }
}
