//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a seeded, process-global schedule of injected
//! failures at **named sites** threaded through the whole workspace:
//! error-class sites ([`ORACLE_BUILD`], [`CCH_CUSTOMIZE`],
//! [`JOURNAL_WRITE`]) simulate transient failures that the call site is
//! expected to absorb with a single retry, while panic-class sites
//! ([`POOL_JOB`], [`MID_COMMIT`], [`POST_APPEND`]) abort the operation
//! mid-flight so crash-recovery tests can kill a service at an exact,
//! reproducible point.
//!
//! Two arming paths:
//!
//! * **Programmatic** — [`arm`] / [`disarm`], used by the crash-recovery
//!   proptests to place one panic at an exact hit count
//!   ([`FaultPlan::panic_once`]). Panics are only ever injected through
//!   this path.
//! * **Environment** — `PTRIDER_CHAOS=<seed>` arms a
//!   [`FaultPlan::transient`] plan for the whole process (read once).
//!   Transient plans fire only error-class sites, and the firing rule
//!   guarantees two consecutive hits of one site never both fail — so a
//!   caller that retries once always succeeds and the full test suite
//!   stays green with chaos armed. This is the CI chaos matrix mode.
//!
//! Schedules are pure functions of `(seed, site, hit index)`: the same
//! seed over the same operation sequence injects the same faults, which
//! is what makes a chaos run replayable.
//!
//! Sites are queried through two free functions: [`fail_point`] returns
//! `true` when the current hit of an error-class site should be treated
//! as failed (the caller then retries once), and [`panic_point`] panics
//! when a programmatically armed plan scheduled this exact hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Panic site: inside a worker-pool job, before the job's own work runs.
pub const POOL_JOB: &str = "pool-job";
/// Panic site: inside `commit_choice`, after the vehicle accepted the
/// insertion but before the spatial index was updated — the world is
/// mid-mutation and the write guard poisons on unwind.
pub const MID_COMMIT: &str = "mid-commit";
/// Panic site: after the journal record was appended (durable) but before
/// the caller acknowledged the operation to the rider.
pub const POST_APPEND: &str = "post-append";
/// Error site: a CCH customization pass over a traffic epoch's weights.
pub const CCH_CUSTOMIZE: &str = "cch-customize";
/// Error site: contraction-hierarchy construction at oracle build time.
pub const ORACLE_BUILD: &str = "oracle-build";
/// Error site: a journal append's write/flush to the WAL file.
pub const JOURNAL_WRITE: &str = "journal-write";

/// All error-class sites (fire under [`FaultPlan::transient`] plans).
pub const ERROR_SITES: &[&str] = &[ORACLE_BUILD, CCH_CUSTOMIZE, JOURNAL_WRITE];
/// All panic-class sites (fire only under [`FaultPlan::panic_once`] plans).
pub const PANIC_SITES: &[&str] = &[POOL_JOB, MID_COMMIT, POST_APPEND];

/// FNV-1a over a byte string; the site-name half of the schedule hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates `seed ^ site` into period/offset bits.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What a plan injects.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Mode {
    /// Periodic transient errors at error-class sites only; never panics.
    Transient,
    /// Exactly one panic at `site`, on its `at`-th hit (0-based); error
    /// sites never fire. Used by crash-recovery tests.
    PanicOnce {
        /// Site name the panic is scheduled at.
        site: &'static str,
        /// 0-based hit index of that site the panic fires on.
        at: u64,
    },
}

/// A seeded, deterministic schedule of injected faults.
///
/// The plan is immutable once armed; per-site hit counters live inside it
/// so re-arming (or disarming and re-arming the same plan) restarts the
/// schedule from hit zero.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    mode: Mode,
    hits: Mutex<HashMap<&'static str, u64>>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// A plan that injects *transient* errors at error-class sites: site
    /// hit `n` fails when `n ≡ offset (mod period)` with a per-site
    /// `period ∈ 3..=6` derived from the seed. Because the period is at
    /// least 3, two consecutive hits never both fail — a caller that
    /// retries a failed attempt once always succeeds, and the suite stays
    /// green with the plan armed. Panic-class sites never fire.
    pub fn transient(seed: u64) -> Self {
        FaultPlan {
            seed,
            mode: Mode::Transient,
            hits: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// A plan that panics exactly once: on the `at`-th hit (0-based) of
    /// `site`, which must be one of [`PANIC_SITES`]. Error-class sites
    /// never fire under this mode, so the run is byte-identical to an
    /// unfaulted run right up to the scheduled panic.
    pub fn panic_once(site: &'static str, at: u64) -> Self {
        assert!(
            PANIC_SITES.contains(&site),
            "panic_once site must be one of {PANIC_SITES:?}, got {site:?}"
        );
        FaultPlan {
            seed: 0,
            mode: Mode::PanicOnce { site, at },
            hits: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Total faults (errors plus panics) injected by this plan so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Next 0-based hit index for `site` (and advances the counter).
    fn take_hit(&self, site: &'static str) -> u64 {
        let mut hits = self.hits.lock().unwrap_or_else(|p| p.into_inner());
        let n = hits.entry(site).or_insert(0);
        let hit = *n;
        *n += 1;
        hit
    }

    /// Whether error-class `site` fails on its `hit`-th call.
    fn error_fires(&self, site: &'static str, hit: u64) -> bool {
        if self.mode != Mode::Transient {
            return false;
        }
        let h = mix(self.seed ^ fnv1a(site.as_bytes()));
        let period = 3 + (h % 4); // 3..=6: consecutive hits never both fail
        let offset = (h >> 32) % period;
        hit % period == offset
    }
}

/// The programmatically armed plan (None = fall through to the env plan).
fn armed_slot() -> &'static RwLock<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// The `PTRIDER_CHAOS=<seed>` environment plan, read once per process.
/// Any non-empty value arms a transient plan; a decimal value is the seed
/// directly, anything else is hashed into one.
fn env_plan() -> Option<&'static Arc<FaultPlan>> {
    static PLAN: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let raw = std::env::var("PTRIDER_CHAOS").ok()?;
        if raw.is_empty() {
            return None;
        }
        let seed = raw.parse::<u64>().unwrap_or_else(|_| fnv1a(raw.as_bytes()));
        Some(Arc::new(FaultPlan::transient(seed)))
    })
    .as_ref()
}

/// Arms `plan` process-wide, replacing any previously armed plan. The
/// environment plan (if any) is shadowed until [`disarm`].
pub fn arm(plan: FaultPlan) {
    *armed_slot().write().unwrap_or_else(|p| p.into_inner()) = Some(Arc::new(plan));
}

/// Disarms the programmatically armed plan; the `PTRIDER_CHAOS`
/// environment plan (if any) becomes visible again.
pub fn disarm() {
    *armed_slot().write().unwrap_or_else(|p| p.into_inner()) = None;
}

/// The plan currently in effect: the programmatically armed one, else the
/// environment one, else `None`.
pub fn current() -> Option<Arc<FaultPlan>> {
    let armed = armed_slot()
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    armed.or_else(|| env_plan().cloned())
}

/// Total faults injected by the plan currently in effect (0 when none).
pub fn injected_faults() -> u64 {
    current().map(|p| p.injected()).unwrap_or(0)
}

/// Error-class fault query: returns `true` when the current hit of `site`
/// should be treated as a transient failure. The caller is expected to
/// retry the operation exactly once; the schedule guarantees the retry's
/// hit does not fail again.
pub fn fail_point(site: &'static str) -> bool {
    debug_assert!(ERROR_SITES.contains(&site), "not an error site: {site}");
    let Some(plan) = current() else { return false };
    let hit = plan.take_hit(site);
    if plan.error_fires(site, hit) {
        plan.injected.fetch_add(1, Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// Panic-class fault query: panics when the programmatically armed plan
/// scheduled this exact hit of `site`; otherwise a cheap no-op. Transient
/// (environment) plans never panic.
pub fn panic_point(site: &'static str) {
    debug_assert!(PANIC_SITES.contains(&site), "not a panic site: {site}");
    let Some(plan) = current() else { return };
    if let Mode::PanicOnce { site: s, at } = plan.mode {
        if s == site {
            let hit = plan.take_hit(site);
            if hit == at {
                plan.injected.fetch_add(1, Ordering::Relaxed);
                panic!("injected fault: {site} (hit {hit})");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_schedule_is_deterministic_and_never_consecutive() {
        for seed in [0u64, 1, 7, 20090529] {
            let plan = FaultPlan::transient(seed);
            for &site in ERROR_SITES {
                let fires: Vec<bool> = (0..64).map(|n| plan.error_fires(site, n)).collect();
                let again: Vec<bool> = (0..64).map(|n| plan.error_fires(site, n)).collect();
                assert_eq!(fires, again, "schedule must be pure");
                assert!(fires.iter().any(|&f| f), "site {site} must fire sometimes");
                for w in fires.windows(2) {
                    assert!(!(w[0] && w[1]), "consecutive hits fired at {site}");
                }
            }
        }
    }

    #[test]
    fn transient_plans_fail_and_then_succeed_on_retry() {
        // Exercised on a local (unarmed) plan so concurrently running tests
        // cannot interleave hits of the shared per-site counters.
        let plan = FaultPlan::transient(42);
        let mut failures = 0usize;
        for _ in 0..32 {
            let hit = plan.take_hit(JOURNAL_WRITE);
            if plan.error_fires(JOURNAL_WRITE, hit) {
                failures += 1;
                let retry = plan.take_hit(JOURNAL_WRITE);
                assert!(!plan.error_fires(JOURNAL_WRITE, retry), "retry must pass");
            }
        }
        assert!(failures > 0, "a 32-hit run must inject at least once");
    }

    #[test]
    fn panic_once_fires_exactly_at_the_scheduled_hit() {
        let plan = FaultPlan::panic_once(MID_COMMIT, 2);
        // Error sites never fire under panic-once plans.
        assert!(!plan.error_fires(JOURNAL_WRITE, 0));
        arm(plan);
        panic_point(MID_COMMIT); // hit 0
        panic_point(MID_COMMIT); // hit 1
        let r = std::panic::catch_unwind(|| panic_point(MID_COMMIT)); // hit 2
        disarm();
        assert!(r.is_err(), "hit 2 must panic");
    }
}
