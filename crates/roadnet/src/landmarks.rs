//! Landmark (ALT) lower bounds.
//!
//! The grid index of Section 3.2.1 provides the paper's lower bounds; this
//! module adds the classic A*–landmarks–triangle-inequality (ALT) oracle as
//! an optional, tighter complement. A set of landmarks is selected with the
//! farthest-point heuristic; for every landmark `ℓ` the distances `dist(ℓ, v)`
//! are precomputed, and
//!
//! ```text
//! dist(u, v) ≥ max_ℓ |dist(ℓ, u) − dist(ℓ, v)|
//! ```
//!
//! by the triangle inequality (the networks used here are undirected). The
//! engine does not require ALT — matcher correctness only needs *admissible*
//! bounds — but the grid-granularity ablation (E10) uses it as a yardstick
//! for how tight the grid bounds are, and custom deployments can combine
//! both via [`LandmarkIndex::lower_bound`].

use crate::dijkstra;
use crate::graph::RoadNetwork;
use crate::types::{VertexId, INFINITE_DISTANCE};
use serde::{Deserialize, Serialize};

/// Precomputed landmark distance tables.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LandmarkIndex {
    landmarks: Vec<VertexId>,
    /// `dist[i][v]` = shortest-path distance from landmark `i` to vertex `v`.
    dist: Vec<Vec<f64>>,
    /// Whether the network the tables were built on is undirected. On
    /// undirected networks the two-sided bound `|dist(ℓ,u) − dist(ℓ,v)|` is
    /// valid; on directed ones only the one-sided `dist(ℓ,v) − dist(ℓ,u)`
    /// follows from the triangle inequality (forward tables only).
    symmetric: bool,
}

impl LandmarkIndex {
    /// The default seed for farthest-point selection: a maximum-out-degree
    /// vertex (ties broken by lowest id).
    ///
    /// Seeding from a well-connected vertex instead of the arbitrary vertex
    /// 0 matters on disconnected or peripheral inputs: a degree-0 or
    /// cul-de-sac seed reaches little of the network, so the "farthest
    /// reachable vertex" that becomes the first landmark can land in a tiny
    /// component and every subsequent bound degenerates to 0. A hub vertex
    /// sees the largest strongly-reachable region the network has.
    pub fn default_seed(net: &RoadNetwork) -> VertexId {
        net.vertices()
            .max_by_key(|&v| (net.degree(v), std::cmp::Reverse(v.0)))
            .expect("networks have at least one vertex")
    }

    /// Builds an index with `k` landmarks, seeding the farthest-point
    /// heuristic from [`Self::default_seed`] (a max-degree vertex).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn build_auto(net: &RoadNetwork, k: usize) -> Self {
        Self::build(net, k, Self::default_seed(net))
    }

    /// Builds an index with `k` landmarks chosen by the farthest-point
    /// heuristic, starting from `seed_vertex`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `seed_vertex` is not a vertex of the network.
    pub fn build(net: &RoadNetwork, k: usize, seed_vertex: VertexId) -> Self {
        assert!(k > 0, "at least one landmark is required");
        assert!(net.contains(seed_vertex), "seed vertex out of range");

        let mut landmarks = Vec::with_capacity(k);
        let mut dist: Vec<Vec<f64>> = Vec::with_capacity(k);

        // The first landmark is the vertex farthest from the seed (this
        // pushes landmarks to the periphery, which gives tighter bounds than
        // the seed itself).
        let from_seed = dijkstra::single_source(net, seed_vertex);
        let first = farthest(&from_seed).unwrap_or(seed_vertex);
        landmarks.push(first);
        dist.push(dijkstra::single_source(net, first));

        while landmarks.len() < k {
            // Next landmark: vertex maximising the distance to its nearest
            // existing landmark.
            let mut best_v = None;
            let mut best_d = -1.0f64;
            for v in net.vertices() {
                let nearest = dist
                    .iter()
                    .map(|row| row[v.index()])
                    .fold(INFINITE_DISTANCE, f64::min);
                if nearest.is_finite() && nearest > best_d {
                    best_d = nearest;
                    best_v = Some(v);
                }
            }
            let Some(v) = best_v else { break };
            if landmarks.contains(&v) {
                break;
            }
            landmarks.push(v);
            dist.push(dijkstra::single_source(net, v));
        }

        LandmarkIndex {
            landmarks,
            dist,
            symmetric: net.is_undirected(),
        }
    }

    /// The selected landmark vertices.
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// ALT lower bound on `dist(u, v)`, admissible on directed and
    /// undirected networks alike: on undirected networks it is
    /// `max_ℓ |dist(ℓ,u) − dist(ℓ,v)|`; with one-way edges it degrades to
    /// the one-sided `max_ℓ dist(ℓ,v) − dist(ℓ,u)` that forward tables
    /// justify. Returns 0 when either endpoint is unreachable from every
    /// landmark.
    pub fn lower_bound(&self, u: VertexId, v: VertexId) -> f64 {
        let mut best: f64 = 0.0;
        for row in &self.dist {
            let du = row[u.index()];
            let dv = row[v.index()];
            if du.is_finite() && dv.is_finite() {
                let diff = dv - du;
                let bound = if self.symmetric { diff.abs() } else { diff };
                best = best.max(bound);
            }
        }
        best
    }

    /// Approximate memory footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.dist.iter().map(|row| row.len() * 8).sum::<usize>()
            + self.landmarks.len() * std::mem::size_of::<VertexId>()
    }
}

fn farthest(dist: &[f64]) -> Option<VertexId> {
    let mut best = None;
    let mut best_d = -1.0;
    for (i, &d) in dist.iter().enumerate() {
        if d.is_finite() && d > best_d {
            best_d = d;
            best = Some(VertexId(i as u32));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn lattice(side: usize) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let mut ids = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for y in 0..side {
            for x in 0..side {
                ids.push(b.add_vertex(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        for y in 0..side {
            for x in 0..side {
                let u = ids[y * side + x];
                if x + 1 < side {
                    b.add_bidirectional_edge(u, ids[y * side + x + 1], rng.gen_range(90.0..160.0));
                }
                if y + 1 < side {
                    b.add_bidirectional_edge(
                        u,
                        ids[(y + 1) * side + x],
                        rng.gen_range(90.0..160.0),
                    );
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn selects_the_requested_number_of_landmarks() {
        let net = lattice(6);
        let idx = LandmarkIndex::build(&net, 4, VertexId(0));
        assert_eq!(idx.landmarks().len(), 4);
        // Landmarks are distinct.
        let mut ls = idx.landmarks().to_vec();
        ls.sort();
        ls.dedup();
        assert_eq!(ls.len(), 4);
        assert!(idx.approximate_bytes() > 0);
    }

    #[test]
    fn alt_bound_is_admissible_and_often_tight() {
        let net = lattice(7);
        let idx = LandmarkIndex::build(&net, 6, VertexId(0));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut tight = 0usize;
        let n = 200;
        for _ in 0..n {
            let u = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let v = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let exact = dijkstra::distance(&net, u, v).unwrap();
            let lb = idx.lower_bound(u, v);
            assert!(lb <= exact + 1e-9, "ALT bound {lb} exceeds exact {exact}");
            if exact > 0.0 && lb / exact > 0.5 {
                tight += 1;
            }
        }
        // With 6 landmarks on a small lattice, the bound is reasonably tight
        // for the majority of pairs.
        assert!(
            tight > n / 2,
            "only {tight}/{n} pairs had a tight ALT bound"
        );
    }

    #[test]
    fn identical_endpoints_have_zero_bound() {
        let net = lattice(4);
        let idx = LandmarkIndex::build(&net, 2, VertexId(3));
        assert_eq!(idx.lower_bound(VertexId(5), VertexId(5)), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one landmark")]
    fn zero_landmarks_panics() {
        let net = lattice(3);
        let _ = LandmarkIndex::build(&net, 0, VertexId(0));
    }

    #[test]
    fn default_seed_is_a_max_degree_vertex() {
        let net = lattice(5);
        let seed = LandmarkIndex::default_seed(&net);
        let max_deg = net.vertices().map(|v| net.degree(v)).max().unwrap();
        assert_eq!(net.degree(seed), max_deg);
        // Interior lattice vertices have degree 4; corners only 2.
        assert_eq!(max_deg, 4);
    }

    #[test]
    fn auto_seed_recovers_from_a_peripheral_vertex_0() {
        // Vertex 0 sits in a two-vertex component disconnected from the
        // lattice: farthest-point selection seeded at 0 can only place
        // landmarks inside 0's component. `build_auto` seeds from a lattice
        // hub instead, so the bounds on lattice pairs stay useful.
        let mut b = RoadNetworkBuilder::new();
        let isolated = b.add_vertex(-10_000.0, -10_000.0);
        let lonely = b.add_vertex(-10_100.0, -10_000.0);
        b.add_bidirectional_edge(isolated, lonely, 100.0);
        let side = 4usize;
        let mut ids = Vec::new();
        for y in 0..side {
            for x in 0..side {
                ids.push(b.add_vertex(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        for y in 0..side {
            for x in 0..side {
                let u = ids[y * side + x];
                if x + 1 < side {
                    b.add_bidirectional_edge(u, ids[y * side + x + 1], 100.0);
                }
                if y + 1 < side {
                    b.add_bidirectional_edge(u, ids[(y + 1) * side + x], 100.0);
                }
            }
        }
        let net = b.build().unwrap();

        let from_zero = LandmarkIndex::build(&net, 3, VertexId(0));
        let auto = LandmarkIndex::build_auto(&net, 3);
        // Seeded at the isolated pair, every landmark is stuck there and the
        // bound on lattice pairs is zero.
        assert_eq!(from_zero.lower_bound(ids[0], ids[side * side - 1]), 0.0);
        // The auto seed lands in the lattice and produces a useful bound.
        assert!(auto.lower_bound(ids[0], ids[side * side - 1]) > 0.0);
    }
}
