//! Road network substrate for PTRider (VLDB 2018).
//!
//! This crate models the road network `G = (V, E, W)` of Section 2.1 of the
//! paper, provides exact shortest-path engines (Dijkstra, bidirectional
//! Dijkstra, A*, and a contraction hierarchy with bidirectional upward
//! queries and many-to-many bucket queries), the grid partition index of
//! Section 3.2.1 (border vertices, per-vertex border-distance tables, the
//! cell-pair lower-bound matrix and per-cell neighbour lists sorted by lower
//! bound), and a memoising [`DistanceOracle`] that serves exact distances
//! and cheap lower bounds to the matching algorithms in `ptrider-core`
//! through one of two swappable exact backends ([`DistanceBackend`]).
//!
//! The metric is **live**: [`traffic`] overlays epoch-versioned
//! multiplicative edge factors (≥ 1.0 over free flow, so every lower bound
//! stays admissible by construction), [`DistanceOracle::apply_traffic`]
//! swaps the metric and lazily invalidates the epoch-stamped cache, and
//! [`CchTopology`] repairs the contraction hierarchy with a
//! customizable-CH-style weight pass instead of a rebuild.
//!
//! Distances are expressed in metres and converted to travel time with a
//! constant speed (the paper assumes 48 km/h); see [`Speed`].
//!
//! # Quick example
//!
//! ```
//! use ptrider_roadnet::{RoadNetworkBuilder, dijkstra, GridIndex, GridConfig};
//!
//! let mut b = RoadNetworkBuilder::new();
//! let a = b.add_vertex(0.0, 0.0);
//! let c = b.add_vertex(1000.0, 0.0);
//! let d = b.add_vertex(1000.0, 1000.0);
//! b.add_bidirectional_edge(a, c, 1000.0);
//! b.add_bidirectional_edge(c, d, 1000.0);
//! let net = b.build().unwrap();
//!
//! assert_eq!(dijkstra::distance(&net, a, d), Some(2000.0));
//!
//! let grid = GridIndex::build(&net, GridConfig::with_dimensions(2, 2));
//! assert!(grid.lower_bound(a, d) <= 2000.0);
//! ```

#![warn(missing_docs)]

pub mod astar;
pub mod ch;
pub mod dijkstra;
pub mod error;
pub mod fault;
pub mod graph;
pub mod grid;
pub mod landmarks;
pub mod oracle;
pub mod scratch;
pub mod traffic;
pub mod types;

pub use ch::{
    preprocess_threads, CchTopology, ChBuildError, ChConfig, ContractionHierarchy, SeparatorStats,
};
pub use error::RoadNetError;
pub use graph::{Edge, RoadNetwork, RoadNetworkBuilder};
pub use grid::{CellId, GridCell, GridConfig, GridIndex};
pub use landmarks::LandmarkIndex;
pub use oracle::{
    num_cache_shards, DistanceBackend, DistanceOracle, TrafficApplied, DEFAULT_CACHE_CAPACITY,
};
pub use traffic::{TrafficEdge, TrafficModel};
pub use types::{Point, Speed, VertexId, INFINITE_DISTANCE};
