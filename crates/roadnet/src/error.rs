//! Error type for road-network construction and queries.

use crate::types::VertexId;
use std::fmt;

/// Errors produced while building or querying a road network.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadNetError {
    /// An edge references a vertex id that was never added.
    UnknownVertex(VertexId),
    /// An edge has a non-finite or negative weight.
    InvalidWeight {
        /// Source vertex of the offending edge.
        from: VertexId,
        /// Target vertex of the offending edge.
        to: VertexId,
        /// The rejected weight.
        weight: f64,
    },
    /// The network has no vertices.
    EmptyNetwork,
    /// A vertex coordinate is not finite.
    InvalidCoordinate(VertexId),
    /// A replacement metric ([`crate::RoadNetwork::with_metric`]) does not
    /// carry exactly one weight per CSR arc of the network.
    MetricLengthMismatch {
        /// Number of directed arcs in the network.
        expected: usize,
        /// Number of weights supplied.
        got: usize,
    },
}

impl fmt::Display for RoadNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadNetError::UnknownVertex(v) => write!(f, "edge references unknown vertex {v}"),
            RoadNetError::InvalidWeight { from, to, weight } => write!(
                f,
                "edge ({from}, {to}) has invalid weight {weight}; weights must be finite and non-negative"
            ),
            RoadNetError::EmptyNetwork => write!(f, "road network must contain at least one vertex"),
            RoadNetError::InvalidCoordinate(v) => {
                write!(f, "vertex {v} has a non-finite coordinate")
            }
            RoadNetError::MetricLengthMismatch { expected, got } => write!(
                f,
                "replacement metric carries {got} weights for a network of {expected} directed arcs"
            ),
        }
    }
}

impl std::error::Error for RoadNetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RoadNetError::UnknownVertex(VertexId(7));
        assert!(e.to_string().contains("v7"));
        let e = RoadNetError::InvalidWeight {
            from: VertexId(1),
            to: VertexId(2),
            weight: -1.0,
        };
        assert!(e.to_string().contains("-1"));
        assert!(RoadNetError::EmptyNetwork
            .to_string()
            .contains("at least one vertex"));
        assert!(RoadNetError::InvalidCoordinate(VertexId(3))
            .to_string()
            .contains("v3"));
    }
}
