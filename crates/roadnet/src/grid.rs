//! Grid partition index over the road network (Section 3.2.1, Fig. 1).
//!
//! The network's bounding box is divided into a uniform grid. For every
//! cell the index maintains:
//!
//! * the **border vertex list** — endpoints of edges that cross cell
//!   boundaries;
//! * the **vertex list** — member vertices, each with its shortest-path
//!   distance to every border vertex of the cell and the minimum of those
//!   distances (`v.min`);
//! * the **grid cell list** — every other cell sorted in ascending order of
//!   the lower-bound distance (equivalently travel time, speed being
//!   constant);
//! * a **lower-bound matrix** entry for every cell pair, anchored at the
//!   closest pair of border vertices.
//!
//! The empty/non-empty *vehicle* lists the paper also attaches to each cell
//! live in `ptrider-vehicles::index`, keeping this crate independent of the
//! vehicle model.
//!
//! The fundamental guarantee (checked by property tests) is that
//! [`GridIndex::lower_bound`] never exceeds the exact shortest-path
//! distance, so the matching algorithms can prune with it safely.

use crate::dijkstra;
use crate::graph::RoadNetwork;
use crate::types::{Point, VertexId, INFINITE_DISTANCE};
use serde::{Deserialize, Serialize};

/// Identifier of a grid cell (row-major: `cell = y * nx + x`).
pub type CellId = usize;

/// Configuration for building a [`GridIndex`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GridConfig {
    /// Number of columns.
    pub nx: usize,
    /// Number of rows.
    pub ny: usize,
    /// Whether to compute, for every vertex, the full table of distances to
    /// each border vertex of its cell. `v.min` is always computed; the full
    /// table is only needed by diagnostics and some tighter bounds, so large
    /// benchmarks may disable it.
    pub compute_border_tables: bool,
}

impl GridConfig {
    /// Grid with the given number of columns and rows.
    pub fn with_dimensions(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        GridConfig {
            nx,
            ny,
            compute_border_tables: true,
        }
    }

    /// Disables the per-vertex border-distance tables.
    pub fn without_border_tables(mut self) -> Self {
        self.compute_border_tables = false;
        self
    }
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig::with_dimensions(16, 16)
    }
}

/// Per-cell contents (border vertices and member vertices).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GridCell {
    /// Border vertices of this cell (endpoints of boundary-crossing edges
    /// that lie inside the cell).
    pub border_vertices: Vec<VertexId>,
    /// All vertices whose coordinate falls inside the cell.
    pub vertices: Vec<VertexId>,
}

/// The grid index over a road network.
#[derive(Clone, Debug)]
pub struct GridIndex {
    nx: usize,
    ny: usize,
    origin: Point,
    cell_w: f64,
    cell_h: f64,
    cell_of_vertex: Vec<CellId>,
    cells: Vec<GridCell>,
    /// `v.min`: distance from each vertex to the nearest border vertex of its
    /// own cell. Infinite when the cell has no border vertices.
    vertex_min: Vec<f64>,
    /// Optional per-vertex `{(border vertex, dist)}` table for its own cell.
    border_tables: Option<Vec<Vec<(VertexId, f64)>>>,
    /// Row-major `ncells x ncells` matrix of lower-bound distances between
    /// cells (minimum border-vertex-pair distance). Diagonal is 0.
    lb_matrix: Vec<f64>,
    /// For each cell, every cell (including itself, at 0.0) sorted ascending
    /// by lower-bound distance.
    sorted_cells: Vec<Vec<(CellId, f64)>>,
}

impl GridIndex {
    /// Builds the index for a network.
    pub fn build(net: &RoadNetwork, config: GridConfig) -> Self {
        let (min, max) = net.bounding_box();
        let nx = config.nx;
        let ny = config.ny;
        // Expand the box a hair so max-coordinate vertices land inside the
        // last cell instead of one past it.
        let width = (max.x - min.x).max(1e-9);
        let height = (max.y - min.y).max(1e-9);
        let cell_w = width / nx as f64 * (1.0 + 1e-12) + f64::EPSILON;
        let cell_h = height / ny as f64 * (1.0 + 1e-12) + f64::EPSILON;

        let ncells = nx * ny;
        let mut cells: Vec<GridCell> = vec![GridCell::default(); ncells];
        let mut cell_of_vertex = vec![0usize; net.num_vertices()];
        for v in net.vertices() {
            let p = net.coord(v);
            let cx = (((p.x - min.x) / cell_w) as usize).min(nx - 1);
            let cy = (((p.y - min.y) / cell_h) as usize).min(ny - 1);
            let cid = cy * nx + cx;
            cell_of_vertex[v.index()] = cid;
            cells[cid].vertices.push(v);
        }

        // Border vertices: endpoints of edges whose two endpoints live in
        // different cells.
        let mut is_border = vec![false; net.num_vertices()];
        for e in net.edges() {
            if cell_of_vertex[e.from.index()] != cell_of_vertex[e.to.index()] {
                is_border[e.from.index()] = true;
                is_border[e.to.index()] = true;
            }
        }
        for v in net.vertices() {
            if is_border[v.index()] {
                cells[cell_of_vertex[v.index()]].border_vertices.push(v);
            }
        }

        // Per-cell multi-source Dijkstra from the cell's border vertices:
        // yields v.min for the cell's own vertices and one row of the
        // lower-bound matrix.
        let mut vertex_min = vec![INFINITE_DISTANCE; net.num_vertices()];
        let mut lb_matrix = vec![INFINITE_DISTANCE; ncells * ncells];
        for (ci, cell) in cells.iter().enumerate() {
            lb_matrix[ci * ncells + ci] = 0.0;
            if cell.border_vertices.is_empty() {
                // A cell without border vertices either holds the whole
                // (connected component of the) graph or is empty; its
                // vertices never need to exit, so v.min stays infinite and
                // cross-cell bounds degrade to the Euclidean bound.
                continue;
            }
            let dist = dijkstra::multi_source(net, cell.border_vertices.iter().copied());
            for &v in &cell.vertices {
                vertex_min[v.index()] = dist[v.index()];
            }
            for (cj, other) in cells.iter().enumerate() {
                if ci == cj {
                    continue;
                }
                let mut best = INFINITE_DISTANCE;
                for &b in &other.border_vertices {
                    let d = dist[b.index()];
                    if d < best {
                        best = d;
                    }
                }
                lb_matrix[ci * ncells + cj] = best;
            }
        }

        // Optional full per-vertex border tables.
        let border_tables = if config.compute_border_tables {
            let mut tables: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); net.num_vertices()];
            for cell in &cells {
                for &b in &cell.border_vertices {
                    let ds = dijkstra::distances_to_targets(net, b, &cell.vertices);
                    for (&v, &d) in cell.vertices.iter().zip(ds.iter()) {
                        tables[v.index()].push((b, d));
                    }
                }
            }
            Some(tables)
        } else {
            None
        };

        // Per-cell neighbour list sorted by lower bound (self first at 0).
        let mut sorted_cells = Vec::with_capacity(ncells);
        for ci in 0..ncells {
            let mut row: Vec<(CellId, f64)> = (0..ncells)
                .map(|cj| (cj, lb_matrix[ci * ncells + cj]))
                .collect();
            row.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            sorted_cells.push(row);
        }

        GridIndex {
            nx,
            ny,
            origin: min,
            cell_w,
            cell_h,
            cell_of_vertex,
            cells,
            vertex_min,
            border_tables,
            lb_matrix,
            sorted_cells,
        }
    }

    /// Number of cells (`nx * ny`).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Grid dimensions `(nx, ny)`.
    #[inline]
    pub fn dimensions(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Cell containing a vertex.
    #[inline]
    pub fn cell_of(&self, v: VertexId) -> CellId {
        self.cell_of_vertex[v.index()]
    }

    /// Cell containing an arbitrary planar point (clamped to the grid).
    pub fn cell_of_point(&self, p: Point) -> CellId {
        let cx = (((p.x - self.origin.x) / self.cell_w).max(0.0) as usize).min(self.nx - 1);
        let cy = (((p.y - self.origin.y) / self.cell_h).max(0.0) as usize).min(self.ny - 1);
        cy * self.nx + cx
    }

    /// The contents of a cell.
    #[inline]
    pub fn cell(&self, id: CellId) -> &GridCell {
        &self.cells[id]
    }

    /// Iterator over `(CellId, &GridCell)`.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &GridCell)> {
        self.cells.iter().enumerate()
    }

    /// `v.min`: distance from `v` to the nearest border vertex of its cell.
    #[inline]
    pub fn vertex_min(&self, v: VertexId) -> f64 {
        self.vertex_min[v.index()]
    }

    /// Distance table from `v` to each border vertex of its own cell, if the
    /// index was built with border tables.
    pub fn border_table(&self, v: VertexId) -> Option<&[(VertexId, f64)]> {
        self.border_tables.as_ref().map(|t| t[v.index()].as_slice())
    }

    /// Lower bound on the distance between any vertex of `from` and any
    /// vertex of `to` based on the closest border-vertex pair. Zero when the
    /// cells coincide; infinite when no border path exists.
    #[inline]
    pub fn cell_lower_bound(&self, from: CellId, to: CellId) -> f64 {
        self.lb_matrix[from * self.num_cells() + to]
    }

    /// Every cell sorted by ascending lower-bound distance from `from`
    /// (the cell itself first, at distance 0). This is the expansion order
    /// used by the single-side and dual-side search algorithms.
    #[inline]
    pub fn cells_by_lower_bound(&self, from: CellId) -> &[(CellId, f64)] {
        &self.sorted_cells[from]
    }

    /// A lower bound on the exact road distance `dist(u, v)`.
    ///
    /// For vertices in the same cell the bound is the Euclidean bound; for
    /// different cells it is
    /// `max(euclidean, u.min + LB[cell(u)][cell(v)] + v.min)`.
    pub fn lower_bound_with(&self, net: &RoadNetwork, u: VertexId, v: VertexId) -> f64 {
        let euclid = net.euclidean_lower_bound(u, v);
        let cu = self.cell_of(u);
        let cv = self.cell_of(v);
        if cu == cv {
            return euclid;
        }
        let lb = self.cell_lower_bound(cu, cv);
        if !lb.is_finite() {
            // No border path: either truly unreachable or a degenerate
            // single-cell component; fall back to the Euclidean bound which
            // is always valid.
            return euclid;
        }
        let umin = self.vertex_min[u.index()];
        let vmin = self.vertex_min[v.index()];
        if umin.is_finite() && vmin.is_finite() {
            euclid.max(umin + lb + vmin)
        } else {
            euclid
        }
    }

    /// Like [`Self::lower_bound_with`] but without the Euclidean component
    /// (grid information only). Kept for the grid-granularity ablation.
    pub fn lower_bound(&self, u: VertexId, v: VertexId) -> f64 {
        let cu = self.cell_of(u);
        let cv = self.cell_of(v);
        if cu == cv {
            return 0.0;
        }
        let lb = self.cell_lower_bound(cu, cv);
        let umin = self.vertex_min[u.index()];
        let vmin = self.vertex_min[v.index()];
        if lb.is_finite() && umin.is_finite() && vmin.is_finite() {
            umin + lb + vmin
        } else {
            0.0
        }
    }

    /// Lower bound from a vertex to any vertex of a target cell.
    ///
    /// Used by the grid expansion of the matching algorithms: when the next
    /// cell's bound already exceeds the pruning threshold the scan stops.
    pub fn lower_bound_to_cell(&self, u: VertexId, target: CellId) -> f64 {
        let cu = self.cell_of(u);
        if cu == target {
            return 0.0;
        }
        let lb = self.cell_lower_bound(cu, target);
        let umin = self.vertex_min[u.index()];
        if lb.is_finite() && umin.is_finite() {
            umin + lb
        } else {
            0.0
        }
    }

    /// Every cell whose rectangle intersects the closed disk of straight-
    /// line radius `radius` around `p`, in row-major order.
    ///
    /// This is the geometric substrate of the sublinear pickup-candidate
    /// walk: a vertex within planar distance `radius` of `p` lies in one of
    /// the returned cells (its cell rectangle contains it, so the
    /// rectangle's minimum distance to `p` cannot exceed the vertex's). The
    /// number of cells visited is bounded by the disk area over the cell
    /// area — independent of how many vertices or vehicles the grid holds.
    ///
    /// A non-finite `radius` returns every cell.
    pub fn cells_within_euclidean(&self, p: Point, radius: f64) -> Vec<CellId> {
        if !radius.is_finite() {
            return (0..self.num_cells()).collect();
        }
        let r = radius.max(0.0);
        let clamp_x =
            |coord: f64| (((coord / self.cell_w).floor()).max(0.0) as usize).min(self.nx - 1);
        let clamp_y =
            |coord: f64| (((coord / self.cell_h).floor()).max(0.0) as usize).min(self.ny - 1);
        let x0 = clamp_x(p.x - r - self.origin.x);
        let x1 = clamp_x(p.x + r - self.origin.x);
        let y0 = clamp_y(p.y - r - self.origin.y);
        let y1 = clamp_y(p.y + r - self.origin.y);
        let mut out = Vec::with_capacity((x1 - x0 + 1) * (y1 - y0 + 1));
        for cy in y0..=y1 {
            let ry0 = self.origin.y + cy as f64 * self.cell_h;
            let dy = (ry0 - p.y).max(p.y - (ry0 + self.cell_h)).max(0.0);
            for cx in x0..=x1 {
                let rx0 = self.origin.x + cx as f64 * self.cell_w;
                let dx = (rx0 - p.x).max(p.x - (rx0 + self.cell_w)).max(0.0);
                if dx * dx + dy * dy <= r * r {
                    out.push(cy * self.nx + cx);
                }
            }
        }
        out
    }

    /// Approximate memory footprint of the index in bytes (used by the
    /// grid-granularity ablation experiment E10).
    pub fn approximate_bytes(&self) -> usize {
        let mut bytes = 0usize;
        bytes += self.cell_of_vertex.len() * std::mem::size_of::<CellId>();
        bytes += self.vertex_min.len() * 8;
        bytes += self.lb_matrix.len() * 8;
        for c in &self.cells {
            bytes += c.border_vertices.len() * 4 + c.vertices.len() * 4;
        }
        for row in &self.sorted_cells {
            bytes += row.len() * 16;
        }
        if let Some(tables) = &self.border_tables {
            for t in tables {
                bytes += t.len() * 12;
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// 6x6 lattice, 500 m spacing, unit-length edges (500 m).
    fn lattice(side: usize, spacing: f64) -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let mut ids = Vec::new();
        for y in 0..side {
            for x in 0..side {
                ids.push(b.add_vertex(x as f64 * spacing, y as f64 * spacing));
            }
        }
        for y in 0..side {
            for x in 0..side {
                let u = ids[y * side + x];
                if x + 1 < side {
                    b.add_bidirectional_edge(u, ids[y * side + x + 1], spacing);
                }
                if y + 1 < side {
                    b.add_bidirectional_edge(u, ids[(y + 1) * side + x], spacing);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn every_vertex_is_assigned_to_exactly_one_cell() {
        let net = lattice(6, 500.0);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(3, 3));
        let total: usize = grid.cells().map(|(_, c)| c.vertices.len()).sum();
        assert_eq!(total, net.num_vertices());
        for v in net.vertices() {
            let cid = grid.cell_of(v);
            assert!(grid.cell(cid).vertices.contains(&v));
        }
    }

    #[test]
    fn border_vertices_are_endpoints_of_crossing_edges() {
        let net = lattice(6, 500.0);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(3, 3));
        for e in net.edges() {
            if grid.cell_of(e.from) != grid.cell_of(e.to) {
                assert!(grid
                    .cell(grid.cell_of(e.from))
                    .border_vertices
                    .contains(&e.from));
                assert!(grid
                    .cell(grid.cell_of(e.to))
                    .border_vertices
                    .contains(&e.to));
            }
        }
    }

    #[test]
    fn single_cell_grid_has_zero_bounds() {
        let net = lattice(4, 100.0);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(1, 1));
        assert_eq!(grid.num_cells(), 1);
        assert_eq!(grid.lower_bound(VertexId(0), VertexId(15)), 0.0);
        assert_eq!(grid.cell_lower_bound(0, 0), 0.0);
    }

    #[test]
    fn lower_bound_never_exceeds_exact_distance() {
        let net = lattice(6, 500.0);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(3, 3));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..200 {
            let u = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let v = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let exact = crate::dijkstra::distance(&net, u, v).unwrap();
            let lb = grid.lower_bound(u, v);
            let lbw = grid.lower_bound_with(&net, u, v);
            assert!(lb <= exact + 1e-9, "grid lb {lb} > exact {exact}");
            assert!(lbw <= exact + 1e-9, "combined lb {lbw} > exact {exact}");
        }
    }

    #[test]
    fn lower_bound_to_cell_never_exceeds_distance_to_any_member() {
        let net = lattice(6, 500.0);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(3, 3));
        let u = VertexId(0);
        for (cid, cell) in grid.cells() {
            let lb = grid.lower_bound_to_cell(u, cid);
            for &v in &cell.vertices {
                let exact = crate::dijkstra::distance(&net, u, v).unwrap();
                assert!(lb <= exact + 1e-9, "cell lb {lb} > exact {exact} for {v}");
            }
        }
    }

    #[test]
    fn sorted_cells_are_ascending_and_start_with_self() {
        let net = lattice(6, 500.0);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(3, 3));
        for ci in 0..grid.num_cells() {
            let row = grid.cells_by_lower_bound(ci);
            assert_eq!(row.len(), grid.num_cells());
            assert_eq!(row[0].0, ci, "self cell must come first (lb 0)");
            for pair in row.windows(2) {
                assert!(pair[0].1 <= pair[1].1);
            }
        }
    }

    #[test]
    fn border_tables_match_exact_distances() {
        let net = lattice(6, 500.0);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(3, 3));
        for v in net.vertices() {
            let table = grid.border_table(v).unwrap();
            let mut min = INFINITE_DISTANCE;
            for &(b, d) in table {
                let exact = crate::dijkstra::distance(&net, v, b).unwrap();
                assert!((d - exact).abs() < 1e-9);
                min = min.min(d);
            }
            if !table.is_empty() {
                assert!((grid.vertex_min(v) - min).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn without_border_tables_skips_tables_but_keeps_vmin() {
        let net = lattice(6, 500.0);
        let grid = GridIndex::build(
            &net,
            GridConfig::with_dimensions(3, 3).without_border_tables(),
        );
        assert!(grid.border_table(VertexId(0)).is_none());
        // v.min still finite for cells that have border vertices.
        let any_finite = net.vertices().any(|v| grid.vertex_min(v).is_finite());
        assert!(any_finite);
    }

    #[test]
    fn cell_of_point_clamps_to_grid() {
        let net = lattice(4, 100.0);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(2, 2));
        assert_eq!(grid.cell_of_point(Point::new(-1000.0, -1000.0)), 0);
        let far = grid.cell_of_point(Point::new(1e9, 1e9));
        assert_eq!(far, grid.num_cells() - 1);
    }

    #[test]
    fn cells_within_euclidean_cover_all_near_vertices() {
        let net = lattice(6, 500.0);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(3, 3));
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..100 {
            let u = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let radius = rng.gen_range(0.0..3000.0);
            let cells = grid.cells_within_euclidean(net.coord(u), radius);
            // Every vertex inside the disk lives in a returned cell.
            for v in net.vertices() {
                if net.euclidean(u, v) <= radius {
                    assert!(
                        cells.contains(&grid.cell_of(v)),
                        "vertex {v} within {radius} of {u} but its cell is missing"
                    );
                }
            }
        }
        // An infinite radius returns the whole grid.
        let all = grid.cells_within_euclidean(net.coord(VertexId(0)), f64::INFINITY);
        assert_eq!(all.len(), grid.num_cells());
        // A zero radius returns at least the point's own cell.
        let own = grid.cells_within_euclidean(net.coord(VertexId(0)), 0.0);
        assert!(own.contains(&grid.cell_of(VertexId(0))));
    }

    #[test]
    fn approximate_bytes_grows_with_grid_size() {
        let net = lattice(6, 500.0);
        let small = GridIndex::build(&net, GridConfig::with_dimensions(2, 2));
        let large = GridIndex::build(&net, GridConfig::with_dimensions(6, 6));
        assert!(large.approximate_bytes() > small.approximate_bytes());
    }
}
