//! Property tests for the contraction-hierarchy backend: CH distances agree
//! with plain Dijkstra on random undirected *and* directed city graphs, the
//! many-to-many bucket query agrees with repeated point queries, and the
//! oracle's CH backend stays exact (including its cache and batching
//! layers).

use proptest::prelude::*;
use ptrider_roadnet::{
    dijkstra, CchTopology, ChConfig, ContractionHierarchy, DistanceBackend, DistanceOracle,
    GridConfig, GridIndex, RoadNetwork, RoadNetworkBuilder, TrafficModel, VertexId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Random jittered lattice with optional extra chords; `one_way` adds
/// directed-only shortcut edges so the network loses symmetry.
fn random_network(side: usize, extra_edges: usize, one_way: usize, seed: u64) -> RoadNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = RoadNetworkBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_vertex(
                x as f64 * 100.0 + rng.gen_range(-20.0..20.0),
                y as f64 * 100.0 + rng.gen_range(-20.0..20.0),
            ));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let u = ids[y * side + x];
            if x + 1 < side {
                b.add_bidirectional_edge(u, ids[y * side + x + 1], rng.gen_range(80.0..200.0));
            }
            if y + 1 < side {
                b.add_bidirectional_edge(u, ids[(y + 1) * side + x], rng.gen_range(80.0..200.0));
            }
        }
    }
    for _ in 0..extra_edges {
        let u = ids[rng.gen_range(0..ids.len())];
        let v = ids[rng.gen_range(0..ids.len())];
        if u != v {
            b.add_bidirectional_edge(u, v, rng.gen_range(50.0..400.0));
        }
    }
    for _ in 0..one_way {
        let u = ids[rng.gen_range(0..ids.len())];
        let v = ids[rng.gen_range(0..ids.len())];
        if u != v {
            b.add_directed_edge(u, v, rng.gen_range(30.0..150.0));
        }
    }
    b.build().unwrap()
}

/// CH unpacks shortcut paths and re-folds original edge weights in path
/// order, so agreement with Dijkstra is exact (bit-for-bit), not
/// approximate — unless both are unreachable.
fn approx(a: f64, b: f64) -> bool {
    a == b || (a.is_infinite() && b.is_infinite())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn ch_equals_dijkstra_on_undirected_graphs(
        seed in 0u64..10_000,
        side in 3usize..7,
        extra in 0usize..8,
    ) {
        let net = random_network(side, extra, 0, seed);
        prop_assert!(net.is_undirected());
        let ch = ContractionHierarchy::build(&net).expect("sparse lattice must contract");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc4);
        for _ in 0..30 {
            let u = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let v = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let exact = dijkstra::distance(&net, u, v).unwrap_or(f64::INFINITY);
            let got = ch.distance(u, v);
            prop_assert!(approx(got, exact), "{u}->{v}: ch {got} vs dijkstra {exact}");
        }
    }

    #[test]
    fn ch_equals_dijkstra_on_directed_graphs(
        seed in 0u64..10_000,
        side in 3usize..7,
        extra in 0usize..5,
        one_way in 1usize..8,
    ) {
        let net = random_network(side, extra, one_way, seed);
        let ch = ContractionHierarchy::build(&net).expect("sparse lattice must contract");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xd1);
        for _ in 0..30 {
            let u = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let v = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            // Both directions: directed CH must preserve asymmetry.
            let fwd = dijkstra::distance(&net, u, v).unwrap_or(f64::INFINITY);
            let bwd = dijkstra::distance(&net, v, u).unwrap_or(f64::INFINITY);
            prop_assert!(approx(ch.distance(u, v), fwd), "{u}->{v}");
            prop_assert!(approx(ch.distance(v, u), bwd), "{v}->{u}");
        }
    }

    #[test]
    fn ch_bucket_batches_match_point_queries(
        seed in 0u64..10_000,
        side in 3usize..7,
        one_way in 0usize..5,
        num_targets in 1usize..24,
    ) {
        let net = random_network(side, 3, one_way, seed);
        let n = net.num_vertices() as u32;
        let ch = ContractionHierarchy::build(&net).expect("sparse lattice must contract");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xb0c);
        let source = VertexId(rng.gen_range(0..n));
        let targets: Vec<VertexId> =
            (0..num_targets).map(|_| VertexId(rng.gen_range(0..n))).collect();
        let batch = ch.distances_from(source, &targets);
        prop_assert_eq!(batch.len(), targets.len());
        for (t, d) in targets.iter().zip(&batch) {
            let point = ch.distance(source, *t);
            prop_assert!(approx(*d, point), "{source}->{t}: batch {d} vs point {point}");
            let exact = dijkstra::distance(&net, source, *t).unwrap_or(f64::INFINITY);
            prop_assert!(approx(*d, exact), "{source}->{t}: batch {d} vs dijkstra {exact}");
        }
    }

    #[test]
    fn ch_oracle_backend_is_exact_through_cache_and_batching(
        seed in 0u64..10_000,
        side in 3usize..6,
        one_way in 0usize..5,
    ) {
        let net = Arc::new(random_network(side, 2, one_way, seed));
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(3, 3)));
        let oracle = DistanceOracle::with_backend(
            Arc::clone(&net),
            Arc::clone(&grid),
            None,
            DistanceBackend::Ch,
        );
        prop_assert_eq!(oracle.backend(), DistanceBackend::Ch);
        // The oracle answers with canonical-direction folds on undirected
        // networks (smaller vertex id first), so the bit-exact reference is
        // the canonical-direction Dijkstra. On directed networks the query
        // direction is the only direction.
        let reference = |u: VertexId, v: VertexId| {
            let (a, b) = if net.is_undirected() && v < u {
                (v, u)
            } else {
                (u, v)
            };
            dijkstra::distance(&net, a, b).unwrap_or(f64::INFINITY)
        };
        let n = net.num_vertices() as u32;
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0c8);
        for _ in 0..15 {
            let u = VertexId(rng.gen_range(0..n));
            let v = VertexId(rng.gen_range(0..n));
            let exact = reference(u, v);
            prop_assert!(approx(oracle.distance(u, v), exact), "{u}->{v}");
            // Cached second read agrees.
            prop_assert!(approx(oracle.distance(u, v), exact), "{u}->{v} cached");
        }
        // A batch with a mix of cached and novel targets.
        let source = VertexId(rng.gen_range(0..n));
        let targets: Vec<VertexId> = (0..12).map(|_| VertexId(rng.gen_range(0..n))).collect();
        for (t, d) in targets.iter().zip(oracle.distances_from(source, &targets)) {
            let exact = reference(source, *t);
            prop_assert!(approx(d, exact), "batched {source}->{t}");
        }
    }

    /// Satellite property: with the CH backend active the oracle derives
    /// lower bounds from a settle-capped upward search (exact answer on
    /// small upward spaces, truncated bound on large ones, maxed with the
    /// geometric and landmark bounds). Whatever comes out must never exceed
    /// the exact distance — and the bound is queried *before* the exact
    /// distance so it cannot lean on a warm cache. One congestion epoch
    /// re-checks admissibility against the re-customized metric.
    #[test]
    fn ch_lower_bound_never_exceeds_exact_distance(
        seed in 0u64..10_000,
        side in 3usize..7,
        one_way in 0usize..5,
    ) {
        let net = Arc::new(random_network(side, 2, one_way, seed));
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(3, 3)));
        let oracle = DistanceOracle::with_backend(
            Arc::clone(&net),
            Arc::clone(&grid),
            None,
            DistanceBackend::Ch,
        );
        let n = net.num_vertices() as u32;
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1b0);
        let mut model = TrafficModel::free_flow(&net);
        for epoch in 0..2 {
            if epoch > 0 {
                // Congest a random subset of segments/arcs and re-customize.
                if net.is_undirected() {
                    for v in net.vertices() {
                        for i in net.out_arc_range(v) {
                            let t = net.arc_target(i);
                            if v < t && rng.gen_bool(0.3) {
                                model.set_segment_factor(&net, v, t, rng.gen_range(1.0..4.0));
                            }
                        }
                    }
                } else {
                    for i in 0..net.num_directed_edges() {
                        if rng.gen_bool(0.3) {
                            model.set_arc_factor(i, rng.gen_range(1.0..4.0));
                        }
                    }
                }
                model.bump_version();
                oracle.apply_traffic(&model);
            }
            for _ in 0..25 {
                let u = VertexId(rng.gen_range(0..n));
                let v = VertexId(rng.gen_range(0..n));
                let lb = oracle.lower_bound(u, v);
                let exact = oracle.distance(u, v);
                prop_assert!(
                    lb <= exact + 1e-9,
                    "epoch {epoch}: lb {lb} > exact {exact} ({u}->{v}, seed {seed})"
                );
            }
        }
    }

    /// Tentpole property: the parallel builders reproduce the sequential
    /// answers exactly. A hierarchy contracted with independent-set rounds
    /// (threads >= 2) answers bit-identically to Dijkstra and to the
    /// sequential lazy-queue build, and a CCH metric customized with 1 and
    /// 4 workers yields bit-identical distances.
    #[test]
    fn parallel_build_and_customize_match_sequential(
        seed in 0u64..10_000,
        side in 3usize..7,
        one_way in 0usize..5,
    ) {
        let net = random_network(side, 2, one_way, seed);
        let config = ChConfig::default();
        let seq = ContractionHierarchy::build_with_threads(&net, &config, 1)
            .expect("sequential build");
        let par = ContractionHierarchy::build_with_threads(&net, &config, 4)
            .expect("parallel build");
        let n = net.num_vertices() as u32;
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9a7);
        for _ in 0..30 {
            let u = VertexId(rng.gen_range(0..n));
            let v = VertexId(rng.gen_range(0..n));
            let exact = dijkstra::distance(&net, u, v).unwrap_or(f64::INFINITY);
            prop_assert!(approx(seq.distance(u, v), exact), "seq {u}->{v}");
            prop_assert!(approx(par.distance(u, v), exact), "par {u}->{v}");
        }
        // Per-level parallel customization: same metric, 1 vs 4 workers,
        // bit-identical distances that also match Dijkstra on the scaled
        // network.
        let topo = CchTopology::build(&net).expect("cch topology");
        let mut model = TrafficModel::free_flow(&net);
        if net.is_undirected() {
            for v in net.vertices() {
                for i in net.out_arc_range(v) {
                    let t = net.arc_target(i);
                    if v < t && rng.gen_bool(0.4) {
                        model.set_segment_factor(&net, v, t, rng.gen_range(1.0..4.0));
                    }
                }
            }
        } else {
            for i in 0..net.num_directed_edges() {
                if rng.gen_bool(0.4) {
                    model.set_arc_factor(i, rng.gen_range(1.0..4.0));
                }
            }
        }
        model.bump_version();
        let scaled = model.scaled_weights(&net);
        let metric = net.with_metric(scaled.clone()).unwrap();
        let one = topo.customize_with_threads(&scaled, 1);
        let four = topo.customize_with_threads(&scaled, 4);
        for _ in 0..30 {
            let u = VertexId(rng.gen_range(0..n));
            let v = VertexId(rng.gen_range(0..n));
            let exact = dijkstra::distance(&metric, u, v).unwrap_or(f64::INFINITY);
            let a = one.distance(u, v);
            let b = four.distance(u, v);
            prop_assert!(
                a.to_bits() == b.to_bits() || (a.is_infinite() && b.is_infinite()),
                "{u}->{v}: threads=1 {a} vs threads=4 {b}"
            );
            prop_assert!(approx(a, exact), "customized {u}->{v}: {a} vs dijkstra {exact}");
        }
    }
}
