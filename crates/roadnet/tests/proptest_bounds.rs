//! Property tests for the road-network substrate: on randomly generated
//! connected networks, every lower bound is admissible and every shortest
//! path engine agrees with plain Dijkstra.

use proptest::prelude::*;
use ptrider_roadnet::{
    astar, dijkstra, GridConfig, GridIndex, RoadNetwork, RoadNetworkBuilder, VertexId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds a random connected network: a jittered lattice with random extra
/// chords and random weights.
fn random_network(side: usize, extra_edges: usize, seed: u64) -> RoadNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = RoadNetworkBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_vertex(
                x as f64 * 100.0 + rng.gen_range(-20.0..20.0),
                y as f64 * 100.0 + rng.gen_range(-20.0..20.0),
            ));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let u = ids[y * side + x];
            if x + 1 < side {
                b.add_bidirectional_edge(u, ids[y * side + x + 1], rng.gen_range(80.0..200.0));
            }
            if y + 1 < side {
                b.add_bidirectional_edge(u, ids[(y + 1) * side + x], rng.gen_range(80.0..200.0));
            }
        }
    }
    for _ in 0..extra_edges {
        let u = ids[rng.gen_range(0..ids.len())];
        let v = ids[rng.gen_range(0..ids.len())];
        if u != v {
            b.add_bidirectional_edge(u, v, rng.gen_range(50.0..400.0));
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn grid_lower_bounds_are_admissible(
        seed in 0u64..10_000,
        side in 3usize..7,
        extra in 0usize..8,
        nx in 1usize..5,
        ny in 1usize..5,
    ) {
        let net = random_network(side, extra, seed);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(nx, ny));
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbeef);
        for _ in 0..30 {
            let u = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let v = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let exact = dijkstra::distance(&net, u, v).unwrap();
            prop_assert!(grid.lower_bound(u, v) <= exact + 1e-9);
            prop_assert!(grid.lower_bound_with(&net, u, v) <= exact + 1e-9);
            prop_assert!(net.euclidean_lower_bound(u, v) <= exact + 1e-9);
            let cell = grid.cell_of(v);
            prop_assert!(grid.lower_bound_to_cell(u, cell) <= exact + 1e-9);
        }
    }

    #[test]
    fn all_shortest_path_engines_agree(
        seed in 0u64..10_000,
        side in 3usize..6,
        extra in 0usize..6,
    ) {
        let net = random_network(side, extra, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfeed);
        for _ in 0..20 {
            let u = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let v = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let d = dijkstra::distance(&net, u, v).unwrap();
            let bi = dijkstra::bidirectional_distance(&net, u, v).unwrap();
            let a = astar::distance(&net, u, v).unwrap();
            prop_assert!((d - bi).abs() < 1e-6, "dijkstra {d} vs bidirectional {bi}");
            prop_assert!((d - a).abs() < 1e-6, "dijkstra {d} vs A* {a}");
            // The reconstructed path has exactly the reported length.
            let (pd, path) = dijkstra::shortest_path(&net, u, v).unwrap();
            prop_assert!((pd - d).abs() < 1e-9);
            let mut acc = 0.0;
            for w in path.windows(2) {
                acc += dijkstra::distance(&net, w[0], w[1]).unwrap();
            }
            prop_assert!((acc - d).abs() < 1e-6);
        }
    }

    #[test]
    fn grid_cell_ordering_is_consistent_with_bounds(
        seed in 0u64..10_000,
        nx in 2usize..5,
        ny in 2usize..5,
    ) {
        let net = random_network(5, 4, seed);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(nx, ny));
        for cell in 0..grid.num_cells() {
            let row = grid.cells_by_lower_bound(cell);
            prop_assert_eq!(row.len(), grid.num_cells());
            prop_assert_eq!(row[0].0, cell);
            for pair in row.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].1);
            }
            for &(other, lb) in row {
                prop_assert_eq!(grid.cell_lower_bound(cell, other), lb);
            }
        }
    }
}
