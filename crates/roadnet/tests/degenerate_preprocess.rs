//! Degenerate preprocessing inputs: disconnected graphs, single-vertex
//! components, duplicate coordinates (median-cut tie-breaks) and graphs
//! smaller than the worker count must build without panicking — under the
//! sequential *and* parallel CH builder and the CCH pipeline — and answer
//! bit-identically to Dijkstra.

use ptrider_roadnet::{
    dijkstra, CchTopology, ChConfig, ContractionHierarchy, RoadNetwork, RoadNetworkBuilder,
    TrafficModel, VertexId,
};

/// All-pairs check: every CH answer is bit-for-bit the Dijkstra answer
/// (or both unreachable).
fn assert_matches_dijkstra(net: &RoadNetwork, ch: &ContractionHierarchy, what: &str) {
    for u in net.vertices() {
        for v in net.vertices() {
            let exact = dijkstra::distance(net, u, v).unwrap_or(f64::INFINITY);
            let got = ch.distance(u, v);
            assert!(
                got.to_bits() == exact.to_bits() || (got.is_infinite() && exact.is_infinite()),
                "{what}: {u}->{v} ch {got} vs dijkstra {exact}"
            );
        }
    }
}

/// Builds the hierarchy at several worker counts (including counts far
/// above the vertex count) and customizes the CCH at 1 and 4 workers; every
/// variant must agree with Dijkstra on every pair.
fn exercise_all_builders(net: &RoadNetwork, what: &str) {
    let config = ChConfig::default();
    for threads in [1, 2, 4, 64] {
        let ch = ContractionHierarchy::build_with_threads(net, &config, threads)
            .unwrap_or_else(|e| panic!("{what}: build with {threads} threads failed: {e:?}"));
        assert_matches_dijkstra(net, &ch, &format!("{what} (ch, {threads} threads)"));
    }
    let topo = CchTopology::build(net).unwrap_or_else(|e| panic!("{what}: cch failed: {e:?}"));
    let weights = TrafficModel::free_flow(net).scaled_weights(net);
    for threads in [1, 4] {
        let custom = topo.customize_with_threads(&weights, threads);
        assert_matches_dijkstra(net, &custom, &format!("{what} (cch, {threads} threads)"));
    }
}

/// A `cols x rows` lattice starting at vertex offset produced by `b`'s
/// current count, with every coordinate shifted by `(ox, oy)`.
fn add_lattice(b: &mut RoadNetworkBuilder, cols: usize, rows: usize, ox: f64, oy: f64) {
    let mut ids = Vec::new();
    for y in 0..rows {
        for x in 0..cols {
            ids.push(b.add_vertex(ox + x as f64 * 50.0, oy + y as f64 * 50.0));
        }
    }
    for y in 0..rows {
        for x in 0..cols {
            let u = ids[y * cols + x];
            if x + 1 < cols {
                b.add_bidirectional_edge(u, ids[y * cols + x + 1], 50.0 + (x + y) as f64);
            }
            if y + 1 < rows {
                b.add_bidirectional_edge(u, ids[(y + 1) * cols + x], 60.0 + (x * y) as f64);
            }
        }
    }
}

#[test]
fn disconnected_islands_build_and_stay_exact() {
    let mut b = RoadNetworkBuilder::new();
    add_lattice(&mut b, 4, 4, 0.0, 0.0);
    add_lattice(&mut b, 3, 3, 10_000.0, 10_000.0);
    let net = b.build().unwrap();
    exercise_all_builders(&net, "two islands");
    // Cross-island distances really are infinite.
    let ch = ContractionHierarchy::build(&net).unwrap();
    assert!(ch.distance(VertexId(0), VertexId(16)).is_infinite());
}

#[test]
fn isolated_vertices_among_a_component_build_and_stay_exact() {
    let mut b = RoadNetworkBuilder::new();
    add_lattice(&mut b, 3, 3, 0.0, 0.0);
    // Edge-less vertices: reachable from nothing, not even probed by the
    // lattice searches — the contractors must not choke on degree zero.
    for i in 0..4 {
        b.add_vertex(-500.0 - i as f64, -500.0);
    }
    let net = b.build().unwrap();
    exercise_all_builders(&net, "isolated vertices");
    let ch = ContractionHierarchy::build(&net).unwrap();
    let lonely = VertexId(9);
    assert_eq!(ch.distance(lonely, lonely), 0.0);
    assert!(ch.distance(lonely, VertexId(0)).is_infinite());
}

#[test]
fn single_vertex_network_builds() {
    let mut b = RoadNetworkBuilder::new();
    let v = b.add_vertex(1.0, 2.0);
    let net = b.build().unwrap();
    exercise_all_builders(&net, "single vertex");
    let ch = ContractionHierarchy::build(&net).unwrap();
    assert_eq!(ch.distance(v, v), 0.0);
}

#[test]
fn duplicate_coordinates_survive_the_median_cut() {
    // Every vertex at the same point: the nested-dissection median cut has
    // no geometric signal at all and must fall back to its tie-break
    // instead of recursing forever or producing an empty side.
    let mut b = RoadNetworkBuilder::new();
    let ids: Vec<VertexId> = (0..12).map(|_| b.add_vertex(7.0, 7.0)).collect();
    for w in ids.windows(2) {
        b.add_bidirectional_edge(w[0], w[1], 10.0);
    }
    b.add_bidirectional_edge(ids[0], ids[11], 35.0);
    b.add_bidirectional_edge(ids[3], ids[8], 12.0);
    let net = b.build().unwrap();
    exercise_all_builders(&net, "duplicate coordinates");
}

#[test]
fn graph_smaller_than_the_worker_count_builds() {
    let mut b = RoadNetworkBuilder::new();
    let u = b.add_vertex(0.0, 0.0);
    let v = b.add_vertex(1.0, 0.0);
    b.add_bidirectional_edge(u, v, 3.5);
    let net = b.build().unwrap();
    exercise_all_builders(&net, "two vertices");
    let ch = ContractionHierarchy::build_with_threads(&net, &ChConfig::default(), 64).unwrap();
    assert_eq!(ch.distance(u, v), 3.5);
    assert_eq!(ch.distance(v, u), 3.5);
}
