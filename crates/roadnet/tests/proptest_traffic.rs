//! Property tests for the live-traffic subsystem: after each epoch of a
//! random traffic-factor sequence, customized-CH distances are bit-identical
//! to Dijkstra on the updated metric (directed *and* undirected networks),
//! the oracle serves the updated metric through both backends with its
//! epoch-stamped cache, and every base-metric lower bound stays admissible
//! under congestion.

use proptest::prelude::*;
use ptrider_roadnet::{
    dijkstra, CchTopology, DistanceBackend, DistanceOracle, GridConfig, GridIndex, LandmarkIndex,
    RoadNetwork, RoadNetworkBuilder, TrafficModel, VertexId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Random jittered lattice; `one_way > 0` adds directed-only chords so the
/// network loses symmetry.
fn random_network(side: usize, one_way: usize, seed: u64) -> RoadNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = RoadNetworkBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_vertex(
                x as f64 * 100.0 + rng.gen_range(-20.0..20.0),
                y as f64 * 100.0 + rng.gen_range(-20.0..20.0),
            ));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let u = ids[y * side + x];
            if x + 1 < side {
                b.add_bidirectional_edge(u, ids[y * side + x + 1], rng.gen_range(80.0..200.0));
            }
            if y + 1 < side {
                b.add_bidirectional_edge(u, ids[(y + 1) * side + x], rng.gen_range(80.0..200.0));
            }
        }
    }
    for _ in 0..one_way {
        let u = ids[rng.gen_range(0..ids.len())];
        let v = ids[rng.gen_range(0..ids.len())];
        if u != v {
            b.add_directed_edge(u, v, rng.gen_range(30.0..150.0));
        }
    }
    b.build().unwrap()
}

/// Mutates a random subset of arcs; returns the scaled weights. Symmetric
/// (segment-level) factors on undirected networks keep the metric
/// undirected; directed networks get per-arc factors.
fn random_epoch(net: &RoadNetwork, model: &mut TrafficModel, rng: &mut ChaCha8Rng) -> Vec<f64> {
    if net.is_undirected() {
        for v in net.vertices() {
            for i in net.out_arc_range(v) {
                let t = net.arc_target(i);
                if v < t && rng.gen_bool(0.3) {
                    model.set_segment_factor(net, v, t, rng.gen_range(1.0..4.0));
                }
            }
        }
    } else {
        for i in 0..net.num_directed_edges() {
            if rng.gen_bool(0.3) {
                model.set_arc_factor(i, rng.gen_range(1.0..4.0));
            }
        }
    }
    model.bump_version();
    model.scaled_weights(net)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Acceptance property: after each epoch of a random traffic sequence,
    /// the customized hierarchy answers bit-for-bit what Dijkstra answers
    /// on the re-weighted network — undirected and directed.
    #[test]
    fn customized_ch_is_bit_identical_to_dijkstra_per_epoch(
        seed in 0u64..600,
        side in 4usize..6,
        one_way in 0usize..5,
        epochs in 1usize..4,
    ) {
        let net = random_network(side, one_way, seed);
        let topo = CchTopology::build(&net).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7aff1c);
        let mut model = TrafficModel::free_flow(&net);
        for _ in 0..epochs {
            let scaled = random_epoch(&net, &mut model, &mut rng);
            let metric = net.with_metric(scaled.clone()).unwrap();
            let custom = topo.customize(&scaled);
            for u in net.vertices() {
                for v in net.vertices() {
                    let exact = dijkstra::distance(&metric, u, v).unwrap_or(f64::INFINITY);
                    let got = custom.distance(u, v);
                    prop_assert!(
                        got.to_bits() == exact.to_bits()
                            || (got.is_infinite() && exact.is_infinite()),
                        "{u}->{v}: customized {got} vs dijkstra {exact} (seed {seed})"
                    );
                }
            }
        }
    }

    /// The oracle under traffic: both backends serve the updated metric
    /// exactly through the epoch-stamped cache, and the base-metric lower
    /// bounds remain admissible after every epoch.
    #[test]
    fn oracle_serves_updated_metric_exactly_on_both_backends(
        seed in 0u64..400,
        one_way in 0usize..4,
        epochs in 1usize..4,
    ) {
        let net = Arc::new(random_network(4, one_way, seed));
        let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 2)));
        let landmarks = Arc::new(LandmarkIndex::build_auto(&net, 4));
        let oracles = [
            DistanceOracle::with_backend(
                Arc::clone(&net), Arc::clone(&grid), Some(Arc::clone(&landmarks)),
                DistanceBackend::Alt,
            ),
            DistanceOracle::with_backend(
                Arc::clone(&net), Arc::clone(&grid), Some(Arc::clone(&landmarks)),
                DistanceBackend::Ch,
            ),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0e13);
        let mut model = TrafficModel::free_flow(&net);
        // Warm the caches on the base metric so staleness is actually
        // exercised by the epochs below.
        for o in &oracles {
            for u in net.vertices() {
                let _ = o.distance(u, VertexId(0));
            }
        }
        for _ in 0..epochs {
            let scaled = random_epoch(&net, &mut model, &mut rng);
            let metric = net.with_metric(scaled).unwrap();
            for o in &oracles {
                o.apply_traffic(&model);
            }
            let targets: Vec<VertexId> = net.vertices().collect();
            for u in net.vertices() {
                for o in &oracles {
                    let batch = o.distances_from(u, &targets);
                    for (v, got) in targets.iter().zip(batch) {
                        // The oracle folds undirected answers in canonical
                        // direction (smaller vertex id first), so the
                        // bit-level reference must run the same way.
                        let (a, b) = if metric.is_undirected() && *v < u {
                            (*v, u)
                        } else {
                            (u, *v)
                        };
                        let exact =
                            dijkstra::distance(&metric, a, b).unwrap_or(f64::INFINITY);
                        prop_assert!(
                            got.to_bits() == exact.to_bits()
                                || (got.is_infinite() && exact.is_infinite()),
                            "{u}->{v}: oracle({:?}) {got} vs dijkstra {exact}",
                            o.backend()
                        );
                        let lb = o.lower_bound(u, *v);
                        prop_assert!(
                            lb <= exact + 1e-9,
                            "lb {lb} > exact {exact} under traffic ({u}->{v})"
                        );
                    }
                }
            }
        }
    }
}

/// Deterministic regression: a long alternating congest/relax sequence
/// keeps the two backends bit-identical to each other (the `tests/`-level
/// skyline property rests on this pairwise agreement).
#[test]
fn backends_agree_bit_for_bit_across_a_long_epoch_sequence() {
    let net = Arc::new(random_network(5, 3, 99));
    let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(2, 2)));
    let alt = DistanceOracle::with_backend(
        Arc::clone(&net),
        Arc::clone(&grid),
        None,
        DistanceBackend::Alt,
    );
    let ch = DistanceOracle::with_backend(
        Arc::clone(&net),
        Arc::clone(&grid),
        None,
        DistanceBackend::Ch,
    );
    assert_eq!(ch.backend(), DistanceBackend::Ch);
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    let mut model = TrafficModel::free_flow(&net);
    let mut expected_customizations = 0u64;
    for round in 0..10 {
        if round % 3 == 2 {
            // Free-flow resets reinstate the retained build-time hierarchy
            // instead of running a customization pass.
            model.reset();
        } else {
            let _ = random_epoch(&net, &mut model, &mut rng);
            expected_customizations += 1;
        }
        alt.apply_traffic(&model);
        ch.apply_traffic(&model);
        for u in net.vertices() {
            for v in net.vertices() {
                let a = alt.distance(u, v);
                let c = ch.distance(u, v);
                assert!(
                    a.to_bits() == c.to_bits() || (a.is_infinite() && c.is_infinite()),
                    "round {round}: {u}->{v} alt {a} vs ch {c}"
                );
            }
        }
    }
    assert_eq!(ch.ch_customizations(), expected_customizations);
    assert_eq!(alt.traffic_epoch(), 10);
    assert_eq!(ch.traffic_epoch(), 10);
}
