//! Property tests for the rebuilt distance substrate: the ALT-accelerated
//! A* backend agrees with plain Dijkstra on random (directed and
//! undirected) networks, the batched one-to-many oracle query matches
//! per-target point queries, and cache mirroring never corrupts directed
//! distances.

use proptest::prelude::*;
use ptrider_roadnet::{
    astar, dijkstra, DistanceOracle, GridConfig, GridIndex, LandmarkIndex, RoadNetwork,
    RoadNetworkBuilder, VertexId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Random jittered lattice with optional extra chords; `one_way` adds
/// directed-only shortcut edges so the network loses symmetry.
fn random_network(side: usize, extra_edges: usize, one_way: usize, seed: u64) -> RoadNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = RoadNetworkBuilder::new();
    let mut ids = Vec::new();
    for y in 0..side {
        for x in 0..side {
            ids.push(b.add_vertex(
                x as f64 * 100.0 + rng.gen_range(-20.0..20.0),
                y as f64 * 100.0 + rng.gen_range(-20.0..20.0),
            ));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let u = ids[y * side + x];
            if x + 1 < side {
                b.add_bidirectional_edge(u, ids[y * side + x + 1], rng.gen_range(80.0..200.0));
            }
            if y + 1 < side {
                b.add_bidirectional_edge(u, ids[(y + 1) * side + x], rng.gen_range(80.0..200.0));
            }
        }
    }
    for _ in 0..extra_edges {
        let u = ids[rng.gen_range(0..ids.len())];
        let v = ids[rng.gen_range(0..ids.len())];
        if u != v {
            b.add_bidirectional_edge(u, v, rng.gen_range(50.0..400.0));
        }
    }
    for _ in 0..one_way {
        let u = ids[rng.gen_range(0..ids.len())];
        let v = ids[rng.gen_range(0..ids.len())];
        if u != v {
            b.add_directed_edge(u, v, rng.gen_range(30.0..150.0));
        }
    }
    b.build().unwrap()
}

fn oracle_over(net: RoadNetwork, landmarks: usize) -> DistanceOracle {
    let net = Arc::new(net);
    let grid = Arc::new(GridIndex::build(&net, GridConfig::with_dimensions(3, 3)));
    if landmarks > 0 {
        let lm = Arc::new(LandmarkIndex::build(&net, landmarks, VertexId(0)));
        DistanceOracle::with_landmarks(net, grid, lm)
    } else {
        DistanceOracle::new(net, grid)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn alt_astar_equals_dijkstra(
        seed in 0u64..10_000,
        side in 3usize..7,
        extra in 0usize..8,
        one_way in 0usize..5,
        landmarks in 1usize..6,
    ) {
        let net = random_network(side, extra, one_way, seed);
        let grid = GridIndex::build(&net, GridConfig::with_dimensions(3, 3));
        let lm = LandmarkIndex::build(&net, landmarks, VertexId(0));
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xa17);
        for _ in 0..25 {
            let u = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let v = VertexId(rng.gen_range(0..net.num_vertices() as u32));
            let d = dijkstra::distance(&net, u, v);
            let a = astar::distance_with_landmarks(&net, u, v, Some(&grid), Some(&lm));
            match (d, a) {
                (Some(d), Some(a)) => prop_assert!(
                    (d - a).abs() < 1e-6,
                    "dijkstra {d} vs ALT-A* {a} for {u}->{v} (one_way={one_way})"
                ),
                (None, None) => {}
                other => return Err(TestCaseError::fail(format!(
                    "reachability mismatch {other:?} for {u}->{v}"
                ))),
            }
            // The ALT bound itself must stay admissible.
            if let Some(d) = d {
                prop_assert!(lm.lower_bound(u, v) <= d + 1e-9);
            }
        }
    }

    #[test]
    fn batched_distances_match_point_queries(
        seed in 0u64..10_000,
        side in 3usize..7,
        one_way in 0usize..5,
        num_targets in 1usize..20,
    ) {
        let net = random_network(side, 3, one_way, seed);
        let n = net.num_vertices() as u32;
        let batched = oracle_over(net.clone(), 4);
        let reference = oracle_over(net, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xb47c);
        let source = VertexId(rng.gen_range(0..n));
        let targets: Vec<VertexId> =
            (0..num_targets).map(|_| VertexId(rng.gen_range(0..n))).collect();
        let batch = batched.distances_from(source, &targets);
        prop_assert_eq!(batch.len(), targets.len());
        for (t, d) in targets.iter().zip(&batch) {
            let exact = reference.distance(source, *t);
            prop_assert!(
                (d - exact).abs() < 1e-6 || (d.is_infinite() && exact.is_infinite()),
                "batched {d} vs point {exact} for {source}->{t}"
            );
        }
        // Batching never issues more searches than targets (large miss sets
        // collapse into one multi-target search; up to 3 scattered misses
        // are answered with goal-directed point queries).
        prop_assert!(batched.exact_computations() <= targets.len() as u64);
        // Repeating the batch is answered from the cache.
        let before = batched.exact_computations();
        let again = batched.distances_from(source, &targets);
        prop_assert_eq!(&batch, &again);
        prop_assert_eq!(batched.exact_computations(), before);
    }

    #[test]
    fn oracle_is_exact_on_directed_networks(
        seed in 0u64..10_000,
        side in 3usize..6,
        one_way in 1usize..6,
    ) {
        let net = random_network(side, 2, one_way, seed);
        let n = net.num_vertices() as u32;
        let oracle = oracle_over(net.clone(), 3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xd1a);
        for _ in 0..20 {
            let u = VertexId(rng.gen_range(0..n));
            let v = VertexId(rng.gen_range(0..n));
            // Query both directions in both orders: a wrong symmetric
            // mirror would poison the second query.
            let forward = oracle.distance(u, v);
            let backward = oracle.distance(v, u);
            let df = dijkstra::distance(&net, u, v).unwrap_or(f64::INFINITY);
            let db = dijkstra::distance(&net, v, u).unwrap_or(f64::INFINITY);
            prop_assert!(
                (forward - df).abs() < 1e-6 || (forward.is_infinite() && df.is_infinite()),
                "forward {forward} vs {df} for {u}->{v}"
            );
            prop_assert!(
                (backward - db).abs() < 1e-6 || (backward.is_infinite() && db.is_infinite()),
                "backward {backward} vs {db} for {v}->{u}"
            );
            // Lower bound admissibility with landmarks on directed nets.
            prop_assert!(oracle.lower_bound(u, v) <= df + 1e-9);
        }
    }
}
