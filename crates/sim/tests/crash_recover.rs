//! Crash-recovery at simulator scale: a journaled day is killed mid-run
//! and recovered into a bit-identical service.
//!
//! The simulator drives every admission path the journal covers — vehicle
//! placement, submits, responds, location updates, stop arrivals, offer
//! ticks, session pruning and traffic epochs — so replaying its log is the
//! strongest end-to-end exercise of `RideService::recover` short of the
//! chaos proptest. Fingerprints (not raw stats) are compared: the
//! fingerprint hashes the full world + ledger + sessions + event-log
//! state, while `runtime_job_panics` is a process-local counter that
//! legitimately differs across instances.

use ptrider_core::{EngineConfig, GridConfig, JournalConfig, PtRider, RideService, ServiceConfig};
use ptrider_datagen::{CityConfig, TripConfig, Workload, WorkloadConfig};
use ptrider_sim::{SimConfig, Simulator, TrafficSimConfig};
use std::path::PathBuf;

fn workload(seed: u64) -> Workload {
    Workload::generate(WorkloadConfig {
        city: CityConfig::tiny(seed),
        num_vehicles: 10,
        trips: TripConfig {
            num_trips: 50,
            day_secs: 1200.0,
            seed,
            ..TripConfig::default()
        },
        seed,
    })
}

fn sim_config() -> SimConfig {
    SimConfig {
        dt_secs: 5.0,
        start_secs: 0.0,
        end_secs: 1200.0,
        grid: GridConfig::with_dimensions(4, 4),
        traffic: Some(TrafficSimConfig {
            period_secs: 300.0,
            ..TrafficSimConfig::default()
        }),
        seed: 9,
        ..SimConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptrider-sim-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn simulated_day_recovers_bit_identically_from_the_journal() {
    let seed = 20090529u64;
    let dir = temp_dir("day-recover");
    let config = sim_config();
    let engine_config = EngineConfig::paper_defaults();
    let mut sim = Simulator::new_with_journal(
        workload(seed),
        engine_config,
        config,
        &dir,
        JournalConfig::default(),
    )
    .expect("journal dir is writable");

    // Half a day, with a mid-run snapshot so recovery exercises the
    // snapshot + tail path rather than a from-genesis replay.
    for _ in 0..120 {
        sim.step();
    }
    sim.service().snapshot().expect("snapshot written");
    for _ in 0..120 {
        sim.step();
    }
    let reference = sim.service().fingerprint();
    let seq = sim.service().journal_next_seq().expect("journal attached");
    let stats = sim.service().stats();
    assert!(stats.requests_submitted > 0, "the day did real work");
    assert!(stats.traffic_epochs > 0, "traffic epochs were journaled");
    drop(sim);

    // Recovery: a fresh engine built exactly like the simulator builds its
    // own (same network, grid, matcher), fed the journal directory.
    let Workload { network, .. } = workload(seed);
    let mut engine = PtRider::new(network, config.grid, engine_config);
    engine.set_matcher(config.matcher);
    let recovered = RideService::recover(
        engine,
        ServiceConfig::default(),
        &dir,
        JournalConfig::default(),
    )
    .expect("recovery succeeds");

    assert_eq!(recovered.journal_next_seq(), Some(seq));
    assert_eq!(
        recovered.fingerprint(),
        reference,
        "recovered state is bit-identical to the pre-crash service"
    );
    // Spot-check a few ledger dimensions directly for a readable failure
    // mode should the fingerprint ever regress.
    let rstats = recovered.stats();
    assert_eq!(rstats.requests_submitted, stats.requests_submitted);
    assert_eq!(rstats.offers_confirmed, stats.offers_confirmed);
    assert_eq!(rstats.pickups, stats.pickups);
    assert_eq!(rstats.dropoffs, stats.dropoffs);
    assert_eq!(rstats.traffic_epochs, stats.traffic_epochs);
    assert_eq!(recovered.num_vehicles(), 10);
    let _ = std::fs::remove_dir_all(&dir);
}
