//! Simulation statistics — the numbers the demo's website panel displays
//! (current time, average response time, average sharing rate) plus the
//! per-request outcomes needed by the experiment harness.

use ptrider_core::{EngineStats, HistogramSnapshot, RequestId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Submit-latency percentile summary, pulled from the engine's telemetry
/// histograms (all values in milliseconds). Present in a report only when
/// the engine runs at the `Spans` telemetry level.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Requests the summary covers.
    pub count: u64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency in milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Maximum latency in milliseconds.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarises a nanosecond-valued latency histogram snapshot.
    pub fn from_snapshot(snap: &HistogramSnapshot) -> LatencySummary {
        let ms = |ns: u64| ns as f64 * 1e-6;
        LatencySummary {
            count: snap.count(),
            mean_ms: snap.mean() * 1e-6,
            p50_ms: ms(snap.quantile(0.5)),
            p90_ms: ms(snap.quantile(0.9)),
            p99_ms: ms(snap.quantile(0.99)),
            max_ms: ms(snap.max()),
        }
    }
}

/// Lifecycle record of one simulated request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// The request id.
    pub id: RequestId,
    /// Submission time in seconds.
    pub submitted_at: f64,
    /// Number of riders.
    pub riders: u32,
    /// Number of options the system returned.
    pub options_offered: usize,
    /// Direct shortest-path distance of the trip.
    pub direct_dist: f64,
    /// Planned pickup time (seconds after submission) of the chosen option,
    /// if one was chosen.
    pub planned_pickup_secs: Option<f64>,
    /// Agreed price, if an option was chosen.
    pub price: Option<f64>,
    /// Actual pickup time (seconds since simulation start), once picked up.
    pub picked_up_at: Option<f64>,
    /// Drop-off time, once completed.
    pub dropped_off_at: Option<f64>,
    /// Distance travelled while on board, once completed.
    pub onboard_dist: Option<f64>,
    /// Whether the riders shared the vehicle with another request at any
    /// point while on board.
    pub shared: bool,
}

impl RequestOutcome {
    /// `true` once the trip finished.
    pub fn completed(&self) -> bool {
        self.dropped_off_at.is_some()
    }

    /// Waiting time from submission to actual pickup, if picked up.
    pub fn waiting_secs(&self) -> Option<f64> {
        self.picked_up_at.map(|t| t - self.submitted_at)
    }

    /// Detour ratio (on-board distance / direct distance), if completed.
    pub fn detour_ratio(&self) -> Option<f64> {
        match (self.onboard_dist, self.direct_dist) {
            (Some(o), d) if d > 0.0 => Some(o / d),
            _ => None,
        }
    }
}

/// Aggregate simulation report (the statistics panel of Fig. 4(c)).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Simulated time at the end of the run, in seconds.
    pub simulated_secs: f64,
    /// Requests submitted.
    pub requests: u64,
    /// Requests that received at least one option.
    pub answered: u64,
    /// Requests whose rider chose an option (assigned to a vehicle).
    pub assigned: u64,
    /// Completed trips (drop-off served).
    pub completed: u64,
    /// Completed trips that shared the vehicle with another request.
    pub shared_trips: u64,
    /// Average number of options per request.
    pub avg_options: f64,
    /// Average wall-clock matching latency per request, in milliseconds.
    pub avg_response_ms: f64,
    /// Average waiting time (submission to actual pickup) in seconds, over
    /// picked-up requests.
    pub avg_waiting_secs: f64,
    /// Average price over assigned requests.
    pub avg_price: f64,
    /// Average detour ratio (on-board / direct distance) over completed trips.
    pub avg_detour_ratio: f64,
    /// Sharing rate: fraction of completed trips that were shared.
    pub sharing_rate: f64,
    /// Fraction of requests that received at least one option.
    pub answer_rate: f64,
    /// Total distance driven by the fleet, in metres.
    pub fleet_distance_m: f64,
    /// Engine-level statistics (matcher work counters etc.).
    pub engine: EngineStats,
    /// Wall-clock submit latency percentiles from the engine's telemetry
    /// (`None` unless the engine runs at the `Spans` level). In an
    /// interval-report series this covers only the requests of the
    /// interval (a delta snapshot); in a final report, the whole run.
    pub submit_latency: Option<LatencySummary>,
}

impl SimulationReport {
    /// Builds the aggregate report from per-request outcomes and engine
    /// statistics.
    pub fn from_outcomes(
        simulated_secs: f64,
        outcomes: &HashMap<RequestId, RequestOutcome>,
        fleet_distance_m: f64,
        engine: EngineStats,
    ) -> Self {
        let requests = outcomes.len() as u64;
        let answered = outcomes.values().filter(|o| o.options_offered > 0).count() as u64;
        let assigned = outcomes.values().filter(|o| o.price.is_some()).count() as u64;
        let completed_outcomes: Vec<&RequestOutcome> =
            outcomes.values().filter(|o| o.completed()).collect();
        let completed = completed_outcomes.len() as u64;
        let shared_trips = completed_outcomes.iter().filter(|o| o.shared).count() as u64;

        let avg = |sum: f64, n: u64| if n == 0 { 0.0 } else { sum / n as f64 };
        let avg_options = avg(
            outcomes.values().map(|o| o.options_offered as f64).sum(),
            requests,
        );
        let picked: Vec<f64> = outcomes.values().filter_map(|o| o.waiting_secs()).collect();
        let avg_waiting_secs = avg(picked.iter().sum(), picked.len() as u64);
        let prices: Vec<f64> = outcomes.values().filter_map(|o| o.price).collect();
        let avg_price = avg(prices.iter().sum(), prices.len() as u64);
        let detours: Vec<f64> = completed_outcomes
            .iter()
            .filter_map(|o| o.detour_ratio())
            .collect();
        let avg_detour_ratio = avg(detours.iter().sum(), detours.len() as u64);

        SimulationReport {
            simulated_secs,
            requests,
            answered,
            assigned,
            completed,
            shared_trips,
            avg_options,
            avg_response_ms: engine.avg_response_secs() * 1000.0,
            avg_waiting_secs,
            avg_price,
            avg_detour_ratio,
            sharing_rate: if completed == 0 {
                0.0
            } else {
                shared_trips as f64 / completed as f64
            },
            answer_rate: if requests == 0 {
                0.0
            } else {
                answered as f64 / requests as f64
            },
            fleet_distance_m,
            engine,
            submit_latency: None,
        }
    }

    /// Attaches a submit-latency summary (builder style; used by the
    /// simulator when the engine's telemetry runs at the `Spans` level).
    pub fn with_submit_latency(mut self, latency: LatencySummary) -> Self {
        self.submit_latency = Some(latency);
        self
    }

    /// Renders the full report as a JSON object (hand-rendered: the build
    /// environment has no serde_json; every field is numeric so no string
    /// escaping is needed).
    pub fn to_json(&self) -> String {
        let w = &self.engine.match_work;
        let mut json = format!(
            "{{\n  \"simulated_secs\": {},\n  \"requests\": {},\n  \"answered\": {},\n  \
             \"assigned\": {},\n  \"completed\": {},\n  \"shared_trips\": {},\n  \
             \"avg_options\": {},\n  \"avg_response_ms\": {},\n  \"avg_waiting_secs\": {},\n  \
             \"avg_price\": {},\n  \"avg_detour_ratio\": {},\n  \"sharing_rate\": {},\n  \
             \"answer_rate\": {},\n  \"fleet_distance_m\": {},\n  \"engine\": {{\n    \
             \"requests_submitted\": {},\n    \"requests_with_options\": {},\n    \
             \"options_returned\": {},\n    \"requests_chosen\": {},\n    \
             \"assignments_failed\": {},\n    \"pickups\": {},\n    \"dropoffs\": {},\n    \
             \"location_updates\": {},\n    \"total_match_secs\": {},\n    \"match_work\": {{\n      \
             \"vehicles_considered\": {},\n      \"vehicles_verified\": {},\n      \
             \"vehicles_pruned\": {},\n      \"cells_visited\": {},\n      \
             \"exact_distance_computations\": {},\n      \"candidates_generated\": {}\n    }}\n  }}\n}}",
            self.simulated_secs,
            self.requests,
            self.answered,
            self.assigned,
            self.completed,
            self.shared_trips,
            self.avg_options,
            self.avg_response_ms,
            self.avg_waiting_secs,
            self.avg_price,
            self.avg_detour_ratio,
            self.sharing_rate,
            self.answer_rate,
            self.fleet_distance_m,
            self.engine.requests_submitted,
            self.engine.requests_with_options,
            self.engine.options_returned,
            self.engine.requests_chosen,
            self.engine.assignments_failed,
            self.engine.pickups,
            self.engine.dropoffs,
            self.engine.location_updates,
            self.engine.total_match_secs,
            w.vehicles_considered,
            w.vehicles_verified,
            w.vehicles_pruned,
            w.cells_visited,
            w.exact_distance_computations,
            w.candidates_generated,
        );
        match &self.submit_latency {
            Some(l) => {
                let closing = json
                    .rfind('}')
                    .expect("the rendered report always ends with a brace");
                json.truncate(closing);
                json.push_str(&format!(
                    ",\n  \"submit_latency\": {{\n    \"count\": {},\n    \"mean_ms\": {},\n    \
                     \"p50_ms\": {},\n    \"p90_ms\": {},\n    \"p99_ms\": {},\n    \
                     \"max_ms\": {}\n  }}\n}}",
                    l.count, l.mean_ms, l.p50_ms, l.p90_ms, l.p99_ms, l.max_ms
                ));
                json
            }
            None => json,
        }
    }

    /// One-line human-readable summary (used by the example binaries).
    pub fn summary(&self) -> String {
        let mut line = format!(
            "t={:.0}s requests={} answered={:.1}% assigned={} completed={} \
             avg_options={:.2} avg_response={:.2}ms avg_wait={:.0}s sharing_rate={:.1}%",
            self.simulated_secs,
            self.requests,
            self.answer_rate * 100.0,
            self.assigned,
            self.completed,
            self.avg_options,
            self.avg_response_ms,
            self.avg_waiting_secs,
            self.sharing_rate * 100.0
        );
        if let Some(l) = &self.submit_latency {
            line.push_str(&format!(
                " submit_p50={:.2}ms submit_p99={:.2}ms",
                l.p50_ms, l.p99_ms
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64) -> RequestOutcome {
        RequestOutcome {
            id: RequestId(id),
            submitted_at: 10.0,
            riders: 1,
            options_offered: 2,
            direct_dist: 1000.0,
            planned_pickup_secs: Some(60.0),
            price: Some(3.0),
            picked_up_at: Some(100.0),
            dropped_off_at: Some(200.0),
            onboard_dist: Some(1200.0),
            shared: id.is_multiple_of(2),
        }
    }

    #[test]
    fn outcome_accessors() {
        let o = outcome(1);
        assert!(o.completed());
        assert_eq!(o.waiting_secs(), Some(90.0));
        assert!((o.detour_ratio().unwrap() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn report_aggregates_outcomes() {
        let mut outcomes = HashMap::new();
        for i in 0..4u64 {
            outcomes.insert(RequestId(i), outcome(i));
        }
        // One request with no options and no assignment.
        outcomes.insert(
            RequestId(99),
            RequestOutcome {
                id: RequestId(99),
                submitted_at: 5.0,
                riders: 2,
                options_offered: 0,
                direct_dist: 500.0,
                planned_pickup_secs: None,
                price: None,
                picked_up_at: None,
                dropped_off_at: None,
                onboard_dist: None,
                shared: false,
            },
        );
        let report =
            SimulationReport::from_outcomes(3600.0, &outcomes, 50_000.0, EngineStats::default());
        assert_eq!(report.requests, 5);
        assert_eq!(report.answered, 4);
        assert_eq!(report.assigned, 4);
        assert_eq!(report.completed, 4);
        assert_eq!(report.shared_trips, 2);
        assert!((report.sharing_rate - 0.5).abs() < 1e-12);
        assert!((report.answer_rate - 0.8).abs() < 1e-12);
        assert!((report.avg_options - 8.0 / 5.0).abs() < 1e-12);
        assert!((report.avg_waiting_secs - 90.0).abs() < 1e-12);
        assert!((report.avg_price - 3.0).abs() < 1e-12);
        assert!((report.avg_detour_ratio - 1.2).abs() < 1e-12);
        assert_eq!(report.fleet_distance_m, 50_000.0);
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn empty_report_has_zero_rates() {
        let report =
            SimulationReport::from_outcomes(0.0, &HashMap::new(), 0.0, EngineStats::default());
        assert_eq!(report.requests, 0);
        assert_eq!(report.sharing_rate, 0.0);
        assert_eq!(report.answer_rate, 0.0);
    }
}
