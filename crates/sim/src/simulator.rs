//! The event-driven day simulator.
//!
//! Each step of length `dt` performs the loop of Fig. 2, driven through the
//! typed session front door ([`RideService`]):
//!
//! 1. every trip of the workload whose submission time falls inside the step
//!    is submitted to the service; the simulated rider picks one of the
//!    offered options with the configured [`ChoicePolicy`] and responds to
//!    the session (`respond`, with `Decision::Choose` / `Decision::Decline`);
//! 2. every vehicle drives `speed · dt` metres along the shortest path to the
//!    next stop of its best schedule (or roams randomly when idle), issuing
//!    location updates when it crosses vertices and pickup / drop-off updates
//!    when it reaches a stop;
//! 3. the offer clock ticks ([`RideService::tick`]), expiring any offer a
//!    rider walked away from.

use crate::choice::ChoicePolicy;
use crate::motion::Motion;
use crate::report::{LatencySummary, RequestOutcome, SimulationReport};
use ptrider_core::{
    Decision, EngineConfig, GridConfig, Journal, JournalConfig, JournalError, MatcherKind,
    OptionId, PtRider, RideService, StopKind, TrafficModel,
};
use ptrider_datagen::{CongestionConfig, CongestionProfile, TimedTrip, Workload};
use ptrider_roadnet::RoadNetwork;
use ptrider_vehicles::{RequestId, StopEvent, VehicleId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Congestion mode of the simulator: a rush-hour profile feeds traffic
/// epochs into the engine as the simulated day advances.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficSimConfig {
    /// The rush-hour profile (hotspot cells, peak times, slowdowns).
    pub profile: CongestionConfig,
    /// How often a fresh epoch is applied, in simulated seconds. Each
    /// application goes through [`RideService::apply_traffic_update`] —
    /// metric swap, CH repair, cache invalidation — on the writer path.
    pub period_secs: f64,
}

impl Default for TrafficSimConfig {
    fn default() -> Self {
        TrafficSimConfig {
            profile: CongestionConfig::default(),
            // One epoch per simulated 5 minutes: frequent enough that the
            // factor curves stay faithful, coarse enough that the
            // customization cost stays a rounding error of a step.
            period_secs: 300.0,
        }
    }
}

/// Simulator configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Step length in seconds.
    pub dt_secs: f64,
    /// Simulation start time in seconds (trips before this are skipped).
    pub start_secs: f64,
    /// Simulation end time in seconds.
    pub end_secs: f64,
    /// Rider choice policy.
    pub choice: ChoicePolicy,
    /// Matching algorithm to use.
    pub matcher: MatcherKind,
    /// Grid-index dimensions for the road network.
    pub grid: GridConfig,
    /// Whether idle vehicles roam randomly (Section 4: vehicles follow the
    /// current road segment and pick a random segment at intersections).
    pub idle_roaming: bool,
    /// Cross-check mode: every request is additionally matched with *all*
    /// matching algorithms and the simulator panics if their option sets
    /// disagree. Expensive; intended for validation runs and tests.
    pub cross_check: bool,
    /// Burst arrival mode: all trips due within one step are submitted as
    /// **one batch** through [`PtRider::submit_batch_greedy`] — the
    /// engine's conflict-graph admission (or the sequential reference,
    /// per [`EngineConfig::batch_admission`]) — instead of one engine call
    /// per trip. Models dispatch-window batching in peak periods; the
    /// batch is stamped with the step's clock.
    pub burst_admission: bool,
    /// Congestion mode: when set, a rush-hour profile applies a traffic
    /// epoch every `period_secs` of simulated time, so every scenario the
    /// simulator can run (steady stream, bursts, full days) becomes
    /// time-varying. `None` (the default) keeps the free-flow metric.
    pub traffic: Option<TrafficSimConfig>,
    /// Random seed for rider choices and idle roaming.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            dt_secs: 5.0,
            start_secs: 0.0,
            end_secs: 3600.0,
            choice: ChoicePolicy::default(),
            matcher: MatcherKind::DualSide,
            grid: GridConfig::with_dimensions(16, 16),
            idle_roaming: true,
            cross_check: false,
            burst_admission: false,
            traffic: None,
            seed: 42,
        }
    }
}

/// The simulator: a [`RideService`] driven by a workload.
pub struct Simulator {
    service: RideService,
    net: Arc<RoadNetwork>,
    config: SimConfig,
    trips: Vec<TimedTrip>,
    next_trip: usize,
    clock: f64,
    rng: ChaCha8Rng,
    motions: HashMap<VehicleId, Motion>,
    outcomes: HashMap<RequestId, RequestOutcome>,
    fleet_distance: f64,
    /// Counter for reserved outcome ids of trips the service rejected
    /// outright (no session, no engine-issued request id).
    next_invalid: u64,
    /// Congestion mode state: the profile, the reusable model buffer and
    /// the next epoch instant.
    traffic: Option<(CongestionProfile, TrafficModel)>,
    next_traffic_at: f64,
}

impl Simulator {
    /// Builds a simulator from a workload, an engine configuration and a
    /// simulator configuration.
    pub fn new(workload: Workload, engine_config: EngineConfig, config: SimConfig) -> Self {
        let Workload {
            network,
            vehicle_locations,
            trips,
            ..
        } = workload;
        // Build and populate the sequential engine, then hand it to the
        // session front door (the supported migration path).
        let mut engine = PtRider::new(network, config.grid, engine_config);
        engine.set_matcher(config.matcher);
        let net = engine.oracle().network_arc();
        let mut motions = HashMap::new();
        for loc in vehicle_locations {
            let id = engine.add_vehicle(loc);
            motions.insert(id, Motion::new());
        }
        let service = RideService::from_engine(engine);
        Self::finish_build(service, net, config, trips, motions)
    }

    /// Builds a simulator whose service journals every admission to `dir`,
    /// so a crashed run can be recovered with [`RideService::recover`]
    /// over an identically built fresh engine.
    ///
    /// The journal attaches **before** the fleet is placed: vehicle adds go
    /// through the journaled service, so recovery reconstructs the fleet
    /// from the log rather than relying on the caller to re-place it.
    ///
    /// # Errors
    /// Propagates [`JournalError`] from creating the journal files in `dir`.
    pub fn new_with_journal(
        workload: Workload,
        engine_config: EngineConfig,
        config: SimConfig,
        dir: impl AsRef<std::path::Path>,
        journal_config: JournalConfig,
    ) -> Result<Self, JournalError> {
        let journal = Journal::create(dir, journal_config)?;
        let Workload {
            network,
            vehicle_locations,
            trips,
            ..
        } = workload;
        let mut engine = PtRider::new(network, config.grid, engine_config);
        engine.set_matcher(config.matcher);
        let net = engine.oracle().network_arc();
        let service = RideService::from_engine(engine).with_journal(journal);
        let mut motions = HashMap::new();
        for loc in vehicle_locations {
            let id = service.add_vehicle(loc);
            motions.insert(id, Motion::new());
        }
        Ok(Self::finish_build(service, net, config, trips, motions))
    }

    fn finish_build(
        service: RideService,
        net: Arc<RoadNetwork>,
        config: SimConfig,
        trips: Vec<TimedTrip>,
        motions: HashMap<VehicleId, Motion>,
    ) -> Self {
        let next_trip = trips.partition_point(|t| t.time_secs < config.start_secs);
        let traffic = config.traffic.map(|t| {
            let profile = CongestionProfile::build(&net, t.profile);
            let model = TrafficModel::free_flow(&net);
            (profile, model)
        });
        let mut sim = Simulator {
            service,
            net,
            clock: config.start_secs,
            config,
            trips,
            next_trip,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            motions,
            outcomes: HashMap::new(),
            fleet_distance: 0.0,
            next_invalid: 0,
            traffic,
            next_traffic_at: config.start_secs,
        };
        // Congestion mode starts on the epoch for the start-of-day state,
        // so even the first step's matches see time-appropriate traffic.
        sim.apply_due_traffic();
        sim
    }

    /// Applies a congestion epoch when one is due and schedules the next.
    fn apply_due_traffic(&mut self) {
        let Some(period) = self.config.traffic.map(|t| t.period_secs) else {
            return;
        };
        let Some((profile, model)) = self.traffic.as_mut() else {
            return;
        };
        if self.clock + 1e-9 < self.next_traffic_at {
            return;
        }
        profile.update_model(&self.net, self.clock, model);
        self.service.apply_traffic_update(model, self.clock);
        self.next_traffic_at = self.clock + period.max(1e-3);
    }

    /// The ride service driven by the simulator.
    pub fn service(&self) -> &RideService {
        &self.service
    }

    /// Current simulated time in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Per-request outcomes recorded so far.
    pub fn outcomes(&self) -> &HashMap<RequestId, RequestOutcome> {
        &self.outcomes
    }

    /// Runs the simulation to `end_secs` and returns the report.
    pub fn run(&mut self) -> SimulationReport {
        while self.clock < self.config.end_secs {
            self.step();
        }
        self.report()
    }

    /// Runs the simulation to `end_secs`, taking a snapshot report every
    /// `interval_secs` of simulated time — the evolving statistics panel of
    /// the demo's website interface. Returns the final report and the
    /// `(time, report)` series.
    ///
    /// # Panics
    /// Panics if `interval_secs` is not strictly positive.
    pub fn run_with_interval_reports(
        &mut self,
        interval_secs: f64,
    ) -> (SimulationReport, Vec<(f64, SimulationReport)>) {
        assert!(interval_secs > 0.0, "interval must be positive");
        let telemetry = self.service.telemetry();
        let spans = telemetry.spans_enabled();
        // Interval reports carry *delta* submit-latency summaries: the
        // percentiles of just the requests submitted since the previous
        // report, via `HistogramSnapshot::since`.
        let mut last_submit =
            spans.then(|| telemetry.stage_snapshot(ptrider_core::Stage::ServiceSubmit));
        let mut series = Vec::new();
        let mut next = self.clock + interval_secs;
        while self.clock < self.config.end_secs {
            self.step();
            if self.clock >= next {
                let mut report = self.report();
                if let Some(prev) = &last_submit {
                    let now = self
                        .service
                        .telemetry()
                        .stage_snapshot(ptrider_core::Stage::ServiceSubmit);
                    report =
                        report.with_submit_latency(LatencySummary::from_snapshot(&now.since(prev)));
                    last_submit = Some(now);
                }
                series.push((self.clock, report));
                next += interval_secs;
            }
        }
        (self.report(), series)
    }

    /// Builds the report for the current state. When the engine's
    /// telemetry runs at the `Spans` level, the report carries the
    /// run-cumulative submit-latency percentiles.
    pub fn report(&self) -> SimulationReport {
        let report = SimulationReport::from_outcomes(
            self.clock - self.config.start_secs,
            &self.outcomes,
            self.fleet_distance,
            self.service.stats(),
        );
        let telemetry = self.service.telemetry();
        if telemetry.spans_enabled() {
            let snap = telemetry.stage_snapshot(ptrider_core::Stage::ServiceSubmit);
            report.with_submit_latency(LatencySummary::from_snapshot(&snap))
        } else {
            report
        }
    }

    /// Advances the simulation by one step of `dt_secs`.
    pub fn step(&mut self) {
        let step_end = self.clock + self.config.dt_secs;
        // Congestion mode: refresh the metric before matching the step's
        // trips, so their skylines price the current traffic state.
        self.apply_due_traffic();
        self.submit_due_trips(step_end);
        self.move_vehicles();
        self.clock = step_end;
        // Expire any offer a simulated rider left unanswered (riders here
        // respond synchronously, so this normally expires nothing — but it
        // keeps the offer clock honest under every TTL configuration), then
        // drop the resolved sessions: the simulator keeps its own per-request
        // outcomes, and without pruning a day-scale run would retain one dead
        // session per trip and rescan them all on every tick.
        self.service.tick(self.clock);
        self.service.prune_resolved();
    }

    /// Submits every trip whose time falls inside `[clock, step_end)` and
    /// lets the simulated rider choose.
    fn submit_due_trips(&mut self, step_end: f64) {
        if self.config.burst_admission {
            self.submit_due_trips_burst(step_end);
            return;
        }
        while self.next_trip < self.trips.len() && self.trips[self.next_trip].time_secs < step_end {
            let trip = self.trips[self.next_trip];
            self.next_trip += 1;
            self.submit_trip(&trip);
        }
    }

    /// Burst arrival mode: the step's due trips go through the engine's
    /// batch admission as one burst, with the [`ChoicePolicy`] acting as
    /// the per-request selector in greedy order.
    fn submit_due_trips_burst(&mut self, step_end: f64) {
        let start = self.next_trip;
        while self.next_trip < self.trips.len() && self.trips[self.next_trip].time_secs < step_end {
            self.next_trip += 1;
        }
        if start == self.next_trip {
            return;
        }
        // Degenerate trips are skipped exactly as the per-request path does.
        let batch: Vec<TimedTrip> = self.trips[start..self.next_trip]
            .iter()
            .filter(|t| t.origin != t.destination)
            .copied()
            .collect();
        if batch.is_empty() {
            return;
        }
        if self.config.cross_check {
            for trip in &batch {
                self.cross_check_matchers(trip);
            }
        }
        let specs: Vec<(ptrider_core::VertexId, ptrider_core::VertexId, u32)> = batch
            .iter()
            .map(|t| (t.origin, t.destination, t.riders))
            .collect();
        let now = self.clock;
        let choice = self.config.choice;
        let service = &self.service;
        let rng = &mut self.rng;
        let outcomes =
            service.submit_batch_greedy(&specs, now, |options| choice.choose_index(options, rng));
        for (trip, outcome) in batch.iter().zip(outcomes) {
            let direct = self
                .service
                .oracle()
                .distance(trip.origin, trip.destination);
            let mut record = RequestOutcome {
                id: outcome.request,
                submitted_at: trip.time_secs,
                riders: trip.riders,
                options_offered: outcome.options.len(),
                direct_dist: direct,
                planned_pickup_secs: None,
                price: None,
                picked_up_at: None,
                dropped_off_at: None,
                onboard_dist: None,
                shared: false,
            };
            if let Some(k) = outcome.chosen {
                record.planned_pickup_secs = Some(outcome.options[k].pickup_secs);
                record.price = Some(outcome.options[k].price);
            }
            self.outcomes.insert(outcome.request, record);
        }
    }

    fn submit_trip(&mut self, trip: &TimedTrip) {
        if trip.origin == trip.destination {
            return;
        }
        if self.config.cross_check {
            self.cross_check_matchers(trip);
        }
        let offer =
            match self
                .service
                .submit(trip.origin, trip.destination, trip.riders, trip.time_secs)
            {
                Ok(offer) => offer,
                // Invalid trip (e.g. unreachable destination on a degenerate
                // network): no session exists, but the trip still counts in
                // the report with zero options — matching both the
                // pre-service facade (which allocated an id and returned no
                // options) and the burst arrival mode (whose batch admission
                // records every spec). Reserved ids from the top of the
                // space keep these synthetic outcomes clear of engine-issued
                // request ids.
                Err(_) => {
                    let id = RequestId(u64::MAX - self.next_invalid);
                    self.next_invalid += 1;
                    let direct =
                        if self.net.contains(trip.origin) && self.net.contains(trip.destination) {
                            self.service
                                .oracle()
                                .distance(trip.origin, trip.destination)
                        } else {
                            f64::INFINITY
                        };
                    self.outcomes.insert(
                        id,
                        RequestOutcome {
                            id,
                            submitted_at: trip.time_secs,
                            riders: trip.riders,
                            options_offered: 0,
                            direct_dist: direct,
                            planned_pickup_secs: None,
                            price: None,
                            picked_up_at: None,
                            dropped_off_at: None,
                            onboard_dist: None,
                            shared: false,
                        },
                    );
                    return;
                }
            };
        let direct = self
            .service
            .oracle()
            .distance(trip.origin, trip.destination);
        let mut outcome = RequestOutcome {
            id: offer.request,
            submitted_at: trip.time_secs,
            riders: trip.riders,
            options_offered: offer.options.len(),
            direct_dist: direct,
            planned_pickup_secs: None,
            price: None,
            picked_up_at: None,
            dropped_off_at: None,
            onboard_dist: None,
            shared: false,
        };
        if let Some(k) = self
            .config
            .choice
            .choose_index(&offer.options, &mut self.rng)
        {
            let decision = Decision::Choose(OptionId(k as u32));
            match self
                .service
                .respond(offer.session, decision, trip.time_secs)
            {
                Ok(Some(confirmation)) => {
                    outcome.planned_pickup_secs = Some(confirmation.option.pickup_secs);
                    outcome.price = Some(confirmation.option.price);
                    // No motion reset needed: `move_vehicle` re-routes as soon
                    // as the vehicle's next stop changes.
                }
                Ok(None) => unreachable!("a choose decision never resolves as a decline"),
                Err(_) => {
                    // Assignment raced with a state change; the session stays
                    // offered, so decline it — the request goes unserved in
                    // this simulation.
                    let _ = self
                        .service
                        .respond(offer.session, Decision::Decline, trip.time_secs);
                }
            }
        } else {
            let _ = self
                .service
                .respond(offer.session, Decision::Decline, trip.time_secs);
        }
        self.outcomes.insert(offer.request, outcome);
    }

    /// Matches the trip with every matching algorithm on the current state
    /// and panics if any two disagree (validation mode).
    fn cross_check_matchers(&self, trip: &TimedTrip) {
        use ptrider_core::Request;
        let request = Request::new(
            RequestId(u64::MAX),
            trip.origin,
            trip.destination,
            trip.riders,
            trip.time_secs,
        );
        let canonical = |options: &[ptrider_core::RideOption]| {
            let mut v: Vec<(u32, i64, i64)> = options
                .iter()
                .map(|o| {
                    (
                        o.vehicle.0,
                        (o.pickup_dist * 1e6).round() as i64,
                        (o.price * 1e9).round() as i64,
                    )
                })
                .collect();
            v.sort_unstable();
            v
        };
        type CanonicalOptions = Vec<(u32, i64, i64)>;
        let mut reference: Option<(MatcherKind, CanonicalOptions)> = None;
        for kind in MatcherKind::all() {
            let result = self
                .service
                .match_request_with(kind, &request)
                .expect("cross-check request is valid");
            let canon = canonical(&result.options);
            match &reference {
                None => reference = Some((kind, canon)),
                Some((ref_kind, ref_canon)) => {
                    assert_eq!(
                        ref_canon, &canon,
                        "matcher cross-check failed at t={:.1}s for trip {} -> {} ({} riders): \
                         {ref_kind} and {kind} disagree",
                        trip.time_secs, trip.origin, trip.destination, trip.riders
                    );
                }
            }
        }
    }

    /// Moves every vehicle by one step and serves reached stops.
    fn move_vehicles(&mut self) {
        let speed = self.service.config().speed.mps();
        let mut ids: Vec<VehicleId> = self.motions.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            self.move_vehicle(id, speed * self.config.dt_secs);
        }
    }

    fn move_vehicle(&mut self, id: VehicleId, mut budget: f64) {
        let mut guard = 0usize;
        while budget > 1e-9 {
            guard += 1;
            if guard > 10_000 {
                break;
            }
            let (location, next_stop) = self
                .service
                .with_vehicle(id, |v| (v.location(), v.next_stop()))
                .expect("simulated vehicle exists in the engine");

            if let Some(stop) = next_stop {
                if stop.location == location {
                    if let Ok(Some(event)) = self.service.vehicle_arrived(id) {
                        self.handle_stop_event(id, &event);
                    }
                    if let Some(m) = self.motions.get_mut(&id) {
                        m.clear();
                    }
                    continue;
                }
                let motion = self.motions.get_mut(&id).expect("motion exists");
                motion.route_to(&self.net, location, stop.location);
            } else if self.config.idle_roaming {
                let motion = self.motions.get_mut(&id).expect("motion exists");
                if motion.is_idle() {
                    motion.roam(&self.net, location, &mut self.rng);
                }
                if motion.is_idle() {
                    break;
                }
            } else {
                break;
            }

            let motion = self.motions.get_mut(&id).expect("motion exists");
            let (crossings, leftover) = motion.advance(budget);
            let consumed = budget - leftover;
            for crossing in &crossings {
                let _ = self
                    .service
                    .location_update(id, crossing.vertex, crossing.travelled);
                self.fleet_distance += crossing.travelled;
            }
            budget = leftover;
            if crossings.is_empty() && consumed <= 1e-9 {
                // No progress possible (degenerate path); stop to avoid spinning.
                break;
            }
        }
    }

    fn handle_stop_event(&mut self, vehicle: VehicleId, event: &StopEvent) {
        match event {
            StopEvent::PickedUp { request, .. } => {
                let now = self.clock;
                if let Some(outcome) = self.outcomes.get_mut(request) {
                    outcome.picked_up_at = Some(now);
                }
                // Sharing: if anyone else is on board, both parties share.
                let others: Vec<RequestId> = self
                    .service
                    .with_vehicle(vehicle, |v| {
                        v.requests()
                            .iter()
                            .filter(|r| !r.is_waiting() && r.id != *request)
                            .map(|r| r.id)
                            .collect()
                    })
                    .unwrap_or_default();
                if !others.is_empty() {
                    if let Some(outcome) = self.outcomes.get_mut(request) {
                        outcome.shared = true;
                    }
                    for other in others {
                        if let Some(outcome) = self.outcomes.get_mut(&other) {
                            outcome.shared = true;
                        }
                    }
                }
            }
            StopEvent::DroppedOff {
                request,
                onboard_distance,
            } => {
                if let Some(outcome) = self.outcomes.get_mut(&request.id) {
                    outcome.dropped_off_at = Some(self.clock);
                    outcome.onboard_dist = Some(*onboard_distance);
                }
            }
        }
    }

    /// Pending stops across the fleet (used by tests to check drainage).
    pub fn outstanding_stops(&self) -> usize {
        self.service.with_vehicles(|vehicles| {
            vehicles
                .map(|v| {
                    v.current_schedule()
                        .iter()
                        .filter(|s| s.kind == StopKind::Pickup || s.kind == StopKind::Dropoff)
                        .count()
                })
                .sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptrider_datagen::{CityConfig, TripConfig, Workload, WorkloadConfig};

    fn small_workload(seed: u64, trips: usize, vehicles: usize) -> Workload {
        Workload::generate(WorkloadConfig {
            city: CityConfig::tiny(seed),
            num_vehicles: vehicles,
            trips: TripConfig {
                num_trips: trips,
                day_secs: 1800.0,
                seed,
                ..TripConfig::default()
            },
            seed,
        })
    }

    fn sim_config(end: f64) -> SimConfig {
        SimConfig {
            dt_secs: 5.0,
            start_secs: 0.0,
            end_secs: end,
            grid: GridConfig::with_dimensions(4, 4),
            seed: 7,
            ..SimConfig::default()
        }
    }

    #[test]
    fn simulation_serves_requests_end_to_end() {
        let workload = small_workload(11, 60, 12);
        let mut sim = Simulator::new(workload, EngineConfig::paper_defaults(), sim_config(1800.0));
        let report = sim.run();
        assert_eq!(report.requests, 60);
        assert!(report.answered > 0, "some requests must receive options");
        assert!(report.assigned > 0, "some riders must choose an option");
        assert!(report.completed > 0, "some trips must complete");
        assert!(report.avg_options >= 1.0 - 1e-9 || report.answer_rate < 1.0);
        assert!(report.fleet_distance_m > 0.0);
        assert!(report.avg_response_ms >= 0.0);
        // Waiting time must be positive for picked-up requests.
        assert!(report.avg_waiting_secs >= 0.0);
    }

    #[test]
    fn completed_trips_respect_service_constraint() {
        let workload = small_workload(13, 40, 10);
        let engine_config = EngineConfig::paper_defaults().with_detour_factor(0.3);
        let mut sim = Simulator::new(workload, engine_config, sim_config(1800.0));
        let _ = sim.run();
        for outcome in sim.outcomes().values() {
            if let Some(ratio) = outcome.detour_ratio() {
                assert!(
                    ratio <= 1.3 + 1e-6,
                    "trip {:?} exceeded the service constraint: {ratio}",
                    outcome.id
                );
            }
        }
    }

    #[test]
    fn step_advances_clock_and_processes_trips_in_order() {
        let workload = small_workload(17, 30, 6);
        let mut sim = Simulator::new(workload, EngineConfig::paper_defaults(), sim_config(600.0));
        assert_eq!(sim.clock(), 0.0);
        sim.step();
        assert!((sim.clock() - 5.0).abs() < 1e-9);
        let before = sim.outcomes().len();
        sim.step();
        assert!(sim.outcomes().len() >= before);
    }

    #[test]
    fn interval_reports_track_cumulative_progress() {
        let workload = small_workload(19, 50, 10);
        let mut sim = Simulator::new(workload, EngineConfig::paper_defaults(), sim_config(900.0));
        let (final_report, series) = sim.run_with_interval_reports(300.0);
        assert_eq!(series.len(), 3);
        // Snapshots are taken at increasing times and counters never decrease.
        for pair in series.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1.requests <= pair[1].1.requests);
            assert!(pair[0].1.completed <= pair[1].1.completed);
        }
        let last = &series.last().unwrap().1;
        assert_eq!(last.requests, final_report.requests);
        assert_eq!(last.completed, final_report.completed);
    }

    #[test]
    fn burst_admission_serves_requests_end_to_end() {
        let workload = small_workload(29, 60, 12);
        let mut sim = Simulator::new(
            workload,
            EngineConfig::paper_defaults(),
            SimConfig {
                burst_admission: true,
                ..sim_config(1800.0)
            },
        );
        let report = sim.run();
        assert_eq!(report.requests, 60);
        assert!(report.answered > 0);
        assert!(report.assigned > 0);
        assert!(report.completed > 0);
        // The engine really went through batch admission.
        let stats = sim.service().stats();
        assert!(stats.batch_bursts > 0);
        assert_eq!(stats.batch_requests, 60);
        assert!(stats.batch_partitions >= stats.batch_bursts);
    }

    #[test]
    fn burst_admission_is_deterministic_given_seed() {
        let run = || {
            let workload = small_workload(31, 50, 10);
            let mut sim = Simulator::new(
                workload,
                EngineConfig::paper_defaults(),
                SimConfig {
                    burst_admission: true,
                    ..sim_config(1200.0)
                },
            );
            sim.run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.assigned, b.assigned);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shared_trips, b.shared_trips);
        assert!((a.fleet_distance_m - b.fleet_distance_m).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let workload = small_workload(23, 40, 8);
            let mut sim = Simulator::new(
                workload,
                EngineConfig::paper_defaults(),
                SimConfig {
                    seed,
                    ..sim_config(900.0)
                },
            );
            sim.run()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.assigned, b.assigned);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shared_trips, b.shared_trips);
        assert!((a.fleet_distance_m - b.fleet_distance_m).abs() < 1e-6);
    }

    #[test]
    fn congestion_mode_feeds_epochs_into_the_loop() {
        let workload = small_workload(37, 50, 10);
        let mut sim = Simulator::new(
            workload,
            EngineConfig::paper_defaults(),
            SimConfig {
                traffic: Some(TrafficSimConfig {
                    period_secs: 300.0,
                    ..TrafficSimConfig::default()
                }),
                ..sim_config(1800.0)
            },
        );
        let report = sim.run();
        assert_eq!(report.requests, 50);
        assert!(report.answered > 0, "traffic must not starve matching");
        assert!(report.assigned > 0);
        let stats = sim.service().stats();
        // The start-of-day epoch plus one per 300 s at steps 300..=1500
        // (the 1800 s instant is the end of the run, never a step start).
        assert_eq!(stats.traffic_epochs, 6);
        // ≥ rather than ==: `PTRIDER_TRAFFIC_EPOCHS` pre-applies epochs at
        // construction, before the ledger starts counting.
        assert!(sim.service().oracle().traffic_epoch() >= 6);
    }

    #[test]
    fn congestion_mode_is_deterministic_and_repairs_ch() {
        let run = |backend| {
            let workload = small_workload(41, 40, 8);
            let mut sim = Simulator::new(
                workload,
                EngineConfig::paper_defaults().with_distance_backend(backend),
                SimConfig {
                    traffic: Some(TrafficSimConfig::default()),
                    ..sim_config(900.0)
                },
            );
            let report = sim.run();
            (report, sim.service().stats())
        };
        let (alt_a, _) = run(ptrider_core::DistanceBackend::Alt);
        let (alt_b, _) = run(ptrider_core::DistanceBackend::Alt);
        assert_eq!(alt_a.assigned, alt_b.assigned);
        assert_eq!(alt_a.completed, alt_b.completed);
        assert!((alt_a.fleet_distance_m - alt_b.fleet_distance_m).abs() < 1e-6);

        // The CH backend serves the same day through customization passes:
        // every epoch repairs the hierarchy instead of rebuilding it, and
        // the outcomes match the ALT backend (both are exact).
        let (ch, ch_stats) = run(ptrider_core::DistanceBackend::Ch);
        assert_eq!(ch_stats.ch_customizations, ch_stats.traffic_epochs);
        assert!(ch_stats.traffic_epochs > 0);
        assert_eq!(ch.assigned, alt_a.assigned);
        assert_eq!(ch.completed, alt_a.completed);
        assert_eq!(ch.shared_trips, alt_a.shared_trips);
    }

    #[test]
    fn idle_roaming_moves_empty_vehicles() {
        let workload = Workload::generate(WorkloadConfig {
            city: CityConfig::tiny(3),
            num_vehicles: 4,
            trips: TripConfig {
                num_trips: 1,
                day_secs: 10.0,
                seed: 3,
                ..TripConfig::default()
            },
            seed: 3,
        });
        let mut sim = Simulator::new(
            workload,
            EngineConfig::paper_defaults(),
            SimConfig {
                end_secs: 120.0,
                ..sim_config(120.0)
            },
        );
        let _ = sim.run();
        // Even with (almost) no requests the fleet drives around.
        assert!(sim.report().fleet_distance_m > 0.0);
    }
}
