//! Vehicle movement model.
//!
//! Vehicles drive at the constant speed along the shortest path to the next
//! stop of their best schedule; idle vehicles follow the current road
//! segment and pick a random segment at intersections (Section 4). The
//! motion state lives outside the engine: the engine only receives location
//! updates when a vehicle crosses a vertex, mirroring the periodic location
//! updates of Fig. 2.

use ptrider_roadnet::{dijkstra, RoadNetwork, VertexId};
use rand::Rng;
use std::collections::VecDeque;

/// Per-vehicle motion state.
#[derive(Clone, Debug, Default)]
pub struct Motion {
    /// Remaining vertices to visit (next vertex first). Each entry carries
    /// the edge length from the previous vertex.
    path: VecDeque<(VertexId, f64)>,
    /// The stop vertex the current path leads to (`None` while idle-roaming).
    target: Option<VertexId>,
    /// Distance already driven along the current leading edge.
    progress: f64,
    /// Distance driven since the last crossing was reported (partial edge
    /// progress that has not yet been delivered as a location update).
    unreported: f64,
}

/// A vertex crossing produced while advancing a vehicle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Crossing {
    /// The vertex reached.
    pub vertex: VertexId,
    /// Distance driven since the previous reported crossing — the amount the
    /// engine's location update should credit to the odometer.
    pub travelled: f64,
}

impl Motion {
    /// Creates an idle motion state.
    pub fn new() -> Self {
        Motion::default()
    }

    /// The destination vertex of the current path, if any.
    pub fn target(&self) -> Option<VertexId> {
        self.target
    }

    /// Clears the current path (e.g. when the schedule changed). Partial
    /// edge progress is abandoned and *not* credited later: the vehicle is
    /// treated as standing at its last vertex, so the distances the engine
    /// sees always equal the vertex-level shortest paths the matcher planned
    /// with (the fleet odometer slightly under-counts turn-arounds instead
    /// of over-charging on-board riders).
    pub fn clear(&mut self) {
        self.path.clear();
        self.target = None;
        self.progress = 0.0;
        self.unreported = 0.0;
    }

    /// Ensures the vehicle is routed from `from` to `to` along a shortest
    /// path. Re-plans only when the target changed.
    pub fn route_to(&mut self, net: &RoadNetwork, from: VertexId, to: VertexId) {
        if self.target == Some(to) && !self.path.is_empty() {
            return;
        }
        self.clear();
        if from == to {
            self.target = Some(to);
            return;
        }
        if let Some((_, path)) = dijkstra::shortest_path(net, from, to) {
            let mut prev = from;
            for v in path.into_iter().skip(1) {
                let leg = dijkstra::distance(net, prev, v).unwrap_or(0.0);
                self.path.push_back((v, leg));
                prev = v;
            }
            self.target = Some(to);
        }
    }

    /// Starts an idle roam from `from` toward a random neighbouring vertex.
    pub fn roam<R: Rng>(&mut self, net: &RoadNetwork, from: VertexId, rng: &mut R) {
        self.clear();
        let neighbours: Vec<(VertexId, f64)> = net.neighbors(from).collect();
        if neighbours.is_empty() {
            return;
        }
        let (next, w) = neighbours[rng.gen_range(0..neighbours.len())];
        self.path.push_back((next, w));
        // Idle roaming has no schedule target.
        self.target = None;
    }

    /// `true` when the vehicle has no planned path.
    pub fn is_idle(&self) -> bool {
        self.path.is_empty()
    }

    /// Advances the vehicle by up to `budget` metres, returning every vertex
    /// crossing that happened (in order). Unused budget is returned as the
    /// second tuple element (non-zero only when the path ran out).
    pub fn advance(&mut self, mut budget: f64) -> (Vec<Crossing>, f64) {
        let mut crossings = Vec::new();
        while budget > 0.0 {
            let Some(&(next, leg)) = self.path.front() else {
                break;
            };
            let remaining = leg - self.progress;
            if budget >= remaining {
                budget -= remaining;
                self.unreported += remaining;
                self.progress = 0.0;
                self.path.pop_front();
                crossings.push(Crossing {
                    vertex: next,
                    travelled: self.unreported,
                });
                self.unreported = 0.0;
                if self.path.is_empty() {
                    self.target = None;
                }
            } else {
                self.progress += budget;
                self.unreported += budget;
                budget = 0.0;
            }
        }
        (crossings, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptrider_roadnet::RoadNetworkBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn line() -> RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let v: Vec<_> = (0..5)
            .map(|i| b.add_vertex(i as f64 * 100.0, 0.0))
            .collect();
        for i in 0..4 {
            b.add_bidirectional_edge(v[i], v[i + 1], 100.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn route_and_advance_crosses_vertices_in_order() {
        let net = line();
        let mut m = Motion::new();
        m.route_to(&net, VertexId(0), VertexId(3));
        assert_eq!(m.target(), Some(VertexId(3)));
        let (crossings, leftover) = m.advance(250.0);
        assert_eq!(leftover, 0.0);
        assert_eq!(
            crossings
                .iter()
                .map(|c| (c.vertex, c.travelled))
                .collect::<Vec<_>>(),
            vec![(VertexId(1), 100.0), (VertexId(2), 100.0)]
        );
        // 50 m into the last edge from the first call plus 50 m now finish
        // the path; the crossing credits the full 100 m driven since the
        // last reported crossing.
        let (crossings, leftover) = m.advance(200.0);
        assert_eq!(
            crossings,
            vec![Crossing {
                vertex: VertexId(3),
                travelled: 100.0
            }]
        );
        assert_eq!(leftover, 150.0);
        assert!(m.is_idle());
    }

    #[test]
    fn route_to_same_target_does_not_replan() {
        let net = line();
        let mut m = Motion::new();
        m.route_to(&net, VertexId(0), VertexId(4));
        let (_c, _) = m.advance(150.0);
        // Re-routing to the same target keeps the partial progress: the 50 m
        // already driven into the second edge plus 50 m now complete it.
        m.route_to(&net, VertexId(1), VertexId(4));
        let (crossings, _) = m.advance(50.0);
        assert_eq!(
            crossings,
            vec![Crossing {
                vertex: VertexId(2),
                travelled: 100.0
            }]
        );
    }

    #[test]
    fn roam_moves_to_a_neighbour() {
        let net = line();
        let mut m = Motion::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        m.roam(&net, VertexId(2), &mut rng);
        assert!(!m.is_idle());
        let (crossings, _) = m.advance(100.0);
        assert_eq!(crossings.len(), 1);
        let v = crossings[0].vertex;
        assert!(v == VertexId(1) || v == VertexId(3));
    }

    #[test]
    fn trivial_route_to_self_is_idle() {
        let net = line();
        let mut m = Motion::new();
        m.route_to(&net, VertexId(2), VertexId(2));
        assert!(m.is_idle());
        let (crossings, leftover) = m.advance(100.0);
        assert!(crossings.is_empty());
        assert_eq!(leftover, 100.0);
    }
}
