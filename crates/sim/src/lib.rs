//! Event-driven ridesharing simulator for PTRider (Section 4 of the paper).
//!
//! The paper demonstrates the system by replaying a day of Shanghai taxi
//! trips against a fleet of simulated vehicles: requests are generated from
//! the trip log, vehicles follow their assigned schedules at a constant
//! 48 km/h (choosing random road segments when idle), and the website
//! interface reports the current time, the average response time and the
//! average sharing rate.
//!
//! This crate reproduces that harness as a library:
//!
//! * [`Simulator`] — steps a [`ptrider_core::PtRider`] engine through a
//!   [`ptrider_datagen::Workload`]: request submission, rider choice,
//!   vehicle movement, pickup/drop-off updates;
//! * [`ChoicePolicy`] — how the simulated rider picks among the returned
//!   price/time options (cheapest, fastest, random, or a weighted utility);
//! * [`SimulationReport`] — the statistics panel of Fig. 4(c) in structured
//!   form (average response time, sharing rate, served rate, …).

#![warn(missing_docs)]

pub mod choice;
pub mod motion;
pub mod report;
pub mod simulator;

pub use choice::ChoicePolicy;
pub use report::{LatencySummary, RequestOutcome, SimulationReport};
pub use simulator::{SimConfig, Simulator, TrafficSimConfig};
