//! Rider choice models.
//!
//! PTRider returns several non-dominated (pick-up time, price) options; the
//! real rider picks one on their phone (Fig. 4(b)). The simulator models
//! that decision with a [`ChoicePolicy`].

use ptrider_core::RideOption;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a simulated rider chooses among the returned options.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ChoicePolicy {
    /// Always take the cheapest option (ties: earliest pickup).
    Cheapest,
    /// Always take the earliest pickup (ties: cheapest).
    Fastest,
    /// Pick uniformly at random among the options.
    Random,
    /// Minimise `alpha · time + (1 − alpha) · price` after normalising both
    /// dimensions to `[0, 1]` over the returned options. `alpha = 1` is
    /// equivalent to [`ChoicePolicy::Fastest`], `alpha = 0` to
    /// [`ChoicePolicy::Cheapest`].
    Weighted {
        /// Weight of the time dimension, in `[0, 1]`.
        alpha: f64,
    },
}

impl Default for ChoicePolicy {
    fn default() -> Self {
        ChoicePolicy::Weighted { alpha: 0.5 }
    }
}

impl ChoicePolicy {
    /// Chooses one option; returns `None` when no options were offered.
    pub fn choose<'a, R: Rng>(
        &self,
        options: &'a [RideOption],
        rng: &mut R,
    ) -> Option<&'a RideOption> {
        self.choose_index(options, rng).map(|i| &options[i])
    }

    /// Like [`Self::choose`] but returning the option's *index* — the
    /// selector form [`ptrider_core::PtRider::submit_batch_greedy`]
    /// consumes, so the simulator's burst arrival mode can hand the policy
    /// straight to batch admission.
    pub fn choose_index<R: Rng>(&self, options: &[RideOption], rng: &mut R) -> Option<usize> {
        if options.is_empty() {
            return None;
        }
        let enumerated = || options.iter().enumerate();
        let best = match self {
            ChoicePolicy::Cheapest => enumerated().min_by(|(_, a), (_, b)| {
                a.price
                    .partial_cmp(&b.price)
                    .unwrap()
                    .then(a.pickup_dist.partial_cmp(&b.pickup_dist).unwrap())
            }),
            ChoicePolicy::Fastest => enumerated().min_by(|(_, a), (_, b)| {
                a.pickup_dist
                    .partial_cmp(&b.pickup_dist)
                    .unwrap()
                    .then(a.price.partial_cmp(&b.price).unwrap())
            }),
            ChoicePolicy::Random => {
                let i = rng.gen_range(0..options.len());
                return Some(i);
            }
            ChoicePolicy::Weighted { alpha } => {
                let alpha = alpha.clamp(0.0, 1.0);
                let max_t = options
                    .iter()
                    .map(|o| o.pickup_dist)
                    .fold(f64::MIN, f64::max)
                    .max(1e-9);
                let max_p = options
                    .iter()
                    .map(|o| o.price)
                    .fold(f64::MIN, f64::max)
                    .max(1e-9);
                enumerated().min_by(|(_, a), (_, b)| {
                    let ua = alpha * a.pickup_dist / max_t + (1.0 - alpha) * a.price / max_p;
                    let ub = alpha * b.pickup_dist / max_t + (1.0 - alpha) * b.price / max_p;
                    ua.partial_cmp(&ub).unwrap()
                })
            }
        };
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptrider_core::VehicleId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn opt(vehicle: u32, time: f64, price: f64) -> RideOption {
        RideOption {
            vehicle: VehicleId(vehicle),
            pickup_dist: time,
            pickup_secs: time,
            price,
            schedule: Vec::new(),
            new_total_dist: 0.0,
            old_total_dist: 0.0,
        }
    }

    fn options() -> Vec<RideOption> {
        vec![opt(1, 500.0, 9.0), opt(2, 2000.0, 4.0), opt(3, 1000.0, 6.0)]
    }

    #[test]
    fn cheapest_and_fastest_pick_extremes() {
        let opts = options();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(
            ChoicePolicy::Cheapest
                .choose(&opts, &mut rng)
                .unwrap()
                .vehicle,
            VehicleId(2)
        );
        assert_eq!(
            ChoicePolicy::Fastest
                .choose(&opts, &mut rng)
                .unwrap()
                .vehicle,
            VehicleId(1)
        );
    }

    #[test]
    fn weighted_extremes_match_pure_policies() {
        let opts = options();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(
            ChoicePolicy::Weighted { alpha: 1.0 }
                .choose(&opts, &mut rng)
                .unwrap()
                .vehicle,
            VehicleId(1)
        );
        assert_eq!(
            ChoicePolicy::Weighted { alpha: 0.0 }
                .choose(&opts, &mut rng)
                .unwrap()
                .vehicle,
            VehicleId(2)
        );
        // A balanced rider picks the compromise option here.
        assert_eq!(
            ChoicePolicy::Weighted { alpha: 0.5 }
                .choose(&opts, &mut rng)
                .unwrap()
                .vehicle,
            VehicleId(3)
        );
    }

    #[test]
    fn random_choice_is_always_one_of_the_options() {
        let opts = options();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..50 {
            let c = ChoicePolicy::Random.choose(&opts, &mut rng).unwrap();
            assert!(opts.iter().any(|o| o.vehicle == c.vehicle));
        }
    }

    #[test]
    fn empty_options_yield_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(ChoicePolicy::default().choose(&[], &mut rng).is_none());
        assert!(ChoicePolicy::default()
            .choose_index(&[], &mut rng)
            .is_none());
    }

    #[test]
    fn choose_index_agrees_with_choose() {
        let opts = options();
        for policy in [
            ChoicePolicy::Cheapest,
            ChoicePolicy::Fastest,
            ChoicePolicy::Random,
            ChoicePolicy::Weighted { alpha: 0.3 },
        ] {
            // Identical RNG streams so Random draws the same index.
            let mut rng_a = ChaCha8Rng::seed_from_u64(17);
            let mut rng_b = ChaCha8Rng::seed_from_u64(17);
            let by_ref = policy.choose(&opts, &mut rng_a).unwrap();
            let by_idx = policy.choose_index(&opts, &mut rng_b).unwrap();
            assert_eq!(by_ref.vehicle, opts[by_idx].vehicle, "{policy:?}");
        }
    }
}
