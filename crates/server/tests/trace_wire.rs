//! Request-scoped tracing over the wire: every response echoes a
//! correlation id, a traced submit's tree is retrievable via
//! `GET /trace/{id}` covering server → service → matcher → journal,
//! inbound identities are honored, and the lock-contention profiler
//! shows up in `/metrics`.
//!
//! This file is its own test binary with a single `#[test]` so the
//! `PTRIDER_TELEMETRY` environment flips (read at engine construction)
//! cannot race another test's service construction.

mod common;

use common::{service, start, Client};

#[test]
fn tracing_round_trips_over_the_wire() {
    // --- Leg 1: tracing off — the correlation id is still echoed. ---
    std::env::set_var("PTRIDER_TELEMETRY", "counters");
    let svc = service();
    std::env::set_var("PTRIDER_TELEMETRY", "spans");
    assert!(!svc.telemetry().tracing_enabled());
    {
        let mut handle = start(svc, |c| c);
        let mut client = Client::connect(handle.addr());
        let offer = client.request(
            "POST",
            "/rides",
            Some(r#"{"origin":1,"destination":4,"riders":1,"now":0.0}"#),
        );
        assert_eq!(offer.status, 200, "{}", offer.body);
        let rid = offer.header("x-request-id").expect("id echoed with tracing off");
        assert_eq!(rid.len(), 16, "16-hex correlation id, got {rid:?}");
        assert!(
            offer.header("traceparent").is_none(),
            "no traceparent without a recorded root span"
        );
        // Untraced ids have no stored tree.
        let tree = client.request("GET", &format!("/trace/{rid}"), None);
        assert_eq!(tree.status, 404, "{}", tree.body);
        // Error responses echo an id too.
        let missing = client.request("GET", "/no/such/route", None);
        assert_eq!(missing.status, 404);
        assert!(missing.header("x-request-id").is_some());
        handle.shutdown();
    }

    // --- Leg 2: spans — full tree round trip. (The env was flipped to
    // `spans` above, before this construction.) ---
    let svc = service();
    std::env::remove_var("PTRIDER_TELEMETRY");
    assert!(svc.telemetry().tracing_enabled());
    let mut handle = start(svc, |c| c);
    let mut client = Client::connect(handle.addr());

    let offer = client.request(
        "POST",
        "/rides",
        Some(r#"{"origin":1,"destination":4,"riders":1,"now":0.0}"#),
    );
    assert_eq!(offer.status, 200, "{}", offer.body);
    let rid = offer
        .header("x-request-id")
        .expect("x-request-id echoed")
        .to_string();
    let tp = offer
        .header("traceparent")
        .expect("traceparent echoed when traced")
        .to_string();
    assert!(
        tp.starts_with("00-") && tp.contains(rid.as_str()),
        "traceparent {tp:?} names trace {rid:?}"
    );

    // The wire-minted trace is retrievable as a nested tree whose root
    // is the server's handle span, with the service submit under it.
    let tree = client.request("GET", &format!("/trace/{rid}"), None);
    assert_eq!(tree.status, 200, "{}", tree.body);
    assert!(tree.body.contains("\"server.handle\""), "{}", tree.body);
    assert!(tree.body.contains("\"service.submit\""), "{}", tree.body);
    assert!(tree.body.contains("\"children\""), "{}", tree.body);
    // server.handle appears as a root (before any children array closes),
    // and service.submit is nested inside some children list.
    let handle_at = tree.body.find("\"server.handle\"").unwrap();
    let submit_at = tree.body.find("\"service.submit\"").unwrap();
    assert!(
        handle_at < submit_at,
        "submit nests under the handle root: {}",
        tree.body
    );

    // An inbound traceparent is adopted: the response echoes the caller's
    // trace id and the stored tree carries it.
    let inbound = "00-00000000000000000123456789abcdef-00000000000000aa-01";
    let offer2 = client.request_with_headers(
        "POST",
        "/rides",
        Some(r#"{"origin":1,"destination":4,"riders":1,"now":0.0}"#),
        &[("traceparent", inbound)],
    );
    assert_eq!(offer2.status, 200, "{}", offer2.body);
    assert_eq!(offer2.header("x-request-id"), Some("0123456789abcdef"));
    let tree2 = client.request("GET", "/trace/0123456789abcdef", None);
    assert_eq!(tree2.status, 200, "{}", tree2.body);

    // A bare inbound X-Request-Id is honored as well.
    let offer3 = client.request_with_headers(
        "POST",
        "/rides",
        Some(r#"{"origin":1,"destination":4,"riders":1,"now":0.0}"#),
        &[("x-request-id", "00000000deadbeef")],
    );
    assert_eq!(offer3.header("x-request-id"), Some("00000000deadbeef"));

    // The slow log knows about the traced requests.
    let slow = client.request("GET", "/debug/slow", None);
    assert_eq!(slow.status, 200);
    assert!(slow.body.contains(&rid), "{} missing {rid}", slow.body);

    // The lock-contention profiler is exposed in the metrics text.
    let metrics = client.request("GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains("ptrider_lock_acquisitions_total"),
        "lock profile missing from metrics"
    );
    assert!(metrics.body.contains("site=\"world.write\""));
    assert!(metrics.body.contains("ptrider_trace_dropped_total"));

    // The flat ring dump carries trace ids now.
    let flat = client.request("GET", "/trace", None);
    assert_eq!(flat.status, 200);
    assert!(flat.body.contains("\"dropped\":"), "{}", flat.body);
    assert!(flat.body.contains("\"trace\":\""), "{}", flat.body);

    // Unknown trace ids 404; malformed ones too.
    assert_eq!(
        client.request("GET", "/trace/fffffffffffffff1", None).status,
        404
    );
    assert_eq!(client.request("GET", "/trace/zzzz", None).status, 404);
    handle.shutdown();
}
