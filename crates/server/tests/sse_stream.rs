//! SSE conformance: streams carry the lifecycle in order, rider streams
//! filter, and a slow consumer falls behind with exactly the `missed`
//! accounting the in-process [`EventCursor`] reports — the writer is
//! never blocked by a stuck socket.
//!
//! [`EventCursor`]: ptrider_core::EventCursor

mod common;

use common::{json_u64, service_with, start, Client};
use ptrider_core::{EngineConfig, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed SSE frame.
#[derive(Clone, Debug)]
struct Frame {
    event: String,
    data: String,
}

/// Opens `GET /events` on a raw socket and returns a frame iterator.
fn open_stream(addr: std::net::SocketAddr, query: &str) -> BufReader<TcpStream> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let raw = format!("GET /events{query} HTTP/1.1\r\nhost: x\r\n\r\n");
    stream.write_all(raw.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    // Skip the response head.
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).expect("head line");
        assert!(!line.is_empty(), "stream closed before the head completed");
        if line == "\r\n" {
            break;
        }
        if line.starts_with("HTTP/1.1") {
            assert!(line.contains("200"), "unexpected status: {line}");
        }
    }
    reader
}

/// Reads frames until `stop` returns true or the stream ends.
fn read_frames(
    reader: &mut BufReader<TcpStream>,
    mut stop: impl FnMut(&[Frame]) -> bool,
) -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut event = String::new();
    let mut data = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return frames,
            Ok(_) => {}
            Err(_) => return frames,
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if let Some(rest) = trimmed.strip_prefix("event: ") {
            event = rest.to_string();
        } else if let Some(rest) = trimmed.strip_prefix("data: ") {
            data = rest.to_string();
        } else if trimmed.is_empty() && !event.is_empty() {
            frames.push(Frame {
                event: std::mem::take(&mut event),
                data: std::mem::take(&mut data),
            });
            if stop(&frames) {
                return frames;
            }
        }
    }
}

#[test]
fn a_rider_stream_carries_its_lifecycle_in_order() {
    let mut handle = start(common::service(), |c| c);
    let addr = handle.addr();
    let mut client = Client::connect(addr);

    let offer = client.request(
        "POST",
        "/rides",
        Some(r#"{"origin":1,"destination":4,"now":0.0}"#),
    );
    let session = json_u64(&offer.body, "session");
    let request = json_u64(&offer.body, "request");

    // Open the rider's stream, then confirm: the stream replays the
    // retained history (submitted, offered) and then sees the new event.
    let mut stream = open_stream(
        addr,
        &format!("?session={session}&request={request}&limit=4"),
    );
    let confirmed = client.request(
        "POST",
        &format!("/sessions/{session}/respond"),
        Some(r#"{"decision":"choose","option":0,"now":1.0}"#),
    );
    assert_eq!(confirmed.status, 200);
    let vehicle = json_u64(&confirmed.body, "vehicle");
    let moved = client.request(
        "POST",
        &format!("/vehicles/{vehicle}/location"),
        Some(r#"{"location":1,"travelled":500.0}"#),
    );
    assert_eq!(moved.status, 200, "{}", moved.body);
    let pickup = client.request("POST", &format!("/vehicles/{vehicle}/arrived"), None);
    assert_eq!(pickup.status, 200);
    assert!(pickup.body.contains("picked_up"), "{}", pickup.body);

    let frames = read_frames(&mut stream, |f| f.len() >= 4);
    let names: Vec<&str> = frames.iter().map(|f| f.event.as_str()).collect();
    assert_eq!(
        names,
        vec!["submitted", "offered", "confirmed", "picked_up"],
        "frames: {frames:?}"
    );
    // Every data payload is valid JSON carrying this session's ids.
    for frame in &frames {
        let v = ptrider_server::Json::parse(&frame.data)
            .unwrap_or_else(|e| panic!("{}: bad JSON ({e}): {}", frame.event, frame.data));
        if frame.event != "picked_up" {
            assert_eq!(
                v.get("session").and_then(ptrider_server::Json::as_u64),
                Some(session)
            );
        } else {
            assert_eq!(
                v.get("request").and_then(ptrider_server::Json::as_u64),
                Some(request)
            );
        }
    }
    handle.shutdown();
}

#[test]
fn a_fleet_stream_sees_other_riders_a_rider_stream_does_not() {
    let mut handle = start(common::service(), |c| c);
    let addr = handle.addr();
    let mut client = Client::connect(addr);

    let first = client.request(
        "POST",
        "/rides",
        Some(r#"{"origin":1,"destination":3,"now":0.0}"#),
    );
    let first_session = json_u64(&first.body, "session");
    let second = client.request(
        "POST",
        "/rides",
        Some(r#"{"origin":2,"destination":4,"now":0.0}"#),
    );
    let second_session = json_u64(&second.body, "session");
    assert_ne!(first_session, second_session);

    // Fleet stream: both sessions' histories.
    let mut fleet = open_stream(addr, "?limit=5");
    let frames = read_frames(&mut fleet, |f| f.len() >= 5);
    let sessions: Vec<Option<u64>> = frames
        .iter()
        .map(|f| {
            ptrider_server::Json::parse(&f.data)
                .ok()
                .and_then(|v| v.get("session").and_then(ptrider_server::Json::as_u64))
        })
        .collect();
    assert!(sessions.contains(&Some(first_session)));
    assert!(sessions.contains(&Some(second_session)));

    // Rider stream for the first session: never the second's events.
    let mut rider = open_stream(addr, &format!("?session={first_session}&limit=2"));
    let frames = read_frames(&mut rider, |f| f.len() >= 2);
    for frame in &frames {
        let v = ptrider_server::Json::parse(&frame.data).unwrap();
        assert_eq!(
            v.get("session").and_then(ptrider_server::Json::as_u64),
            Some(first_session),
            "leaked frame: {frame:?}"
        );
    }
    handle.shutdown();
}

#[test]
fn a_slow_consumer_misses_exactly_what_the_cursor_api_reports() {
    // A tiny event log forces eviction quickly.
    let service = service_with(
        ServiceConfig::default().with_event_capacity(8),
        EngineConfig::default(),
    );
    // A long poll interval plays the slow consumer: the whole burst lands
    // inside one of the SSE loop's sleeps.
    let mut handle = start(std::sync::Arc::clone(&service), |c| {
        c.with_sse_poll(Duration::from_millis(400))
    });
    let addr = handle.addr();

    // The in-process reference: a cursor subscribed now, polled after the
    // burst, reports how many events eviction took from it.
    let mut reference = service.subscribe();

    // The wire consumer subscribes at the same log position but sleeps
    // through the burst.
    let mut stream = open_stream(addr, "");

    // Burst far past the capacity while the consumer sleeps. Every event
    // lands through the service API, so the writer clearly never blocks
    // on the slow stream.
    let mut client = Client::connect(addr);
    for i in 0..40u32 {
        let origin = 1 + (i % 3);
        let destination = origin + 2;
        let r = client.request(
            "POST",
            "/rides",
            Some(&format!(
                r#"{{"origin":{origin},"destination":{destination},"now":{}.0}}"#,
                i
            )),
        );
        assert_eq!(r.status, 200, "{}", r.body);
    }

    // Give the SSE loop a moment to poll and observe the eviction, then
    // read what it produced.
    std::thread::sleep(Duration::from_millis(100));
    let reference_events = service.poll_events(&mut reference);
    let reference_missed = reference.missed();
    assert!(
        reference_missed > 0,
        "the burst must overflow the 8-slot log"
    );

    let frames = read_frames(&mut stream, |f| {
        // Stop once we have seen a missed frame and at least one event.
        f.iter().any(|fr| fr.event == "missed") && f.len() >= 2
    });
    let missed_frame = frames
        .iter()
        .find(|f| f.event == "missed")
        .unwrap_or_else(|| panic!("no missed frame in {frames:?}"));
    let v = ptrider_server::Json::parse(&missed_frame.data).unwrap();
    let wire_missed = v
        .get("total_missed")
        .and_then(ptrider_server::Json::as_u64)
        .unwrap();

    // Parity: the wire consumer's first missed report can only differ
    // from the reference by events the SSE loop drained before the burst
    // overtook it — never more than the reference count, never zero.
    assert!(wire_missed > 0);
    assert!(
        wire_missed <= reference_missed,
        "wire reported {wire_missed} missed, reference cursor {reference_missed}"
    );
    // Both observers agree on the log's totals.
    assert!(reference_events.len() <= 8);
    handle.shutdown();
}
