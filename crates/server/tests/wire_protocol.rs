//! Wire-protocol conformance: the full ride lifecycle over real
//! sockets, typed statuses for every malformed input, backpressure
//! shedding, keep-alive pipelining, and graceful shutdown — all without
//! a single server-side panic (a panic would poison the service and turn
//! later requests into 503s, so the suite implicitly asserts it too).

mod common;

use common::{json_u64, service, start, Client};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

#[test]
fn the_full_lifecycle_runs_over_the_wire() {
    let mut handle = start(service(), |c| c);
    let mut client = Client::connect(handle.addr());

    // Submit: vertex 1 → 4 gets an offer from the vehicle at vertex 0.
    let offer = client.request(
        "POST",
        "/rides",
        Some(r#"{"origin":1,"destination":4,"riders":1,"now":0.0}"#),
    );
    assert_eq!(offer.status, 200, "{}", offer.body);
    let session = json_u64(&offer.body, "session");
    assert!(offer.body.contains("\"options\":[{"), "{}", offer.body);

    // The session is visible.
    let state = client.request("GET", &format!("/sessions/{session}"), None);
    assert_eq!(state.status, 200);
    assert!(state.body.contains("\"offered\""), "{}", state.body);

    // Confirm option 0.
    let confirmed = client.request(
        "POST",
        &format!("/sessions/{session}/respond"),
        Some(r#"{"decision":"choose","option":0,"now":1.0}"#),
    );
    assert_eq!(confirmed.status, 200, "{}", confirmed.body);
    assert!(
        confirmed.body.contains("\"confirmed\""),
        "{}",
        confirmed.body
    );
    let vehicle = json_u64(&confirmed.body, "vehicle");

    // Drive the vehicle through pickup and dropoff: move it to the stop's
    // vertex, then serve the stop.
    let moved = client.request(
        "POST",
        &format!("/vehicles/{vehicle}/location"),
        Some(r#"{"location":1,"travelled":500.0}"#),
    );
    assert_eq!(moved.status, 200, "{}", moved.body);
    let pickup = client.request("POST", &format!("/vehicles/{vehicle}/arrived"), None);
    assert_eq!(pickup.status, 200);
    assert!(pickup.body.contains("picked_up"), "{}", pickup.body);
    let moved = client.request(
        "POST",
        &format!("/vehicles/{vehicle}/location"),
        Some(r#"{"location":4,"travelled":1500.0}"#),
    );
    assert_eq!(moved.status, 200, "{}", moved.body);
    let dropoff = client.request("POST", &format!("/vehicles/{vehicle}/arrived"), None);
    assert!(dropoff.body.contains("dropped_off"), "{}", dropoff.body);

    // A second response to the same session is a typed conflict.
    let double = client.request(
        "POST",
        &format!("/sessions/{session}/respond"),
        Some(r#"{"decision":"decline","now":2.0}"#),
    );
    assert_eq!(double.status, 409, "{}", double.body);

    // Metrics report the server's own counters.
    let metrics = client.request("GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    assert!(
        metrics
            .body
            .contains("ptrider_server_connections_accepted_total"),
        "server counters missing from exposition"
    );
    assert!(metrics
        .body
        .contains("ptrider_service_requests_submitted_total 1"));

    assert!(handle.shutdown(), "drain must complete");
}

#[test]
fn session_lifecycle_errors_have_typed_statuses() {
    let mut handle = start(service(), |c| c);
    let mut client = Client::connect(handle.addr());

    // Unknown session.
    let r = client.request("GET", "/sessions/999", None);
    assert_eq!(r.status, 404);
    let r = client.request(
        "POST",
        "/sessions/999/respond",
        Some(r#"{"decision":"decline"}"#),
    );
    assert_eq!(r.status, 404);

    // Unknown option on a real session.
    let offer = client.request(
        "POST",
        "/rides",
        Some(r#"{"origin":1,"destination":4,"now":0.0}"#),
    );
    let session = json_u64(&offer.body, "session");
    let r = client.request(
        "POST",
        &format!("/sessions/{session}/respond"),
        Some(r#"{"decision":"choose","option":42,"now":0.0}"#),
    );
    assert_eq!(r.status, 404, "{}", r.body);

    // A response after the deadline is 410 Gone.
    let r = client.request(
        "POST",
        &format!("/sessions/{session}/respond"),
        Some(r#"{"decision":"choose","option":0,"now":100000.0}"#),
    );
    assert_eq!(r.status, 410, "{}", r.body);

    // Validation failures are 400.
    let r = client.request(
        "POST",
        "/rides",
        Some(r#"{"origin":1,"destination":1,"now":0.0}"#),
    );
    assert_eq!(r.status, 400, "{}", r.body);
    let r = client.request(
        "POST",
        "/rides",
        Some(r#"{"origin":1,"destination":99999,"now":0.0}"#),
    );
    assert_eq!(r.status, 400, "{}", r.body);

    // Unknown vehicle is 404.
    let r = client.request("POST", "/vehicles/77/arrived", None);
    assert_eq!(r.status, 404, "{}", r.body);

    handle.shutdown();
}

#[test]
fn malformed_requests_get_4xx_and_the_server_survives() {
    let mut handle = start(service(), |c| c);
    let addr = handle.addr();

    let cases: Vec<(&[u8], u16)> = vec![
        // Garbage instead of a request line.
        (b"\x01\x02\x03garbage\r\n\r\n".as_slice(), 400),
        // Unsupported version.
        (b"GET / HTTP/3.0\r\n\r\n".as_slice(), 505),
        // Malformed header.
        (
            b"GET /healthz HTTP/1.1\r\nno colon here\r\n\r\n".as_slice(),
            400,
        ),
        // Bad content-length.
        (
            b"POST /rides HTTP/1.1\r\ncontent-length: banana\r\n\r\n".as_slice(),
            400,
        ),
        // Declared body over the cap.
        (
            b"POST /rides HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n".as_slice(),
            413,
        ),
        // Chunked is refused, not mis-framed.
        (
            b"POST /rides HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n".as_slice(),
            501,
        ),
    ];
    for (raw, want) in cases {
        let mut client = Client::connect(addr);
        let resp = client.send_raw(raw);
        assert_eq!(resp.status, want, "for {:?}", String::from_utf8_lossy(raw));
    }

    // Bad method and bad path on a healthy connection.
    let mut client = Client::connect(addr);
    let r = client.request("DELETE", "/rides", None);
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("POST"));
    let mut client = Client::connect(addr);
    let r = client.request("GET", "/no/such/route", None);
    assert_eq!(r.status, 404);

    // Bad JSON bodies are 400 with a reason.
    let mut client = Client::connect(addr);
    let r = client.request("POST", "/rides", Some("{not json"));
    assert_eq!(r.status, 400);
    assert!(r.body.contains("bad JSON"), "{}", r.body);

    // An oversized *actual* body (content-length honest) still 413s.
    let mut client = Client::connect(addr);
    let big = "x".repeat(128 * 1024);
    let r = client.request("POST", "/rides", Some(&big));
    assert_eq!(r.status, 413);

    // After all that abuse the server still works.
    let mut client = Client::connect(addr);
    let r = client.request("GET", "/healthz", None);
    assert_eq!(r.status, 200);
    handle.shutdown();
}

#[test]
fn a_slow_loris_is_cut_off_with_408() {
    let mut handle = start(service(), |c| {
        c.with_read_timeout(Duration::from_millis(300))
    });
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Trickle a request head slower than the budget allows.
    stream.write_all(b"GET /healthz").unwrap();
    std::thread::sleep(Duration::from_millis(150));
    stream.write_all(b" HTTP/1.1\r\nhost:").unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let _ = stream.write_all(b" x\r\n\r\n");
    let mut client = Client::from_stream(stream);
    let resp = client.read_response();
    assert_eq!(resp.status, 408);
    handle.shutdown();
}

#[test]
fn pipelined_keep_alive_requests_are_answered_in_order() {
    let mut handle = start(service(), |c| c);
    let mut client = Client::connect(handle.addr());
    // Two requests in one write; responses must come back one by one.
    let raw =
        b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\nGET /sessions/12345 HTTP/1.1\r\nhost: x\r\n\r\n";
    let first = client.send_raw(raw);
    assert_eq!(first.status, 200);
    let second = client.read_response();
    assert_eq!(second.status, 404);
    // The connection is still usable.
    let third = client.request("GET", "/healthz", None);
    assert_eq!(third.status, 200);
    handle.shutdown();
}

#[test]
fn connections_past_the_cap_are_shed_with_retry_after() {
    let mut handle = start(service(), |c| c.with_max_conns(2));
    let addr = handle.addr();
    // Two occupants hold their connections open with real requests.
    let mut a = Client::connect(addr);
    assert_eq!(a.request("GET", "/healthz", None).status, 200);
    let mut b = Client::connect(addr);
    assert_eq!(b.request("GET", "/healthz", None).status, 200);
    // The third is shed — 503 with Retry-After, never a hang.
    let mut c = Client::connect(addr);
    let resp = c.request("GET", "/healthz", None);
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.header("retry-after").is_some());
    // Capacity frees up once an occupant leaves.
    drop(a);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut d = Client::connect(addr);
        let resp = d.request("GET", "/healthz", None);
        if resp.status == 200 {
            break;
        }
        assert_eq!(resp.status, 503);
        assert!(
            std::time::Instant::now() < deadline,
            "capacity never freed after a disconnect"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
}

#[test]
fn shutdown_drains_and_flushes_the_journal() {
    use ptrider_core::{EngineConfig, Journal, JournalConfig, PtRider, RideService, ServiceConfig};
    use std::sync::Arc;
    let dir = std::env::temp_dir().join(format!("ptrider-wire-shutdown-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let fingerprint = {
        let journal = Journal::create(&dir, JournalConfig::default()).unwrap();
        let engine = PtRider::new(
            common::line_net(),
            common::line_grid(),
            EngineConfig::default(),
        );
        let service = Arc::new(RideService::from_engine(engine).with_journal(journal));
        let mut handle = start(Arc::clone(&service), |c| c);
        let mut client = Client::connect(handle.addr());
        // Everything — including the fleet — arrives over the wire, so
        // every state transition the server acknowledges is journaled.
        let vehicle = client.request("POST", "/vehicles", Some(r#"{"location":0}"#));
        assert_eq!(vehicle.status, 201, "{}", vehicle.body);
        let offer = client.request(
            "POST",
            "/rides",
            Some(r#"{"origin":1,"destination":4,"now":0.0}"#),
        );
        assert_eq!(offer.status, 200, "{}", offer.body);
        let session = json_u64(&offer.body, "session");
        let confirmed = client.request(
            "POST",
            &format!("/sessions/{session}/respond"),
            Some(r#"{"decision":"choose","option":0,"now":0.5}"#),
        );
        assert_eq!(confirmed.status, 200, "{}", confirmed.body);
        assert!(handle.shutdown(), "drain must complete");
        service.fingerprint()
    };

    // A recovered service sees exactly the state the server acknowledged.
    let engine = PtRider::new(
        common::line_net(),
        common::line_grid(),
        EngineConfig::default(),
    );
    let recovered = RideService::recover(
        engine,
        ServiceConfig::default(),
        &dir,
        JournalConfig::default(),
    )
    .expect("recovery");
    assert_eq!(recovered.fingerprint(), fingerprint, "bit-identical state");
    assert_eq!(recovered.num_vehicles(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
