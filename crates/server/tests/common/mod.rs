//! Shared plumbing for the wire-protocol tests: a tiny blocking HTTP
//! client and a ready-made service + server fixture.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use ptrider_core::{EngineConfig, RideService, ServiceConfig};
use ptrider_roadnet::{GridConfig, RoadNetwork, RoadNetworkBuilder};
use ptrider_server::{Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive client connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client { stream }
    }

    /// Wraps a stream the test already manipulated directly.
    pub fn from_stream(stream: TcpStream) -> Client {
        Client { stream }
    }

    /// Sends one request and reads one response (Content-Length framed).
    pub fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
        self.request_with_headers(method, path, body, &[])
    }

    /// [`Client::request`] with extra request headers (`(name, value)`).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> ClientResponse {
        let body = body.unwrap_or("");
        let mut raw = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        raw.push_str("\r\n");
        raw.push_str(body);
        self.stream.write_all(raw.as_bytes()).expect("write");
        self.read_response()
    }

    /// Sends raw bytes verbatim, then reads one response.
    pub fn send_raw(&mut self, raw: &[u8]) -> ClientResponse {
        self.stream.write_all(raw).expect("write raw");
        self.read_response()
    }

    pub fn read_response(&mut self) -> ClientResponse {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            match self.stream.read(&mut byte) {
                Ok(1) => head.push(byte[0]),
                _ => panic!(
                    "connection closed mid-response head: {:?}",
                    String::from_utf8_lossy(&head)
                ),
            }
        }
        let head = String::from_utf8(head).expect("UTF-8 head");
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let headers: Vec<(String, String)> = lines
            .filter(|l| !l.is_empty())
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_lowercase(), v.trim().to_string()))
            .collect();
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        self.stream.read_exact(&mut body).expect("body");
        ClientResponse {
            status,
            headers,
            body: String::from_utf8(body).expect("UTF-8 body"),
        }
    }
}

/// A 6-vertex line network (vertices 0..6, 500 m apart).
pub fn line_net() -> RoadNetwork {
    let mut b = RoadNetworkBuilder::new();
    let vertices: Vec<_> = (0..6)
        .map(|i| b.add_vertex(i as f64 * 500.0, 0.0))
        .collect();
    for pair in vertices.windows(2) {
        b.add_bidirectional_edge(pair[0], pair[1], 500.0);
    }
    b.build().unwrap()
}

/// The grid config matching [`line_net`].
pub fn line_grid() -> GridConfig {
    GridConfig::with_dimensions(3, 1)
}

/// A service over [`line_net`] with one vehicle parked at vertex 0.
pub fn service() -> Arc<RideService> {
    service_with(ServiceConfig::default(), EngineConfig::default())
}

pub fn service_with(service_config: ServiceConfig, config: EngineConfig) -> Arc<RideService> {
    let service =
        RideService::new(line_net(), line_grid(), config).with_service_config(service_config);
    service.add_vehicle(ptrider_roadnet::VertexId(0));
    Arc::new(service)
}

/// Starts a server on an ephemeral port with test-friendly timeouts.
pub fn start(
    service: Arc<RideService>,
    tune: impl FnOnce(ServerConfig) -> ServerConfig,
) -> ServerHandle {
    let config = tune(
        ServerConfig::default()
            .with_addr("127.0.0.1:0")
            .with_read_timeout(Duration::from_millis(500))
            .with_idle_timeout(Duration::from_secs(5))
            .with_drain_timeout(Duration::from_secs(5))
            .with_sse_poll(Duration::from_millis(5)),
    );
    Server::start(service, config).expect("server start")
}

/// Extracts `"key":<number>` from a flat JSON body (test-grade).
pub fn json_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let start = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{key:?} not in {body:?}"))
        + needle.len();
    let rest = &body[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().expect("number")
}
