//! A minimal JSON value parser and string escaper.
//!
//! The wire protocol's request bodies are small, flat objects, so this
//! parser favours simplicity and robustness over speed: recursive
//! descent with an explicit depth cap (no stack overflow on adversarial
//! nesting), full string-escape handling, and typed errors. Response
//! rendering stays hand-written at the call sites (the repo convention —
//! see `RideService::metrics_json`), so only parsing lives here.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

/// Nesting beyond this depth is rejected (adversarial inputs).
const MAX_DEPTH: usize = 32;

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Member `key` of an object (`None` for other shapes).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n)
                if n.is_finite() && *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos, depth + 1)? {
                    Json::Str(s) => s,
                    _ => return Err("object key must be a string".to_string()),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number".to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("bad number {text:?} at offset {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number at offset {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are replaced, not combined — the
                        // wire protocol never ships them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the head byte tells the width).
                let width = match bytes[*pos] {
                    b if b < 0x80 => 1,
                    b if b >= 0xF0 => 4,
                    b if b >= 0xE0 => 3,
                    _ => 2,
                };
                let chunk = bytes
                    .get(*pos..*pos + width)
                    .ok_or("truncated UTF-8 sequence")?;
                let s = std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 in string")?;
                out.push_str(s);
                *pos += width;
            }
        }
    }
}

/// Renders `s` as a quoted JSON string with escapes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` the way the repo's JSON emitters do: finite numbers
/// via `{}` (shortest round-trip), non-finite as `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_arrays_and_scalars_round_trip() {
        let doc = r#"{"origin": 3, "nested": {"a": [1, 2.5, -3e2]}, "s": "hi\n\"x\"", "b": true, "n": null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("origin").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi\n\"x\""));
        let nested = v.get("nested").unwrap().get("a").unwrap();
        match nested {
            Json::Arr(items) => assert_eq!(items[2].as_f64(), Some(-300.0)),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for doc in [
            "",
            "{",
            "}",
            "{\"a\"}",
            "{\"a\":}",
            "[1,",
            "\"open",
            "{'a':1}",
            "01a",
            "nul",
            "{\"a\":1}x",
            "NaN",
        ] {
            assert!(Json::parse(doc).is_err(), "{doc:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn quote_escapes_controls() {
        assert_eq!(quote("a\"b\\c\nd\u{1}"), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
