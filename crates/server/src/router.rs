//! Maps parsed HTTP requests onto the [`RideService`] lifecycle.
//!
//! Routing is a plain match over `(method, path segments)` — no
//! framework, no registration. Every [`ServiceError`] has one canonical
//! status:
//!
//! | error                     | status |
//! |---------------------------|--------|
//! | `UnknownSession`          | 404    |
//! | `NotYetOffered`           | 409    |
//! | `AlreadyResolved`         | 409    |
//! | `OfferExpired`            | 410    |
//! | `UnknownOption`           | 404    |
//! | `Engine(UnknownVehicle)`  | 404    |
//! | `Engine(AssignmentFailed)`| 409    |
//! | `Engine(...)` (validation)| 400    |
//! | `Unavailable`             | 503    |

use crate::http::{HttpRequest, Response};
use crate::json::{self, Json};
use ptrider_core::{
    Confirmation, Decision, EngineError, Offer, OptionId, RideService, ServiceError, SessionId,
    SpanNode, TraceContext, VertexId,
};
use ptrider_vehicles::{StopEvent, VehicleId};

/// The endpoint class a request resolved to, for per-endpoint latency
/// histograms. `Other` covers 404s and bad methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /rides`
    Rides,
    /// `POST /sessions/{id}/respond`
    Respond,
    /// `GET /sessions/{id}`
    SessionGet,
    /// `POST /vehicles`, `POST /vehicles/{id}/location`, `POST /vehicles/{id}/arrived`
    Vehicles,
    /// `POST /tick`
    Tick,
    /// `GET /metrics`
    Metrics,
    /// `GET /trace`
    Trace,
    /// `GET /events` (SSE)
    Events,
    /// Anything else.
    Other,
}

impl Endpoint {
    /// All classes, in exposition order.
    pub const ALL: [Endpoint; 9] = [
        Endpoint::Rides,
        Endpoint::Respond,
        Endpoint::SessionGet,
        Endpoint::Vehicles,
        Endpoint::Tick,
        Endpoint::Metrics,
        Endpoint::Trace,
        Endpoint::Events,
        Endpoint::Other,
    ];

    /// The metric-name suffix for this class.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Rides => "rides",
            Endpoint::Respond => "respond",
            Endpoint::SessionGet => "session_get",
            Endpoint::Vehicles => "vehicles",
            Endpoint::Tick => "tick",
            Endpoint::Metrics => "metrics",
            Endpoint::Trace => "trace",
            Endpoint::Events => "events",
            Endpoint::Other => "other",
        }
    }
}

/// Parameters of an accepted SSE stream (`GET /events`).
#[derive(Clone, Copy, Debug, Default)]
pub struct SseParams {
    /// Only forward events touching this session (rider stream).
    pub session: Option<u64>,
    /// Also forward vehicle stop events for this request id.
    pub request: Option<u64>,
    /// Only forward events stamped with this trace id (`?trace=` takes
    /// the 16-hex form echoed in `X-Request-Id`).
    pub trace: Option<u64>,
    /// Close the stream after this many forwarded events.
    pub limit: Option<u64>,
    /// Close the stream after this many milliseconds.
    pub max_ms: Option<u64>,
}

/// Parses a wire trace id: up to 16 hex digits (the `X-Request-Id` /
/// `?trace=` form). Zero is the untraced sentinel, so it is rejected.
pub(crate) fn parse_hex_id(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    match u64::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// What the router decided: an immediate response, or an SSE stream the
/// connection loop takes over.
#[derive(Debug)]
pub enum Handled {
    /// Write this response (keep-alive per the request).
    Respond(Response),
    /// Switch the connection into SSE streaming mode.
    Sse(SseParams),
}

/// Extra text appended to `GET /metrics` (the server's own exposition);
/// produced by the caller so the router stays free of server state.
pub type MetricsSuffix<'a> = &'a dyn Fn() -> String;

/// Routes one request. `default_now` is the server clock (seconds since
/// server start), used when a body omits `now`; `suffix` renders the
/// server-side block of `/metrics`; `ctx` is the request's trace
/// context (the connection loop's `server.handle` root span), threaded
/// into the service so matcher stages and journal appends land in the
/// same trace tree.
pub fn handle(
    service: &RideService,
    req: &HttpRequest,
    default_now: f64,
    suffix: MetricsSuffix<'_>,
    ctx: Option<TraceContext>,
) -> (Handled, Endpoint) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = req.method.as_str();
    match (method, segments.as_slice()) {
        ("POST", ["rides"]) => (
            Handled::Respond(post_rides(service, req, default_now, ctx)),
            Endpoint::Rides,
        ),
        ("POST", ["sessions", id, "respond"]) => (
            Handled::Respond(match parse_id(id) {
                Some(id) => post_respond(service, req, SessionId(id), default_now, ctx),
                None => Response::error(404, "malformed session id"),
            }),
            Endpoint::Respond,
        ),
        ("GET", ["sessions", id]) => (
            Handled::Respond(match parse_id(id) {
                Some(id) => get_session(service, SessionId(id)),
                None => Response::error(404, "malformed session id"),
            }),
            Endpoint::SessionGet,
        ),
        ("POST", ["vehicles"]) => (
            Handled::Respond(post_vehicles(service, req)),
            Endpoint::Vehicles,
        ),
        ("POST", ["vehicles", id, "location"]) => (
            Handled::Respond(match parse_id(id) {
                Some(id) => post_location(service, req, VehicleId(id as u32)),
                None => Response::error(404, "malformed vehicle id"),
            }),
            Endpoint::Vehicles,
        ),
        ("POST", ["vehicles", id, "arrived"]) => (
            Handled::Respond(match parse_id(id) {
                Some(id) => post_arrived(service, VehicleId(id as u32)),
                None => Response::error(404, "malformed vehicle id"),
            }),
            Endpoint::Vehicles,
        ),
        ("POST", ["tick"]) => (
            Handled::Respond(post_tick(service, req, default_now, ctx)),
            Endpoint::Tick,
        ),
        ("GET", ["metrics"]) => (
            Handled::Respond(Response::text(
                200,
                format!("{}{}", service.metrics_text(), suffix()),
            )),
            Endpoint::Metrics,
        ),
        ("GET", ["trace"]) => (Handled::Respond(get_trace(service)), Endpoint::Trace),
        ("GET", ["trace", id]) => (
            Handled::Respond(match parse_hex_id(id) {
                Some(id) => get_trace_tree(service, id),
                None => Response::error(404, "malformed trace id"),
            }),
            Endpoint::Trace,
        ),
        ("GET", ["debug", "slow"]) => (Handled::Respond(get_slow(service)), Endpoint::Trace),
        ("GET", ["events"]) => {
            let params = SseParams {
                session: req.query_param("session").and_then(|v| v.parse().ok()),
                request: req.query_param("request").and_then(|v| v.parse().ok()),
                trace: req.query_param("trace").and_then(parse_hex_id),
                limit: req.query_param("limit").and_then(|v| v.parse().ok()),
                max_ms: req.query_param("max_ms").and_then(|v| v.parse().ok()),
            };
            (Handled::Sse(params), Endpoint::Events)
        }
        ("GET", ["healthz"]) => (
            Handled::Respond(Response::json(200, "{\"ok\":true}")),
            Endpoint::Other,
        ),
        // Known paths with the wrong method get 405 + Allow.
        (_, ["rides"]) | (_, ["vehicles"]) | (_, ["tick"]) | (_, ["sessions", _, "respond"]) => (
            Handled::Respond(
                Response::error(405, "method not allowed").with_header("allow", "POST".to_string()),
            ),
            Endpoint::Other,
        ),
        (_, ["metrics"])
        | (_, ["trace"])
        | (_, ["trace", _])
        | (_, ["debug", "slow"])
        | (_, ["events"])
        | (_, ["healthz"])
        | (_, ["sessions", _]) => (
            Handled::Respond(
                Response::error(405, "method not allowed").with_header("allow", "GET".to_string()),
            ),
            Endpoint::Other,
        ),
        _ => (
            Handled::Respond(Response::error(404, "no such route")),
            Endpoint::Other,
        ),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse::<u64>().ok()
}

/// Parses the request body as a JSON object (empty body → empty object,
/// so bodyless POSTs like `/vehicles/{id}/arrived` stay ergonomic).
fn parse_body(req: &HttpRequest) -> Result<Json, Response> {
    if req.body.is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    let text =
        std::str::from_utf8(&req.body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    Json::parse(text).map_err(|e| Response::error(400, &format!("bad JSON: {e}")))
}

fn body_now(body: &Json, default_now: f64) -> f64 {
    body.get("now")
        .and_then(Json::as_f64)
        .unwrap_or(default_now)
}

fn service_error(e: &ServiceError) -> Response {
    let status = match e {
        ServiceError::UnknownSession(_) => 404,
        ServiceError::NotYetOffered(_) => 409,
        ServiceError::AlreadyResolved(_, _) => 409,
        ServiceError::OfferExpired(_) => 410,
        ServiceError::UnknownOption(_, _) => 404,
        ServiceError::Engine(EngineError::UnknownVehicle(_)) => 404,
        ServiceError::Engine(EngineError::UnknownRequest(_)) => 404,
        ServiceError::Engine(EngineError::AssignmentFailed(_, _)) => 409,
        ServiceError::Engine(EngineError::InvalidRequest(_)) => 400,
        ServiceError::Unavailable(_) => 503,
    };
    let mut resp = Response::error(status, &e.to_string());
    if status == 503 {
        resp = resp.with_header("retry-after", "1".to_string());
    }
    resp
}

fn engine_error(e: &EngineError) -> Response {
    service_error(&ServiceError::Engine(e.clone()))
}

fn render_offer(offer: &Offer) -> String {
    let mut out = format!(
        "{{\"session\":{},\"request\":{},\"expires_at\":{},\"options\":[",
        offer.session.0,
        offer.request.0,
        json::num(offer.expires_at),
    );
    for (i, (id, option)) in offer.iter_ids().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"vehicle\":{},\"pickup_secs\":{},\"pickup_dist\":{},\"price\":{},\"detour_dist\":{}}}",
            id.0,
            option.vehicle.0,
            json::num(option.pickup_secs),
            json::num(option.pickup_dist),
            json::num(option.price),
            json::num(option.detour_dist()),
        ));
    }
    out.push_str("]}");
    out
}

fn render_confirmation(c: &Confirmation) -> String {
    format!(
        "{{\"session\":{},\"state\":\"confirmed\",\"request\":{},\"vehicle\":{},\"price\":{},\"pickup_secs\":{}}}",
        c.session.0,
        c.request.0,
        c.option.vehicle.0,
        json::num(c.option.price),
        json::num(c.option.pickup_secs),
    )
}

fn post_rides(
    service: &RideService,
    req: &HttpRequest,
    default_now: f64,
    ctx: Option<TraceContext>,
) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let (Some(origin), Some(destination)) = (
        body.get("origin").and_then(Json::as_u64),
        body.get("destination").and_then(Json::as_u64),
    ) else {
        return Response::error(400, "origin and destination are required");
    };
    let riders = body.get("riders").and_then(Json::as_u64).unwrap_or(1);
    if origin > u32::MAX as u64 || destination > u32::MAX as u64 || riders > u32::MAX as u64 {
        return Response::error(400, "id out of range");
    }
    let now = body_now(&body, default_now);
    match service.submit_in(
        VertexId(origin as u32),
        VertexId(destination as u32),
        riders as u32,
        now,
        ctx,
    ) {
        Ok(offer) => Response::json(200, render_offer(&offer)),
        Err(e) => service_error(&e),
    }
}

fn post_respond(
    service: &RideService,
    req: &HttpRequest,
    session: SessionId,
    default_now: f64,
    ctx: Option<TraceContext>,
) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let decision = match body.get("decision").and_then(Json::as_str) {
        Some("decline") => Decision::Decline,
        Some("choose") => match body.get("option").and_then(Json::as_u64) {
            Some(option) if option <= u32::MAX as u64 => Decision::Choose(OptionId(option as u32)),
            _ => return Response::error(400, "choose requires an option id"),
        },
        _ => return Response::error(400, "decision must be \"choose\" or \"decline\""),
    };
    let now = body_now(&body, default_now);
    match service.respond_in(session, decision, now, ctx) {
        Ok(Some(confirmation)) => Response::json(200, render_confirmation(&confirmation)),
        Ok(None) => Response::json(
            200,
            format!("{{\"session\":{},\"state\":\"declined\"}}", session.0),
        ),
        Err(e) => service_error(&e),
    }
}

fn get_session(service: &RideService, session: SessionId) -> Response {
    match service.session_state(session) {
        Some(state) => Response::json(
            200,
            format!("{{\"session\":{},\"state\":\"{state}\"}}", session.0),
        ),
        None => service_error(&ServiceError::UnknownSession(session)),
    }
}

fn post_vehicles(service: &RideService, req: &HttpRequest) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let Some(location) = body.get("location").and_then(Json::as_u64) else {
        return Response::error(400, "location is required");
    };
    if location > u32::MAX as u64 {
        return Response::error(400, "id out of range");
    }
    if service.network().num_vertices() <= location as usize {
        return Response::error(400, "location is not a vertex of the network");
    }
    let id = match body.get("capacity").and_then(Json::as_u64) {
        Some(capacity) if capacity >= 1 && capacity <= u32::MAX as u64 => {
            service.add_vehicle_with_capacity(VertexId(location as u32), capacity as u32)
        }
        Some(_) => return Response::error(400, "capacity must be at least 1"),
        None => service.add_vehicle(VertexId(location as u32)),
    };
    Response::json(201, format!("{{\"vehicle\":{}}}", id.0))
}

fn post_location(service: &RideService, req: &HttpRequest, vehicle: VehicleId) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let Some(location) = body.get("location").and_then(Json::as_u64) else {
        return Response::error(400, "location is required");
    };
    if location > u32::MAX as u64 {
        return Response::error(400, "id out of range");
    }
    let travelled = body.get("travelled").and_then(Json::as_f64).unwrap_or(0.0);
    if !(0.0..=f64::MAX).contains(&travelled) {
        return Response::error(400, "travelled must be non-negative");
    }
    match service.location_update(vehicle, VertexId(location as u32), travelled) {
        Ok(()) => Response::json(200, "{\"ok\":true}"),
        Err(e) => engine_error(&e),
    }
}

fn post_arrived(service: &RideService, vehicle: VehicleId) -> Response {
    match service.vehicle_arrived(vehicle) {
        Ok(Some(StopEvent::PickedUp { request, riders })) => Response::json(
            200,
            format!(
                "{{\"event\":{{\"kind\":\"picked_up\",\"request\":{},\"riders\":{riders}}}}}",
                request.0
            ),
        ),
        Ok(Some(StopEvent::DroppedOff {
            request,
            onboard_distance,
        })) => Response::json(
            200,
            format!(
                "{{\"event\":{{\"kind\":\"dropped_off\",\"request\":{},\"onboard_distance\":{}}}}}",
                request.id.0,
                json::num(onboard_distance),
            ),
        ),
        Ok(None) => Response::json(200, "{\"event\":null}"),
        Err(e) => engine_error(&e),
    }
}

fn post_tick(
    service: &RideService,
    req: &HttpRequest,
    default_now: f64,
    ctx: Option<TraceContext>,
) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let now = body_now(&body, default_now);
    let expired = service.tick_in(now, ctx);
    Response::json(200, format!("{{\"expired\":{expired}}}"))
}

fn get_trace(service: &RideService) -> Response {
    let t = service.telemetry();
    let events = t.trace_dump();
    let mut out = format!("{{\"dropped\":{},\"events\":[", t.trace_dropped());
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"start_us\":{},\"duration_ns\":{},\"stage\":\"{}\",\"request\":{},\"trace\":\"{:016x}\",\"span\":{},\"parent\":{}}}",
            e.start_us,
            e.duration_ns,
            e.stage.name(),
            e.request,
            e.trace_id,
            e.span_id,
            e.parent_span_id,
        ));
    }
    out.push_str("]}");
    Response::json(200, out)
}

/// Renders one node of a reassembled span tree, children nested.
fn render_span_node(out: &mut String, node: &SpanNode<'_>) {
    let e = node.event;
    out.push_str(&format!(
        "{{\"stage\":\"{}\",\"start_us\":{},\"duration_ns\":{},\"request\":{},\"span\":{},\"children\":[",
        e.stage.name(),
        e.start_us,
        e.duration_ns,
        e.request,
        e.span_id,
    ));
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_span_node(out, child);
    }
    out.push_str("]}");
}

/// `GET /trace/{id}`: the reassembled span tree of one request. 404 when
/// the trace was never recorded — or already evicted by the bounded
/// per-trace index (the index keeps the most recent traces only).
fn get_trace_tree(service: &RideService, trace_id: u64) -> Response {
    let Some(tree) = service.telemetry().trace_tree(trace_id) else {
        return Response::error(404, "trace not found (never recorded, or evicted)");
    };
    let mut out = format!(
        "{{\"trace\":\"{:016x}\",\"truncated\":{},\"spans\":{},\"roots\":[",
        tree.trace_id,
        tree.truncated,
        tree.spans.len(),
    );
    for (i, root) in tree.roots().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_span_node(&mut out, root);
    }
    out.push_str("]}");
    Response::json(200, out)
}

/// `GET /debug/slow`: the top-K slowest root spans seen so far, slowest
/// first — each entry's trace id feeds `GET /trace/{id}`.
fn get_slow(service: &RideService) -> Response {
    let slow = service.telemetry().slow_traces();
    let mut out = String::from("{\"slow\":[");
    for (i, entry) in slow.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"trace\":\"{:016x}\",\"stage\":\"{}\",\"start_us\":{},\"duration_ns\":{},\"request\":{}}}",
            entry.trace_id,
            entry.stage.name(),
            entry.start_us,
            entry.duration_ns,
            entry.request,
        ));
    }
    out.push_str("]}");
    Response::json(200, out)
}
