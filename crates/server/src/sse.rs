//! Server-sent events over the engine's [`EventLog`] cursor API.
//!
//! A stream is a plain loop: subscribe a cursor, poll it, forward
//! matching events as `event:`/`data:` frames, sleep, repeat. The cursor
//! gives SSE the same slow-consumer semantics the in-process API has: a
//! consumer that cannot keep up does not block the writer — the log
//! evicts past it and the cursor reports how many events were `missed`.
//! Every time that counter grows, the stream interleaves a `missed`
//! frame so the client knows its view has a gap.
//!
//! Frames:
//!
//! ```text
//! event: offered
//! data: {"session":3,"request":3,"options":2,"expires_at":300.0,"at":0.0}
//! ```
//!
//! A rider stream (`?session=N&request=M`) forwards only events touching
//! that session — including the `picked_up` / `dropped_off` vehicle stop
//! events of its request. A stream without filters is the fleet
//! operator's view: everything.
//!
//! [`EventLog`]: ptrider_core::EventLog

use crate::http::Response;
use crate::json;
use crate::router::SseParams;
use ptrider_core::{EngineEvent, RideService};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The event name and JSON payload of one frame.
pub fn render_event(event: &EngineEvent) -> (&'static str, String) {
    match event {
        EngineEvent::Submitted {
            session,
            request,
            origin,
            destination,
            riders,
            at,
        } => (
            "submitted",
            format!(
                "{{\"session\":{},\"request\":{},\"origin\":{},\"destination\":{},\"riders\":{},\"at\":{}}}",
                session.0, request.0, origin.0, destination.0, riders, json::num(*at)
            ),
        ),
        EngineEvent::Offered {
            session,
            request,
            options,
            expires_at,
            at,
        } => (
            "offered",
            format!(
                "{{\"session\":{},\"request\":{},\"options\":{},\"expires_at\":{},\"at\":{}}}",
                session.0, request.0, options, json::num(*expires_at), json::num(*at)
            ),
        ),
        EngineEvent::Confirmed {
            session,
            request,
            vehicle,
            price,
            pickup_secs,
            at,
        } => (
            "confirmed",
            format!(
                "{{\"session\":{},\"request\":{},\"vehicle\":{},\"price\":{},\"pickup_secs\":{},\"at\":{}}}",
                session.0, request.0, vehicle.0, json::num(*price), json::num(*pickup_secs), json::num(*at)
            ),
        ),
        EngineEvent::Declined { session, request, at } => (
            "declined",
            format!(
                "{{\"session\":{},\"request\":{},\"at\":{}}}",
                session.0, request.0, json::num(*at)
            ),
        ),
        EngineEvent::Expired { session, request, at } => (
            "expired",
            format!(
                "{{\"session\":{},\"request\":{},\"at\":{}}}",
                session.0, request.0, json::num(*at)
            ),
        ),
        EngineEvent::AssignmentFailed {
            session,
            request,
            vehicle,
            at,
        } => (
            "assignment_failed",
            format!(
                "{{\"session\":{},\"request\":{},\"vehicle\":{},\"at\":{}}}",
                session.0, request.0, vehicle.0, json::num(*at)
            ),
        ),
        EngineEvent::BatchAdmitted {
            requests,
            assigned,
            at,
        } => (
            "batch_admitted",
            format!(
                "{{\"requests\":{requests},\"assigned\":{assigned},\"at\":{}}}",
                json::num(*at)
            ),
        ),
        EngineEvent::PickedUp { vehicle, request } => (
            "picked_up",
            format!("{{\"vehicle\":{},\"request\":{}}}", vehicle.0, request.0),
        ),
        EngineEvent::DroppedOff { vehicle, request } => (
            "dropped_off",
            format!("{{\"vehicle\":{},\"request\":{}}}", vehicle.0, request.0),
        ),
        EngineEvent::VehicleAdded { vehicle, location } => (
            "vehicle_added",
            format!("{{\"vehicle\":{},\"location\":{}}}", vehicle.0, location.0),
        ),
        EngineEvent::TrafficUpdated {
            epoch,
            ch_repaired,
            congested_arcs,
            max_factor,
            at,
        } => (
            "traffic_updated",
            format!(
                "{{\"epoch\":{epoch},\"ch_repaired\":{ch_repaired},\"congested_arcs\":{congested_arcs},\"max_factor\":{},\"at\":{}}}",
                json::num(*max_factor), json::num(*at)
            ),
        ),
    }
}

/// Whether an event belongs on a stream with the given filters.
pub fn matches(params: &SseParams, event: &EngineEvent) -> bool {
    if params.session.is_none() && params.request.is_none() {
        return true;
    }
    let session = match event {
        EngineEvent::Submitted { session, .. }
        | EngineEvent::Offered { session, .. }
        | EngineEvent::Confirmed { session, .. }
        | EngineEvent::Declined { session, .. }
        | EngineEvent::Expired { session, .. }
        | EngineEvent::AssignmentFailed { session, .. } => Some(session.0),
        _ => None,
    };
    let request = match event {
        EngineEvent::Submitted { request, .. }
        | EngineEvent::Offered { request, .. }
        | EngineEvent::Confirmed { request, .. }
        | EngineEvent::Declined { request, .. }
        | EngineEvent::Expired { request, .. }
        | EngineEvent::AssignmentFailed { request, .. }
        | EngineEvent::PickedUp { request, .. }
        | EngineEvent::DroppedOff { request, .. } => Some(request.0),
        _ => None,
    };
    (params.session.is_some() && session == params.session)
        || (params.request.is_some() && request == params.request)
}

/// Runs one SSE stream until the client disconnects, a limit is hit, or
/// the server shuts down. The response head is written here; the caller
/// must not have written anything yet. `request_id` is the connection's
/// correlation id, echoed as `x-request-id` like every other response.
pub fn stream(
    service: &RideService,
    stream: &TcpStream,
    params: &SseParams,
    poll: Duration,
    shutdown: &AtomicBool,
    request_id: u64,
) -> std::io::Result<()> {
    let head = Response {
        status: 200,
        content_type: "text/event-stream",
        extra_headers: vec![("cache-control".to_string(), "no-cache".to_string())],
        body: Vec::new(),
    };
    // SSE responses have no Content-Length; hand-write the head.
    let mut w = stream;
    w.write_all(
        format!(
            "HTTP/1.1 200 OK\r\ncontent-type: {}\r\ncache-control: no-cache\r\nx-request-id: {request_id:016x}\r\nconnection: close\r\n\r\n",
            head.content_type
        )
        .as_bytes(),
    )?;
    w.flush()?;

    let mut cursor = service.subscribe();
    let mut reported_missed = cursor.missed();
    let mut forwarded: u64 = 0;
    let started = Instant::now();
    let deadline = params.max_ms.map(|ms| started + Duration::from_millis(ms));

    loop {
        if shutdown.load(Ordering::Acquire) {
            w.write_all(b"event: shutdown\r\ndata: {}\n\n")?;
            return Ok(());
        }
        let events = service.poll_stamped_events(&mut cursor);
        // The log may have evicted past the cursor while we slept; tell
        // the client how many events it will never see.
        let missed = cursor.missed();
        if missed > reported_missed {
            let frame = format!(
                "event: missed\ndata: {{\"missed\":{},\"total_missed\":{}}}\n\n",
                missed - reported_missed,
                missed
            );
            w.write_all(frame.as_bytes())?;
            reported_missed = missed;
        }
        for stamped in &events {
            if params.trace.is_some_and(|t| stamped.trace_id != t) {
                continue;
            }
            if !matches(params, &stamped.event) {
                continue;
            }
            let (name, mut data) = render_event(&stamped.event);
            if stamped.trace_id != 0 {
                // Splice the trace id into the payload object so a
                // `?trace=` consumer can cross-reference `GET /trace/{id}`.
                data.truncate(data.len() - 1);
                data.push_str(&format!(",\"trace\":\"{:016x}\"}}", stamped.trace_id));
            }
            w.write_all(format!("event: {name}\ndata: {data}\n\n").as_bytes())?;
            forwarded += 1;
            if params.limit.is_some_and(|limit| forwarded >= limit) {
                w.flush()?;
                return Ok(());
            }
        }
        w.flush()?;
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(());
        }
        if events.is_empty() {
            std::thread::sleep(poll);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptrider_core::SessionId;
    use ptrider_vehicles::{RequestId, VehicleId};

    fn offered(session: u64, request: u64) -> EngineEvent {
        EngineEvent::Offered {
            session: SessionId(session),
            request: RequestId(request),
            options: 1,
            expires_at: 300.0,
            at: 0.0,
        }
    }

    #[test]
    fn an_unfiltered_stream_sees_everything() {
        let params = SseParams::default();
        assert!(matches(&params, &offered(1, 1)));
        assert!(matches(
            &params,
            &EngineEvent::PickedUp {
                vehicle: VehicleId(0),
                request: RequestId(9)
            }
        ));
    }

    #[test]
    fn a_rider_stream_filters_by_session_and_request() {
        let params = SseParams {
            session: Some(3),
            request: Some(7),
            ..SseParams::default()
        };
        assert!(matches(&params, &offered(3, 7)));
        assert!(!matches(&params, &offered(4, 8)));
        // Stop events carry no session id; the request filter catches them.
        assert!(matches(
            &params,
            &EngineEvent::DroppedOff {
                vehicle: VehicleId(0),
                request: RequestId(7)
            }
        ));
        assert!(!matches(
            &params,
            &EngineEvent::DroppedOff {
                vehicle: VehicleId(0),
                request: RequestId(8)
            }
        ));
    }

    #[test]
    fn every_event_variant_renders_valid_json() {
        let events = vec![
            EngineEvent::Submitted {
                session: SessionId(1),
                request: RequestId(1),
                origin: ptrider_roadnet::VertexId(0),
                destination: ptrider_roadnet::VertexId(5),
                riders: 2,
                at: 1.5,
            },
            offered(1, 1),
            EngineEvent::Confirmed {
                session: SessionId(1),
                request: RequestId(1),
                vehicle: VehicleId(2),
                price: 4.5,
                pickup_secs: 30.0,
                at: 2.0,
            },
            EngineEvent::Declined {
                session: SessionId(1),
                request: RequestId(1),
                at: 2.0,
            },
            EngineEvent::Expired {
                session: SessionId(1),
                request: RequestId(1),
                at: 2.0,
            },
            EngineEvent::AssignmentFailed {
                session: SessionId(1),
                request: RequestId(1),
                vehicle: VehicleId(2),
                at: 2.0,
            },
            EngineEvent::BatchAdmitted {
                requests: 4,
                assigned: 3,
                at: 2.0,
            },
            EngineEvent::PickedUp {
                vehicle: VehicleId(2),
                request: RequestId(1),
            },
            EngineEvent::DroppedOff {
                vehicle: VehicleId(2),
                request: RequestId(1),
            },
            EngineEvent::VehicleAdded {
                vehicle: VehicleId(2),
                location: ptrider_roadnet::VertexId(3),
            },
            EngineEvent::TrafficUpdated {
                epoch: 2,
                ch_repaired: true,
                congested_arcs: 10,
                max_factor: 2.5,
                at: 3.0,
            },
        ];
        for event in &events {
            let (name, data) = render_event(event);
            assert!(!name.is_empty());
            crate::json::Json::parse(&data)
                .unwrap_or_else(|e| panic!("{name} rendered invalid JSON ({e}): {data}"));
        }
    }
}
