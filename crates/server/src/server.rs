//! The listener, connection loops, backpressure, and graceful shutdown.
//!
//! Threading model (see DESIGN.md "Network front door"):
//!
//! * one acceptor thread owns the listener;
//! * each accepted connection gets its own small-stack thread running a
//!   keep-alive loop (parse → handle → respond);
//! * handler *execution* is bounded separately by a semaphore of
//!   [`crate::ServerConfig::threads`] permits — connections past that
//!   queue inside their own thread, so the kernel socket buffers (and
//!   eventually the connection cap) provide the backpressure;
//! * connections past [`crate::ServerConfig::max_conns`] are shed on the
//!   accept path with `503` + `Retry-After` before any thread is spawned.
//!
//! Shutdown drains: stop accepting, close the read side of every open
//! connection (in-flight responses still write), wait for the loops to
//! exit (bounded by `drain_timeout`), then flush the admission journal
//! with [`RideService::sync_journal`] so a restart recovers everything
//! the server acknowledged.

use crate::config::ServerConfig;
use crate::http::{self, ConnReader, HttpRequest, ReadLimits, ReadOutcome, Response};
use crate::router::{self, parse_hex_id, Endpoint, Handled};
use crate::sse;
use ptrider_core::{
    Counter, Gauge, ProfiledMutex, PromWriter, RideService, ShardedHistogram, Stage, Telemetry,
    TraceContext,
};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Stack size for connection threads: the handlers call into the engine,
/// whose deep recursion lives on the worker pool, not here.
const CONN_STACK: usize = 256 * 1024;

/// A counting semaphore bounding concurrent handler execution.
struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut permits = self.permits.lock().unwrap_or_else(|p| p.into_inner());
        while *permits == 0 {
            permits = self
                .available
                .wait(permits)
                .unwrap_or_else(|p| p.into_inner());
        }
        *permits -= 1;
    }

    fn release(&self) {
        let mut permits = self.permits.lock().unwrap_or_else(|p| p.into_inner());
        *permits += 1;
        drop(permits);
        self.available.notify_one();
    }
}

/// The server's own instrumentation: counters and gauges registered on
/// the service's [`Telemetry`] hub (so they ride along in
/// `metrics_text`'s `ptrider_server_*` section), plus per-endpoint
/// latency histograms rendered into the `/metrics` response.
///
/// [`Telemetry`]: ptrider_core::Telemetry
struct ServerMetrics {
    accepted: Arc<Counter>,
    shed: Arc<Counter>,
    requests: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    open_conns: Arc<Gauge>,
    inflight: Arc<Gauge>,
    endpoints: Vec<(Endpoint, ShardedHistogram)>,
}

impl ServerMetrics {
    fn new(service: &RideService) -> ServerMetrics {
        let t = service.telemetry();
        ServerMetrics {
            accepted: t.counter("server_connections_accepted"),
            shed: t.counter("server_connections_shed"),
            requests: t.counter("server_requests"),
            protocol_errors: t.counter("server_protocol_errors"),
            open_conns: t.gauge("server_connections_open"),
            inflight: t.gauge("server_inflight_requests"),
            endpoints: Endpoint::ALL
                .iter()
                .map(|e| (*e, ShardedHistogram::new()))
                .collect(),
        }
    }

    fn record(&self, endpoint: Endpoint, elapsed: Duration) {
        if let Some((_, hist)) = self.endpoints.iter().find(|(e, _)| *e == endpoint) {
            hist.record(elapsed.as_nanos() as u64);
        }
    }

    /// The server-side suffix of `/metrics`: one latency histogram per
    /// endpoint, in seconds.
    fn render(&self) -> String {
        let mut w = PromWriter::new();
        for (endpoint, hist) in &self.endpoints {
            let snap = hist.snapshot();
            if snap.count() == 0 {
                continue;
            }
            w.histogram(
                &format!("ptrider_server_{}_latency_seconds", endpoint.name()),
                "Endpoint handling latency in seconds.",
                &snap,
                1e-9,
            );
        }
        w.finish()
    }
}

struct Shared {
    service: Arc<RideService>,
    config: ServerConfig,
    shutdown: AtomicBool,
    open: AtomicUsize,
    inflight: AtomicUsize,
    next_conn_id: AtomicU64,
    /// Mints `X-Request-Id` values when tracing is off (the engine's
    /// telemetry is not allocating trace ids, but every response still
    /// echoes a correlation id).
    next_fallback_trace: AtomicU64,
    handler_permits: Semaphore,
    metrics: ServerMetrics,
    /// Read-side clones of every open connection, so shutdown can force
    /// idle keep-alive loops to wake. Profiled as `server.conns`: the
    /// accept path and every connection exit contend on it.
    registry: ProfiledMutex<HashMap<u64, TcpStream>>,
    /// Count of live connection threads + the condvar shutdown waits on.
    live: Mutex<usize>,
    drained: Condvar,
    started: Instant,
}

impl Shared {
    fn now_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn limits(&self) -> ReadLimits {
        ReadLimits {
            max_head: self.config.max_header_bytes,
            max_body: self.config.max_body_bytes,
            read_timeout: self.config.read_timeout,
            idle_timeout: self.config.idle_timeout,
        }
    }
}

/// The PTRider HTTP front door. Construct with [`Server::start`].
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts accepting. The returned handle
    /// reports the bound address (useful with port `0`) and shuts the
    /// server down when asked — or on drop.
    pub fn start(service: Arc<RideService>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = ServerMetrics::new(&service);
        let conns_site = service.telemetry().lock_site("server.conns");
        let shared = Arc::new(Shared {
            handler_permits: Semaphore::new(config.threads),
            metrics,
            service,
            config,
            shutdown: AtomicBool::new(false),
            open: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(0),
            next_fallback_trace: AtomicU64::new(1),
            registry: ProfiledMutex::new(HashMap::new(), conns_site),
            live: Mutex::new(0),
            drained: Condvar::new(),
            started: Instant::now(),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ptrider-http-accept".to_string())
                .spawn(move || accept_loop(&shared, listener))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }
}

/// A running server: its address and the shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight requests (bounded by
    /// [`ServerConfig::drain_timeout`]), and flushes the admission
    /// journal. Idempotent. Returns `true` when every connection exited
    /// within the drain budget.
    pub fn shutdown(&mut self) -> bool {
        let shared = &self.shared;
        if shared.shutdown.swap(true, Ordering::AcqRel) {
            return true;
        }
        // Wake the acceptor: it is blocked in accept(2), so poke it with
        // a throwaway connection (a failure means it is already awake).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Close the read side of every open connection: idle keep-alive
        // loops wake with EOF and exit; in-flight handlers still hold the
        // write side and finish their response.
        {
            let registry = shared.registry.lock().unwrap_or_else(|p| p.into_inner());
            for stream in registry.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        let deadline = Instant::now() + shared.config.drain_timeout;
        let mut live = shared.live.lock().unwrap_or_else(|p| p.into_inner());
        let drained = loop {
            if *live == 0 {
                break true;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break false;
            }
            let (guard, _) = shared
                .drained
                .wait_timeout(live, remaining)
                .unwrap_or_else(|p| p.into_inner());
            live = guard;
        };
        drop(live);
        // Everything the server acknowledged is on disk before we return.
        shared.service.sync_journal();
        shared.metrics.open_conns.set(0.0);
        shared.metrics.inflight.set(0.0);
        drained
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let _span = shared.service.telemetry().span(Stage::ServerAccept);
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.metrics.accepted.inc();
        let open = shared.open.load(Ordering::Acquire);
        if open >= shared.config.max_conns {
            shed(shared, &stream);
            continue;
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .registry
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(id, clone);
        }
        let open = shared.open.fetch_add(1, Ordering::AcqRel) + 1;
        shared.metrics.open_conns.set(open as f64);
        *shared.live.lock().unwrap_or_else(|p| p.into_inner()) += 1;
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("ptrider-http-conn".to_string())
            .stack_size(CONN_STACK)
            .spawn(move || {
                conn_loop(&conn_shared, &stream);
                conn_exit(&conn_shared, id);
            });
        if spawned.is_err() {
            // Thread exhaustion is a shed, not a hang.
            conn_exit(shared, id);
            shared.metrics.shed.inc();
        }
    }
}

/// One request's wire trace identity: the id echoed to the client and
/// the engine context (when tracing is on) that everything downstream of
/// the `server.handle` root span records under.
#[derive(Clone, Copy)]
struct RequestTrace {
    /// Echoed as `x-request-id` (and the trace-id half of `traceparent`).
    trace_id: u64,
    /// The engine's live context; `None` when tracing is off — the
    /// header is still echoed, spans are not recorded.
    ctx: Option<TraceContext>,
}

/// Parses an inbound `traceparent` (W3C: `00-{32hex}-{16hex}-{2hex}`),
/// keeping the low 64 bits of the trace id (the engine's native width).
fn parse_traceparent(value: &str) -> Option<(u64, u64)> {
    let mut parts = value.trim().split('-');
    let (version, trace, span, _flags) =
        (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
    if version.len() != 2 || trace.len() != 32 || span.len() != 16 {
        return None;
    }
    let trace_id = u64::from_str_radix(&trace[16..], 16).ok()?;
    let parent_span = u64::from_str_radix(span, 16).ok()?;
    (trace_id != 0).then_some((trace_id, parent_span))
}

/// The inbound trace identity, when the client sent one: `traceparent`
/// wins over `X-Request-Id` (which carries no parent span id).
fn inbound_trace(req: &HttpRequest) -> Option<(u64, u64)> {
    if let Some(ids) = req.header("traceparent").and_then(parse_traceparent) {
        return Some(ids);
    }
    parse_hex_id(req.header("x-request-id")?).map(|id| (id, 0))
}

/// Resolves the request's trace identity: adopt the inbound one, else
/// mint — through the telemetry hub when tracing is on (so the id is
/// unique among stored traces), else from the server's fallback counter
/// (correlation only). `req` is `None` on paths that respond before a
/// request could be parsed (shed, protocol errors).
fn request_trace(
    telemetry: &Telemetry,
    req: Option<&HttpRequest>,
    fallback: &AtomicU64,
) -> RequestTrace {
    if let Some((trace_id, parent_span)) = req.and_then(inbound_trace) {
        return RequestTrace {
            trace_id,
            ctx: telemetry.adopt_trace(trace_id, parent_span),
        };
    }
    match telemetry.new_trace() {
        Some(ctx) => RequestTrace {
            trace_id: ctx.trace_id,
            ctx: Some(ctx),
        },
        None => RequestTrace {
            trace_id: fallback.fetch_add(1, Ordering::Relaxed),
            ctx: None,
        },
    }
}

/// Stamps the response with the request's correlation headers:
/// `x-request-id` on every response, plus a `traceparent` naming the
/// root span when the request was actually traced (so the header is
/// never emitted with an invalid all-zero parent id).
fn echo_trace(resp: Response, rt: RequestTrace, root_span: u64) -> Response {
    let resp = resp.with_header("x-request-id", format!("{:016x}", rt.trace_id));
    if rt.ctx.is_some() && root_span != 0 {
        resp.with_header(
            "traceparent",
            format!("00-{:032x}-{:016x}-01", rt.trace_id, root_span),
        )
    } else {
        resp
    }
}

/// The 503 + `Retry-After` shed path: never blocks, never spawns. Runs
/// before any request is read, so the correlation id is always minted.
fn shed(shared: &Shared, stream: &TcpStream) {
    shared.metrics.shed.inc();
    let rt = request_trace(
        shared.service.telemetry(),
        None,
        &shared.next_fallback_trace,
    );
    let resp = Response::error(503, "connection limit reached")
        .with_header("retry-after", shared.config.retry_after_secs.to_string());
    let resp = echo_trace(resp, rt, 0);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = http::write_response(stream, &resp, false);
    let _ = stream.shutdown(Shutdown::Both);
}

fn conn_exit(shared: &Shared, id: u64) {
    shared
        .registry
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&id);
    let open = shared.open.fetch_sub(1, Ordering::AcqRel) - 1;
    shared.metrics.open_conns.set(open as f64);
    let mut live = shared.live.lock().unwrap_or_else(|p| p.into_inner());
    *live -= 1;
    if *live == 0 {
        shared.drained.notify_all();
    }
}

fn conn_loop(shared: &Arc<Shared>, stream: &TcpStream) {
    let telemetry = shared.service.telemetry();
    let mut reader = ConnReader::new(stream);
    let limits = shared.limits();
    loop {
        let outcome = {
            let _span = telemetry.span(Stage::ServerRead);
            reader.read_request(&limits)
        };
        let req = match outcome {
            ReadOutcome::Request(req) => req,
            ReadOutcome::Closed => return,
            ReadOutcome::Bad(e) => {
                shared.metrics.protocol_errors.inc();
                // Even a protocol failure echoes a correlation id (the
                // request may be unparsable, so the id is minted).
                let rt = request_trace(telemetry, None, &shared.next_fallback_trace);
                let resp = echo_trace(Response::error(e.status, &e.message), rt, 0);
                let _span = telemetry.span(Stage::ServerWrite);
                let _ = http::write_response(stream, &resp, false);
                return;
            }
        };
        shared.metrics.requests.inc();
        let rt = request_trace(telemetry, Some(&req), &shared.next_fallback_trace);
        let handle_started = Instant::now();
        let (handled, endpoint, root_span) = {
            shared.handler_permits.acquire();
            let inflight = shared.inflight.fetch_add(1, Ordering::AcqRel) + 1;
            shared.metrics.inflight.set(inflight as f64);
            // The traced root: the router threads this span's context
            // into the service, so the whole request hangs off it.
            let span = telemetry.span_in(Stage::ServerHandle, rt.ctx);
            let ctx = span.context();
            let suffix = || shared.metrics.render();
            let (handled, endpoint) =
                router::handle(&shared.service, &req, shared.now_secs(), &suffix, ctx);
            let inflight = shared.inflight.fetch_sub(1, Ordering::AcqRel) - 1;
            shared.metrics.inflight.set(inflight as f64);
            shared.handler_permits.release();
            (handled, endpoint, ctx.map_or(0, |c| c.span_id))
        };
        match handled {
            Handled::Respond(resp) => {
                shared.metrics.record(endpoint, handle_started.elapsed());
                let resp = echo_trace(resp, rt, root_span);
                let keep_alive = req.keep_alive() && !shared.shutdown.load(Ordering::Acquire);
                let wrote = {
                    let _span = telemetry.span(Stage::ServerWrite);
                    http::write_response(stream, &resp, keep_alive)
                };
                if wrote.is_err() || !keep_alive {
                    return;
                }
            }
            Handled::Sse(params) => {
                // The stream takes over the connection; it never
                // keep-alives (framing is open-ended).
                let _ = sse::stream(
                    &shared.service,
                    stream,
                    &params,
                    shared.config.sse_poll,
                    &shared.shutdown,
                    rt.trace_id,
                );
                shared.metrics.record(endpoint, handle_started.elapsed());
                return;
            }
        }
    }
}
