//! The PTRider network front door: a zero-dependency HTTP/1.1 server
//! exposing the [`RideService`] lifecycle as JSON endpoints and
//! server-sent events, over nothing but `std::net`.
//!
//! # Endpoints
//!
//! | Method & path                   | Meaning                                      |
//! |---------------------------------|----------------------------------------------|
//! | `POST /rides`                   | Submit a request; returns the offer skyline  |
//! | `POST /sessions/{id}/respond`   | Confirm an option or decline                 |
//! | `GET /sessions/{id}`            | Session lifecycle state                      |
//! | `POST /vehicles`                | Add a vehicle to the fleet                   |
//! | `POST /vehicles/{id}/location`  | Periodic location update                     |
//! | `POST /vehicles/{id}/arrived`   | Serve the vehicle's next stop                |
//! | `POST /tick`                    | Advance the offer-expiry clock               |
//! | `GET /metrics`                  | Prometheus text exposition (0.0.4)           |
//! | `GET /trace`                    | Drain the bounded trace ring as JSON         |
//! | `GET /trace/{id}`               | One request's reassembled span tree          |
//! | `GET /debug/slow`               | Top-K slowest request roots, slowest first   |
//! | `GET /events`                   | SSE stream (`?session=&request=&trace=`)     |
//! | `GET /healthz`                  | Liveness probe                               |
//!
//! Every response echoes `X-Request-Id` (16 hex digits) — honoring an
//! inbound `X-Request-Id` or `traceparent` when the client sent one —
//! and, when request-scoped tracing is on (`PTRIDER_TELEMETRY=spans`),
//! a `traceparent` whose parent-id is the request's `server.handle`
//! root span. The id is the key into `GET /trace/{id}`.
//!
//! Request bodies are JSON; `now` (workload seconds) is optional
//! everywhere and defaults to seconds since the server started.
//!
//! # Quickstart
//!
//! ```no_run
//! use ptrider_core::{EngineConfig, RideService};
//! use ptrider_roadnet::{GridConfig, RoadNetworkBuilder};
//! use ptrider_server::{Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let mut b = RoadNetworkBuilder::new();
//! let a = b.add_vertex(0.0, 0.0);
//! let z = b.add_vertex(1000.0, 0.0);
//! b.add_bidirectional_edge(a, z, 1000.0);
//! let service = Arc::new(RideService::new(
//!     b.build().unwrap(),
//!     GridConfig::with_dimensions(1, 1),
//!     EngineConfig::default(),
//! ));
//! let mut handle = Server::start(service, ServerConfig::default()).unwrap();
//! println!("listening on {}", handle.addr());
//! // ... drive it over HTTP ...
//! handle.shutdown();
//! ```
//!
//! See DESIGN.md "Network front door" for the threading model,
//! backpressure watermarks, SSE cursor semantics, and the shutdown /
//! journal-flush ordering.
//!
//! [`RideService`]: ptrider_core::RideService

#![warn(missing_docs)]

pub mod config;
pub mod http;
pub mod json;
pub mod router;
pub mod server;
pub mod sse;

pub use config::ServerConfig;
pub use http::{HttpRequest, Response};
pub use json::Json;
pub use router::{Endpoint, SseParams};
pub use server::{Server, ServerHandle};
