//! Server knobs and their environment defaults.
//!
//! Like [`ptrider_core::EngineConfig`], every knob follows the same
//! precedence: an explicit builder call wins over the environment, the
//! environment wins over the built-in default. The environment is read
//! once per process (`OnceLock`), so a test that sets a variable after
//! the first [`ServerConfig::default`] sees the cached value — construct
//! configs explicitly in tests.
//!
//! | Variable                 | Default         | Meaning                       |
//! |--------------------------|-----------------|-------------------------------|
//! | `PTRIDER_HTTP_ADDR`      | `127.0.0.1:0`   | Bind address                  |
//! | `PTRIDER_HTTP_THREADS`   | `8`             | Concurrent request handlers   |
//! | `PTRIDER_HTTP_MAX_CONNS` | `1024`          | Open-connection cap (shed)    |

use std::sync::OnceLock;
use std::time::Duration;

/// Configuration for [`crate::Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    /// Default `127.0.0.1:0`, overridable via `PTRIDER_HTTP_ADDR`.
    pub addr: String,
    /// How many requests may execute their handler concurrently. Excess
    /// requests queue on a semaphore inside their connection thread (the
    /// socket provides the backpressure). Default `8`, overridable via
    /// `PTRIDER_HTTP_THREADS`.
    pub threads: usize,
    /// Open-connection cap. Connections past the cap are shed with
    /// `503` + `Retry-After` before a thread is spawned. Default `1024`,
    /// overridable via `PTRIDER_HTTP_MAX_CONNS`.
    pub max_conns: usize,
    /// Budget for reading one full request once its first byte arrived.
    /// A slow sender (slow loris) exceeding it gets `408` and the
    /// connection closed. Default 10 s.
    pub read_timeout: Duration,
    /// Budget for writing one response (including one SSE frame). A
    /// consumer slower than this is disconnected. Default 10 s.
    pub write_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the reaper closes it silently. Default 30 s.
    pub idle_timeout: Duration,
    /// `Retry-After` seconds advertised on the `503` shed path.
    /// Default 1.
    pub retry_after_secs: u32,
    /// Largest accepted request body; larger bodies get `413`.
    /// Default 64 KiB.
    pub max_body_bytes: usize,
    /// Largest accepted request head (request line + headers); larger
    /// heads get `431`. Default 8 KiB.
    pub max_header_bytes: usize,
    /// How long an SSE stream sleeps between event-log polls.
    /// Default 20 ms.
    pub sse_poll: Duration,
    /// How long [`crate::ServerHandle::shutdown`] waits for in-flight
    /// connections to drain before giving up on stragglers. Default 5 s.
    pub drain_timeout: Duration,
}

fn env_addr() -> Option<String> {
    static ENV: OnceLock<Option<String>> = OnceLock::new();
    ENV.get_or_init(|| {
        std::env::var("PTRIDER_HTTP_ADDR")
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
    })
    .clone()
}

fn env_usize(var: &'static str, cell: &'static OnceLock<Option<usize>>) -> Option<usize> {
    *cell.get_or_init(|| {
        std::env::var(var)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|n| *n > 0)
    })
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    env_usize("PTRIDER_HTTP_THREADS", &ENV)
}

fn env_max_conns() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    env_usize("PTRIDER_HTTP_MAX_CONNS", &ENV)
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: env_addr().unwrap_or_else(|| "127.0.0.1:0".to_string()),
            threads: env_threads().unwrap_or(8),
            max_conns: env_max_conns().unwrap_or(1024),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
            max_body_bytes: 64 * 1024,
            max_header_bytes: 8 * 1024,
            sse_poll: Duration::from_millis(20),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    /// Sets the bind address (wins over `PTRIDER_HTTP_ADDR`).
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the handler concurrency (wins over `PTRIDER_HTTP_THREADS`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the connection cap (wins over `PTRIDER_HTTP_MAX_CONNS`).
    pub fn with_max_conns(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns.max(1);
        self
    }

    /// Sets the per-request read budget.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the per-response write budget.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Sets the keep-alive idle budget.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the request-body cap in bytes.
    pub fn with_max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Sets the SSE poll interval.
    pub fn with_sse_poll(mut self, interval: Duration) -> Self {
        self.sse_poll = interval;
        self
    }

    /// Sets the shutdown drain budget.
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_win_over_defaults() {
        let c = ServerConfig::default()
            .with_addr("0.0.0.0:8080")
            .with_threads(2)
            .with_max_conns(16);
        assert_eq!(c.addr, "0.0.0.0:8080");
        assert_eq!(c.threads, 2);
        assert_eq!(c.max_conns, 16);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let c = ServerConfig::default().with_threads(0).with_max_conns(0);
        assert_eq!(c.threads, 1);
        assert_eq!(c.max_conns, 1);
    }
}
