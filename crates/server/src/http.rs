//! A deliberately small HTTP/1.1 reader/writer over blocking sockets.
//!
//! This is not a general HTTP implementation — it supports exactly what
//! the PTRider wire protocol needs: request line + headers + an optional
//! `Content-Length` body, keep-alive, and typed failure modes. Every
//! malformed input maps to a 4xx, never a panic:
//!
//! * head larger than the configured cap → `431`
//! * body larger than the configured cap → `413`
//! * `Transfer-Encoding: chunked` → `501` (not implemented, by design)
//! * a request that trickles in past the read budget (slow loris) → `408`
//! * anything unparsable → `400`
//!
//! The reader distinguishes a *mid-request* stall (reported as `408`)
//! from an *idle* keep-alive connection going quiet (closed silently):
//! the read budget only starts once the first byte of a request arrives.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One parsed request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// The method token, upper-cased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target, percent-decoding not
    /// applied (the wire protocol uses plain segments only).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of the (lower-case) header `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of the query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open after the
    /// response (HTTP/1.1 defaults to yes).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => !v.eq_ignore_ascii_case("close"),
            None => true,
        }
    }
}

/// A typed protocol failure: the status to report and whether the
/// connection is still usable afterwards (it never is — every parse
/// failure closes, because framing may be lost).
#[derive(Clone, Debug)]
pub struct HttpError {
    /// HTTP status code to send.
    pub status: u16,
    /// Human-readable detail for the JSON error body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// What one read attempt on a connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(HttpRequest),
    /// The peer closed (or went idle past the budget) between requests —
    /// close silently, nothing to respond to.
    Closed,
    /// A protocol failure — respond with the error, then close.
    Bad(HttpError),
}

/// Caps and budgets for reading one request.
#[derive(Clone, Copy, Debug)]
pub struct ReadLimits {
    /// Request-line + headers cap in bytes (`431` past it).
    pub max_head: usize,
    /// Body cap in bytes (`413` past it).
    pub max_body: usize,
    /// Budget from the first byte of a request to its last (`408`).
    pub read_timeout: Duration,
    /// How long the connection may idle before the first byte.
    pub idle_timeout: Duration,
}

/// A tiny buffered reader over `&TcpStream` that understands the
/// idle/mid-request timeout split.
pub struct ConnReader<'a> {
    stream: &'a TcpStream,
    buf: [u8; 4096],
    pos: usize,
    len: usize,
}

impl<'a> ConnReader<'a> {
    /// Wraps a stream. The reader owns buffering; do not read from the
    /// stream elsewhere while it is alive.
    pub fn new(stream: &'a TcpStream) -> ConnReader<'a> {
        ConnReader {
            stream,
            buf: [0; 4096],
            pos: 0,
            len: 0,
        }
    }

    /// Refills the buffer, honouring `deadline` when set. Returns
    /// `Ok(false)` on EOF.
    fn fill(&mut self, deadline: Option<Instant>) -> std::io::Result<bool> {
        debug_assert_eq!(self.pos, self.len);
        if let Some(deadline) = deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(std::io::Error::new(ErrorKind::TimedOut, "read budget"));
            }
            self.stream.set_read_timeout(Some(remaining))?;
        }
        let mut stream = self.stream;
        match stream.read(&mut self.buf) {
            Ok(0) => Ok(false),
            Ok(n) => {
                self.pos = 0;
                self.len = n;
                Ok(true)
            }
            Err(e) => Err(e),
        }
    }

    fn next_byte(&mut self, deadline: Option<Instant>) -> std::io::Result<Option<u8>> {
        if self.pos == self.len && !self.fill(deadline)? {
            return Ok(None);
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b))
    }

    /// Reads one request. `limits.idle_timeout` governs the wait for the
    /// first byte; from then on the whole request must arrive within
    /// `limits.read_timeout`.
    pub fn read_request(&mut self, limits: &ReadLimits) -> ReadOutcome {
        // Phase 1: wait for the first byte under the idle budget.
        if self.pos == self.len {
            if self
                .stream
                .set_read_timeout(Some(limits.idle_timeout))
                .is_err()
            {
                return ReadOutcome::Closed;
            }
            match self.fill(None) {
                Ok(true) => {}
                Ok(false) => return ReadOutcome::Closed,
                Err(e) if is_timeout(&e) => return ReadOutcome::Closed,
                Err(_) => return ReadOutcome::Closed,
            }
        }
        // Phase 2: the request clock is running.
        let deadline = Instant::now() + limits.read_timeout;
        let mut head = Vec::with_capacity(256);
        loop {
            match self.next_byte(Some(deadline)) {
                Ok(Some(b)) => head.push(b),
                Ok(None) => {
                    return ReadOutcome::Bad(HttpError::new(400, "connection closed mid-request"))
                }
                Err(e) if is_timeout(&e) => {
                    return ReadOutcome::Bad(HttpError::new(408, "request head timed out"))
                }
                Err(_) => return ReadOutcome::Closed,
            }
            if head.ends_with(b"\r\n\r\n") {
                break;
            }
            if head.len() > limits.max_head {
                return ReadOutcome::Bad(HttpError::new(431, "request head too large"));
            }
        }
        let head = match std::str::from_utf8(&head) {
            Ok(s) => s,
            Err(_) => return ReadOutcome::Bad(HttpError::new(400, "request head is not UTF-8")),
        };
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if parts.next().is_none() && !m.is_empty() => {
                (m.to_string(), t.to_string(), v)
            }
            _ => return ReadOutcome::Bad(HttpError::new(400, "malformed request line")),
        };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return ReadOutcome::Bad(HttpError::new(505, "unsupported HTTP version"));
        }
        if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
            return ReadOutcome::Bad(HttpError::new(400, "malformed method token"));
        }
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                return ReadOutcome::Bad(HttpError::new(400, "malformed header line"));
            };
            if name.is_empty() || name.contains(' ') {
                return ReadOutcome::Bad(HttpError::new(400, "malformed header name"));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let (path, query) = parse_target(&target);

        // Body framing.
        if headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
        {
            return ReadOutcome::Bad(HttpError::new(501, "chunked bodies are not supported"));
        }
        let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
            Some((_, v)) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return ReadOutcome::Bad(HttpError::new(400, "bad content-length")),
            },
            None => 0,
        };
        if content_length > limits.max_body {
            return ReadOutcome::Bad(HttpError::new(413, "request body too large"));
        }
        let mut body = Vec::with_capacity(content_length);
        while body.len() < content_length {
            match self.next_byte(Some(deadline)) {
                Ok(Some(b)) => body.push(b),
                Ok(None) => {
                    return ReadOutcome::Bad(HttpError::new(400, "connection closed mid-body"))
                }
                Err(e) if is_timeout(&e) => {
                    return ReadOutcome::Bad(HttpError::new(408, "request body timed out"))
                }
                Err(_) => return ReadOutcome::Closed,
            }
        }
        ReadOutcome::Request(HttpRequest {
            method,
            path,
            query,
            headers,
            body,
        })
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        Some((path, query)) => {
            let params = query
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (kv.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), params)
        }
        None => (target.to_string(), Vec::new()),
    }
}

/// A response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers (`Retry-After`, ...).
    pub extra_headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": ...}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!("{{\"error\":{}}}", crate::json::quote(message)),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.extra_headers.push((name.to_string(), value));
        self
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serialises `response` onto the stream. `keep_alive` controls the
/// `Connection` header; the write runs under the stream's write timeout
/// (set by the caller).
pub fn write_response(
    mut stream: &TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn limits() -> ReadLimits {
        ReadLimits {
            max_head: 1024,
            max_body: 1024,
            read_timeout: Duration::from_millis(400),
            idle_timeout: Duration::from_millis(400),
        }
    }

    /// Feeds raw bytes through a real socket pair and parses them.
    fn parse(raw: &[u8]) -> ReadOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(raw).unwrap();
        drop(client);
        let mut reader = ConnReader::new(&server);
        reader.read_request(&limits())
    }

    #[test]
    fn a_simple_get_parses() {
        let out = parse(b"GET /sessions/7?limit=3 HTTP/1.1\r\nHost: x\r\n\r\n");
        match out {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.path, "/sessions/7");
                assert_eq!(req.query_param("limit"), Some("3"));
                assert!(req.keep_alive());
            }
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn a_body_is_framed_by_content_length() {
        let out = parse(b"POST /rides HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd");
        match out {
            ReadOutcome::Request(req) => assert_eq!(req.body, b"abcd"),
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_map_to_typed_statuses() {
        let cases: Vec<(&[u8], u16)> = vec![
            (b"GARBAGE\r\n\r\n".as_slice(), 400),
            (b"GET /x HTTP/2.0\r\n\r\n".as_slice(), 505),
            (b"G@T /x HTTP/1.1\r\n\r\n".as_slice(), 400),
            (b"GET /x HTTP/1.1\r\nbad header\r\n\r\n".as_slice(), 400),
            (
                b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n".as_slice(),
                400,
            ),
            (
                b"POST /x HTTP/1.1\r\ncontent-length: 99999\r\n\r\n".as_slice(),
                413,
            ),
            (
                b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".as_slice(),
                501,
            ),
        ];
        for (raw, want) in cases {
            match parse(raw) {
                ReadOutcome::Bad(e) => assert_eq!(e.status, want, "for {raw:?}"),
                other => panic!("expected {want} for {raw:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn an_oversized_head_is_431() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("long: {}\r\n\r\n", "v".repeat(2048)).as_bytes());
        match parse(&raw) {
            ReadOutcome::Bad(e) => assert_eq!(e.status, 431),
            other => panic!("expected 431, got {other:?}"),
        }
    }

    #[test]
    fn a_truncated_request_is_400_not_a_hang() {
        match parse(b"GET /x HT") {
            ReadOutcome::Bad(e) => assert_eq!(e.status, 400),
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn an_idle_connection_closes_silently() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut reader = ConnReader::new(&server);
        match reader.read_request(&limits()) {
            ReadOutcome::Closed => {}
            other => panic!("expected a silent close, got {other:?}"),
        }
    }

    #[test]
    fn a_slow_loris_times_out_with_408() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let writer = std::thread::spawn(move || {
            for chunk in [b"GET ".as_slice(), b"/slow".as_slice()] {
                let _ = client.write_all(chunk);
                std::thread::sleep(Duration::from_millis(300));
            }
            // Never finish the request; hold the socket open past the
            // server's budget.
            std::thread::sleep(Duration::from_millis(600));
            drop(client);
        });
        let mut reader = ConnReader::new(&server);
        match reader.read_request(&limits()) {
            ReadOutcome::Bad(e) => assert_eq!(e.status, 408),
            other => panic!("expected 408, got {other:?}"),
        }
        writer.join().unwrap();
    }
}
