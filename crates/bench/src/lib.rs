//! Shared harness for the PTRider benchmark suite.
//!
//! Every Criterion bench (one per experiment E2–E10, see DESIGN.md and
//! EXPERIMENTS.md) builds its world through the helpers here so parameters
//! are consistent across experiments: a synthetic city, a fleet placed
//! uniformly at random, a warm-up phase that assigns some trips so a
//! realistic share of vehicles is non-empty, and a stream of probe requests
//! matched read-only via [`PtRider::match_request_with`].
//!
//! Besides the wall-clock numbers Criterion reports, each bench prints a
//! small table (prefixed with `[exp]`) with the derived quantities the paper
//! talks about — options per request, vehicles verified, sharing rate — so
//! `cargo bench` output can be transcribed directly into EXPERIMENTS.md.

pub mod wire;

use ptrider_core::{EngineConfig, MatchResult, MatcherKind, PtRider, Request};
use ptrider_datagen::{synthetic_city, CityConfig, TimedTrip, TripConfig, TripGenerator};
use ptrider_roadnet::{GridConfig, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of a benchmark world.
#[derive(Clone, Copy, Debug)]
pub struct WorldParams {
    /// City lattice side (cols = rows).
    pub city_side: usize,
    /// Number of vehicles.
    pub vehicles: usize,
    /// Number of warm-up assignments (makes vehicles non-empty).
    pub warm_assignments: usize,
    /// Grid-index side (cells per axis).
    pub grid_side: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for WorldParams {
    fn default() -> Self {
        WorldParams {
            city_side: 40,
            vehicles: 800,
            warm_assignments: 200,
            grid_side: 12,
            seed: 20090529,
        }
    }
}

/// A ready-to-probe benchmark world.
pub struct BenchWorld {
    /// The engine with its fleet registered and warmed up.
    pub engine: PtRider,
    /// Probe trips (not yet submitted).
    pub probes: Vec<TimedTrip>,
}

/// Builds a city, an engine with the given configuration, a fleet and a set
/// of probe trips; then warms the engine up by assigning `warm_assignments`
/// trips (each rider takes the earliest-pickup option).
///
/// The engine honours every knob of `config`, including
/// `EngineConfig::distance_backend` — pass
/// `.with_distance_backend(DistanceBackend::Ch)` to measure a world on the
/// contraction-hierarchy backend (the hierarchy is built during this call).
pub fn build_world(params: WorldParams, config: EngineConfig, probes: usize) -> BenchWorld {
    build_world_inner(params, config, probes, None)
}

/// Like [`build_world`] but with the engine's oracle in pre-refactor legacy
/// mode (single global cache lock, allocating Dijkstra, no ALT, no
/// batching). Used by the perf report as the speedup baseline.
pub fn build_world_legacy_oracle(
    params: WorldParams,
    config: EngineConfig,
    probes: usize,
) -> BenchWorld {
    build_world_with_oracle(params, config, probes, |net, grid| {
        ptrider_roadnet::DistanceOracle::legacy_baseline(net, grid)
    })
}

/// Like [`build_world`] but with a caller-constructed distance oracle over
/// the world's city — e.g. to reuse one prebuilt `Arc<ContractionHierarchy>`
/// across worlds instead of paying CH preprocessing per world (the city is
/// generated deterministically from `params`, so any oracle built over an
/// identical `synthetic_city` call is valid here).
pub fn build_world_with_oracle(
    params: WorldParams,
    config: EngineConfig,
    probes: usize,
    make_oracle: impl FnOnce(
        std::sync::Arc<ptrider_core::RoadNetwork>,
        std::sync::Arc<ptrider_core::GridIndex>,
    ) -> ptrider_roadnet::DistanceOracle,
) -> BenchWorld {
    build_world_inner(params, config, probes, Some(Box::new(make_oracle)))
}

type MakeOracle<'a> = Box<
    dyn FnOnce(
            std::sync::Arc<ptrider_core::RoadNetwork>,
            std::sync::Arc<ptrider_core::GridIndex>,
        ) -> ptrider_roadnet::DistanceOracle
        + 'a,
>;

fn build_world_inner(
    params: WorldParams,
    config: EngineConfig,
    probes: usize,
    make_oracle: Option<MakeOracle<'_>>,
) -> BenchWorld {
    use ptrider_roadnet::GridIndex;
    use std::sync::Arc;

    let city = synthetic_city(&CityConfig {
        cols: params.city_side,
        rows: params.city_side,
        seed: params.seed,
        ..CityConfig::default()
    });
    let mut engine = if let Some(make_oracle) = make_oracle {
        let net = Arc::new(city);
        let grid = Arc::new(GridIndex::build(
            &net,
            GridConfig::with_dimensions(params.grid_side, params.grid_side),
        ));
        let oracle = make_oracle(Arc::clone(&net), Arc::clone(&grid));
        PtRider::with_oracle(net, grid, oracle, config)
    } else {
        PtRider::new(
            city,
            GridConfig::with_dimensions(params.grid_side, params.grid_side),
            config,
        )
    };
    engine.set_matcher(MatcherKind::DualSide);

    let mut rng = ChaCha8Rng::seed_from_u64(params.seed ^ 0xf1ee7);
    let num_vertices = engine.network().num_vertices() as u32;
    for _ in 0..params.vehicles {
        engine.add_vehicle(VertexId(rng.gen_range(0..num_vertices)));
    }

    let trips = TripGenerator::new(
        engine.network(),
        TripConfig {
            num_trips: params.warm_assignments + probes,
            seed: params.seed ^ 0x7415,
            ..TripConfig::default()
        },
    )
    .generate();

    let (warm, probe_slice) = trips.split_at(params.warm_assignments.min(trips.len()));
    for (i, trip) in warm.iter().enumerate() {
        let id = engine.allocate_request_id();
        let request = Request::new(id, trip.origin, trip.destination, trip.riders, i as f64);
        if let Ok(result) = engine.submit_request(request) {
            if let Some(option) = result.options.first() {
                let _ = engine.choose(id, option, i as f64);
            } else {
                let _ = engine.decline(id);
            }
        }
    }
    engine.reset_stats();

    BenchWorld {
        engine,
        probes: probe_slice.to_vec(),
    }
}

/// Matches one probe trip read-only and returns the result.
pub fn match_probe(engine: &PtRider, kind: MatcherKind, trip: &TimedTrip, id: u64) -> MatchResult {
    let request = Request::new(
        ptrider_core::RequestId(id),
        trip.origin,
        trip.destination,
        trip.riders,
        trip.time_secs,
    );
    engine
        .match_request_with(kind, &request)
        .expect("probe trips are valid requests")
}

/// Aggregate statistics over a batch of probe matches.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProbeSummary {
    /// Number of probes matched.
    pub probes: usize,
    /// Mean options per probe.
    pub mean_options: f64,
    /// Mean vehicles verified per probe.
    pub mean_verified: f64,
    /// Mean vehicles pruned per probe.
    pub mean_pruned: f64,
    /// Mean exact shortest-path computations per probe.
    pub mean_exact: f64,
    /// Fraction of probes that received at least one option.
    pub answer_rate: f64,
}

/// Matches every probe once with the given matcher and summarises the work.
pub fn summarise(engine: &PtRider, kind: MatcherKind, probes: &[TimedTrip]) -> ProbeSummary {
    let mut total_options = 0usize;
    let mut answered = 0usize;
    let mut verified = 0usize;
    let mut pruned = 0usize;
    let mut exact = 0u64;
    for (i, trip) in probes.iter().enumerate() {
        let result = match_probe(engine, kind, trip, i as u64);
        total_options += result.options.len();
        if !result.options.is_empty() {
            answered += 1;
        }
        verified += result.stats.vehicles_verified;
        pruned += result.stats.vehicles_pruned;
        exact += result.stats.exact_distance_computations;
    }
    let n = probes.len().max(1) as f64;
    ProbeSummary {
        probes: probes.len(),
        mean_options: total_options as f64 / n,
        mean_verified: verified as f64 / n,
        mean_pruned: pruned as f64 / n,
        mean_exact: exact as f64 / n,
        answer_rate: answered as f64 / n,
    }
}

/// Prints one experiment row (goes straight into EXPERIMENTS.md).
pub fn print_row(experiment: &str, label: &str, summary: &ProbeSummary) {
    println!(
        "[{experiment}] {label}: probes={} options/req={:.2} answered={:.1}% verified/req={:.1} pruned/req={:.1} exact-dist/req={:.1}",
        summary.probes,
        summary.mean_options,
        summary.answer_rate * 100.0,
        summary.mean_verified,
        summary.mean_pruned,
        summary.mean_exact
    );
}
