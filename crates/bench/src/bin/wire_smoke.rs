//! CI gate for the network front door: a scripted ride lifecycle over a
//! real socket on an ephemeral port, followed by a crash-recovery leg.
//!
//! The gate fails (non-zero exit) if any wire response deviates from the
//! script, if `/metrics` stops exposing the `ptrider_server_*` family, or
//! if a journal written through the server does not recover bit-identically
//! — including after a mid-commit panic injected through the process-global
//! fault plan. Run it under `PTRIDER_CHAOS=<seed>` and the scripted
//! lifecycle additionally has to absorb seeded transient faults (journal
//! writes, oracle builds) without a visible wire difference.
//!
//! ```text
//! cargo run --release -p ptrider-bench --bin wire_smoke
//! PTRIDER_CHAOS=7 cargo run --release -p ptrider-bench --bin wire_smoke
//! ```

use ptrider_bench::wire::{json_u64, open_sse, read_sse_frames, WireClient};
use ptrider_core::{
    fault, EngineConfig, Journal, JournalConfig, PtRider, RideService, ServiceConfig,
};
use ptrider_roadnet::{GridConfig, RoadNetwork, RoadNetworkBuilder};
use ptrider_server::{Server, ServerConfig, ServerHandle};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Checks one scripted expectation; any miss fails the gate.
fn gate(ok: bool, what: &str) {
    if ok {
        println!("  ok: {what}");
    } else {
        eprintln!("wire_smoke: FAIL: {what}");
        std::process::exit(1);
    }
}

/// Unwraps a client-side I/O result; the transport failing is a gate
/// failure too (the server must never wedge or drop a well-formed client).
fn must<T, E: std::fmt::Debug>(result: Result<T, E>, what: &str) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("wire_smoke: FAIL: {what}: {e:?}");
            std::process::exit(1);
        }
    }
}

/// The 6-vertex line city every wire test drives: 500 m hops, so the
/// vehicle's schedule is fully predictable.
fn line_net() -> RoadNetwork {
    let mut b = RoadNetworkBuilder::new();
    let vertices: Vec<_> = (0..6)
        .map(|i| b.add_vertex(i as f64 * 500.0, 0.0))
        .collect();
    for pair in vertices.windows(2) {
        b.add_bidirectional_edge(pair[0], pair[1], 500.0);
    }
    b.build().unwrap()
}

fn journaled_service(dir: &Path) -> Arc<RideService> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    let journal = Journal::create(dir, JournalConfig::default()).unwrap();
    let engine = PtRider::new(
        line_net(),
        GridConfig::with_dimensions(3, 1),
        EngineConfig::default(),
    );
    Arc::new(
        RideService::from_engine(engine)
            // Explicit TTL so the PTRIDER_OFFER_TTL_SECS=0 CI matrix row
            // cannot expire the scripted offer mid-gate.
            .with_service_config(ServiceConfig::default().with_offer_ttl_secs(1e9))
            .with_journal(journal),
    )
}

fn start_server(service: Arc<RideService>, drain: Duration) -> ServerHandle {
    let config = ServerConfig::default()
        .with_addr("127.0.0.1:0")
        .with_read_timeout(Duration::from_secs(2))
        .with_idle_timeout(Duration::from_secs(10))
        .with_sse_poll(Duration::from_millis(5))
        .with_drain_timeout(drain);
    Server::start(service, config).expect("server start")
}

fn recover_fingerprint(dir: &Path) -> (u64, usize) {
    let engine = PtRider::new(
        line_net(),
        GridConfig::with_dimensions(3, 1),
        EngineConfig::default(),
    );
    // Replay under the same service configuration the live server ran
    // with — session deadlines are derived from it during replay.
    let recovered = RideService::recover(
        engine,
        ServiceConfig::default().with_offer_ttl_secs(1e9),
        dir,
        JournalConfig::default(),
    )
    .expect("recovery");
    (recovered.fingerprint(), recovered.num_vehicles())
}

/// Leg 1: the scripted lifecycle, entirely over the wire, against a
/// journaled service; returns the fingerprint the server acknowledged.
fn lifecycle_leg(dir: &Path) -> u64 {
    let service = journaled_service(dir);
    let mut handle = start_server(Arc::clone(&service), Duration::from_secs(5));
    let addr = handle.addr();
    let mut client = must(
        WireClient::connect(addr, Duration::from_secs(10)),
        "connect",
    );

    let vehicle = must(
        client.request("POST", "/vehicles", Some(r#"{"location":0}"#)),
        "add vehicle",
    );
    gate(vehicle.status == 201, "POST /vehicles answers 201");
    let vehicle = json_u64(&vehicle.body, "vehicle").expect("vehicle id");

    let offer = must(
        client.request(
            "POST",
            "/rides",
            Some(r#"{"origin":1,"destination":4,"now":0.0}"#),
        ),
        "submit",
    );
    gate(offer.status == 200, "POST /rides answers 200");
    gate(
        offer.body.contains("\"options\":[{"),
        "the offer carries at least one option",
    );
    let session = json_u64(&offer.body, "session").expect("session id");
    let request = json_u64(&offer.body, "request").expect("request id");

    let state = must(
        client.request("GET", &format!("/sessions/{session}"), None),
        "session poll",
    );
    gate(
        state.status == 200 && state.body.contains("\"offered\""),
        "GET /sessions/{id} shows the offered state",
    );

    let confirmed = must(
        client.request(
            "POST",
            &format!("/sessions/{session}/respond"),
            Some(r#"{"decision":"choose","option":0,"now":1.0}"#),
        ),
        "confirm",
    );
    gate(confirmed.status == 200, "respond(choose) answers 200");

    // Drive the vehicle through pickup and dropoff; the simulator's
    // contract is location-first, arrival-second.
    for (loc, travelled, event) in [(1, 500.0, "picked_up"), (4, 1500.0, "dropped_off")] {
        let moved = must(
            client.request(
                "POST",
                &format!("/vehicles/{vehicle}/location"),
                Some(&format!(r#"{{"location":{loc},"travelled":{travelled}}}"#)),
            ),
            "location update",
        );
        gate(moved.status == 200, "location update answers 200");
        let arrived = must(
            client.request("POST", &format!("/vehicles/{vehicle}/arrived"), None),
            "arrived",
        );
        gate(
            arrived.status == 200 && arrived.body.contains(event),
            &format!("arrival at vertex {loc} reports {event}"),
        );
    }

    // The event stream replays the retained history in order.
    let mut stream = must(
        open_sse(
            addr,
            // Stop events (pickup/dropoff) carry the request id, not the
            // session id, so a rider stream filters on both.
            &format!("?session={session}&request={request}&limit=5"),
            Duration::from_secs(5),
        ),
        "open SSE stream",
    );
    let frames = read_sse_frames(&mut stream, |f| f.len() >= 5);
    let names: Vec<&str> = frames.iter().map(|f| f.event.as_str()).collect();
    gate(
        names
            == [
                "submitted",
                "offered",
                "confirmed",
                "picked_up",
                "dropped_off",
            ],
        &format!("SSE replays the lifecycle in order (got {names:?})"),
    );

    let metrics = must(client.request("GET", "/metrics", None), "metrics");
    gate(metrics.status == 200, "GET /metrics answers 200");
    for needle in [
        "ptrider_server_connections_accepted_total",
        "ptrider_server_requests_total",
        "ptrider_server_rides_latency_seconds",
        "ptrider_service_requests_submitted_total",
    ] {
        gate(
            metrics.body.contains(needle),
            &format!("/metrics exposes {needle}"),
        );
    }

    gate(handle.shutdown(), "graceful shutdown drains in-flight work");
    service.fingerprint()
}

/// Leg 2: a mid-commit panic on the respond path. The connection dies, the
/// journal keeps only acknowledged operations, and recovery is
/// deterministic: two independent replays agree bit for bit.
fn crash_leg(dir: &Path) {
    let service = journaled_service(dir);
    // A panicking connection thread never reports drain completion, so
    // keep the drain window short — shutdown must stay bounded.
    let mut handle = start_server(Arc::clone(&service), Duration::from_millis(500));
    let addr = handle.addr();
    let mut client = must(
        WireClient::connect(addr, Duration::from_secs(10)),
        "connect (crash leg)",
    );

    let vehicle = must(
        client.request("POST", "/vehicles", Some(r#"{"location":0}"#)),
        "add vehicle (crash leg)",
    );
    gate(vehicle.status == 201, "crash leg: vehicle registered");
    let offer = must(
        client.request(
            "POST",
            "/rides",
            Some(r#"{"origin":1,"destination":4,"now":0.0}"#),
        ),
        "submit (crash leg)",
    );
    gate(offer.status == 200, "crash leg: ride submitted");
    let session = json_u64(&offer.body, "session").expect("session id");

    // Arm a one-shot panic at the engine's mid-commit fault site, then
    // confirm: the handler thread dies with the assignment half-applied
    // in memory and *nothing* about it in the journal.
    fault::arm(fault::FaultPlan::panic_once(fault::MID_COMMIT, 0));
    let crashed = client.request(
        "POST",
        &format!("/sessions/{session}/respond"),
        Some(r#"{"decision":"choose","option":0,"now":1.0}"#),
    );
    fault::disarm();
    gate(
        !matches!(&crashed, Ok(r) if r.status == 200),
        "the mid-commit crash is never acknowledged as success",
    );

    // Shutdown stays bounded even though the crashed connection can no
    // longer report drain completion, and it still flushes the journal.
    let drained = handle.shutdown();
    println!("  ok: shutdown after crash returned (drained={drained})");

    let (first, vehicles) = recover_fingerprint(dir);
    let (second, _) = recover_fingerprint(dir);
    gate(
        first == second,
        "two replays of the crashed journal agree bit for bit",
    );
    gate(
        vehicles == 1,
        "the journaled fleet survives the crash intact",
    );
}

/// Leg 3: request-scoped tracing over the wire. Every response echoes
/// `X-Request-Id`; a traced submit's span tree comes back through
/// `GET /trace/{id}`; inbound identities are honored; the lock-contention
/// profiler and trace-drop counter are exposed in `/metrics`.
fn tracing_leg() {
    // `TelemetryConfig::from_env` is read at engine construction, so the
    // flip below affects only this leg's service.
    std::env::set_var("PTRIDER_TELEMETRY", "spans");
    let engine = PtRider::new(
        line_net(),
        GridConfig::with_dimensions(3, 1),
        EngineConfig::default(),
    );
    std::env::remove_var("PTRIDER_TELEMETRY");
    let service = Arc::new(
        RideService::from_engine(engine)
            .with_service_config(ServiceConfig::default().with_offer_ttl_secs(1e9)),
    );
    gate(
        service.telemetry().tracing_enabled(),
        "spans level enables request-scoped tracing",
    );
    service.add_vehicle(ptrider_roadnet::VertexId(0));
    let mut handle = start_server(Arc::clone(&service), Duration::from_secs(5));
    let mut client = must(
        WireClient::connect(handle.addr(), Duration::from_secs(10)),
        "connect (tracing leg)",
    );

    let offer = must(
        client.request(
            "POST",
            "/rides",
            Some(r#"{"origin":1,"destination":4,"now":0.0}"#),
        ),
        "traced submit",
    );
    gate(offer.status == 200, "tracing leg: ride submitted");
    let rid = offer
        .header("x-request-id")
        .unwrap_or_default()
        .to_string();
    gate(
        rid.len() == 16 && rid.bytes().all(|b| b.is_ascii_hexdigit()),
        "every response echoes a 16-hex X-Request-Id",
    );
    gate(
        offer
            .header("traceparent")
            .is_some_and(|tp| tp.starts_with("00-") && tp.contains(rid.as_str())),
        "the traceparent echo names the request's trace",
    );

    let tree = must(
        client.request("GET", &format!("/trace/{rid}"), None),
        "trace fetch",
    );
    gate(
        tree.status == 200
            && tree.body.contains("\"server.handle\"")
            && tree.body.contains("\"service.submit\""),
        "GET /trace/{id} returns the span tree rooted at server.handle",
    );

    let echoed = must(
        client.request_with_headers(
            "POST",
            "/rides",
            Some(r#"{"origin":1,"destination":4,"now":0.0}"#),
            &[("x-request-id", "00000000c0ffee00")],
        ),
        "submit with inbound id",
    );
    gate(
        echoed.header("x-request-id") == Some("00000000c0ffee00"),
        "an inbound X-Request-Id is honored verbatim",
    );

    let slow = must(client.request("GET", "/debug/slow", None), "slow log");
    gate(
        slow.status == 200 && slow.body.contains("\"slow\":["),
        "GET /debug/slow lists the slowest request roots",
    );

    let metrics = must(
        client.request("GET", "/metrics", None),
        "metrics (tracing leg)",
    );
    for needle in [
        "ptrider_lock_acquisitions_total",
        "site=\"world.write\"",
        "ptrider_trace_dropped_total",
    ] {
        gate(
            metrics.body.contains(needle),
            &format!("/metrics exposes {needle}"),
        );
    }
    gate(handle.shutdown(), "tracing leg: graceful shutdown");
}

fn main() {
    let chaos = std::env::var("PTRIDER_CHAOS").ok();
    match &chaos {
        Some(seed) => println!("wire_smoke: chaos armed (PTRIDER_CHAOS={seed})"),
        None => println!("wire_smoke: chaos not armed"),
    }

    let base = std::env::temp_dir().join(format!("ptrider-wire-smoke-{}", std::process::id()));
    let lifecycle_dir: PathBuf = base.join("lifecycle");
    let crash_dir: PathBuf = base.join("crash");

    println!("wire_smoke: lifecycle leg");
    let live = lifecycle_leg(&lifecycle_dir);
    let (recovered, vehicles) = recover_fingerprint(&lifecycle_dir);
    gate(
        recovered == live,
        "recovery reproduces the served state bit for bit",
    );
    gate(vehicles == 1, "recovery restores the wire-added vehicle");
    if let Some(seed) = &chaos {
        println!("  ok: lifecycle absorbed transient chaos (seed {seed})");
    }

    println!("wire_smoke: crash-recovery leg");
    crash_leg(&crash_dir);

    println!("wire_smoke: tracing leg");
    tracing_leg();

    let _ = std::fs::remove_dir_all(&base);
    println!("wire_smoke: PASS");
}
