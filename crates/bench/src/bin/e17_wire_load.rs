//! E17: load harness for the network front door.
//!
//! Drives the E12-style session storm (submit → poll → decline) through
//! real sockets instead of direct calls: N concurrent keep-alive
//! connections, each running its share of sessions against a
//! `ptrider-server` instance on an ephemeral port, plus a handful of SSE
//! drain streams running alongside. The sweep over N ∈ {64, 256, 1024,
//! 4096} crosses the connection watermark on purpose: below it every
//! request must succeed; above it the overflow must be shed with a clean
//! `503 + Retry-After` — never a hang, never a protocol error.
//!
//! Prints per-level throughput and client-observed latency percentiles,
//! and merges an `e17_wire` section into `BENCH_e9.json` (override the
//! path with `PTRIDER_BENCH_JSON`, the per-level session budget with
//! `PTRIDER_WIRE_SESSIONS`). The wire overhead is reported against the
//! in-process E12 baseline recorded in the same file.
//!
//! Run with `cargo run --release -p ptrider-bench --bin e17_wire_load`.

use ptrider_bench::wire::{json_u64, open_sse, read_sse_frames, WireClient};
use ptrider_bench::{build_world, WorldParams};
use ptrider_core::{EngineConfig, MatcherKind, RideService, ServiceConfig, VertexId};
use ptrider_datagen::{TripConfig, TripGenerator};
use ptrider_server::{Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// Concurrency sweep; the last level deliberately exceeds [`MAX_CONNS`].
const SWEEP: [usize; 4] = [64, 256, 1024, 4096];
/// The server's connection watermark for every level.
const MAX_CONNS: usize = 2048;
/// SSE drain streams held open alongside each storm.
const SSE_CONNS: usize = 4;
/// Client stacks can be small: one buffered socket and a latency vec.
const CLIENT_STACK: usize = 256 * 1024;

/// What one connection observed.
#[derive(Default)]
struct ConnOutcome {
    latencies_us: Vec<u64>,
    completed: usize,
    shed: bool,
    shed_with_retry_after: bool,
    connect_error: bool,
    errors: usize,
    conflicts: usize,
}

/// One sweep level's aggregate.
struct Level {
    conns: usize,
    completed: usize,
    secs: f64,
    rate: f64,
    p50_us: f64,
    p99_us: f64,
    shed: usize,
    shed_with_retry_after: usize,
    connect_errors: usize,
    errors: usize,
    conflicts: usize,
    sse_frames: usize,
    sse_missed_frames: usize,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

/// Runs one connection's share of the storm.
fn drive_conn(
    addr: SocketAddr,
    probes: &[(VertexId, VertexId, u32)],
    index: usize,
    sessions: usize,
    barrier: &Barrier,
) -> ConnOutcome {
    let mut out = ConnOutcome::default();
    let mut client = None;
    for _ in 0..3 {
        match WireClient::connect(addr, Duration::from_secs(30)) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let Some(mut client) = client else {
        out.connect_error = true;
        barrier.wait();
        return out;
    };

    // The handshake probe doubles as the shed detector: a connection over
    // the watermark gets its 503 before (or instead of) any answer.
    match client.request("GET", "/healthz", None) {
        Ok(r) if r.status == 503 => {
            out.shed = true;
            out.shed_with_retry_after = r.header("retry-after").is_some();
            barrier.wait();
            return out;
        }
        Ok(r) if r.status == 200 => {}
        _ => {
            out.connect_error = true;
            barrier.wait();
            return out;
        }
    }

    barrier.wait();
    for s in 0..sessions {
        let (o, d, riders) = probes[(index * sessions + s) % probes.len()];
        let begin = Instant::now();
        let offer = match client.request(
            "POST",
            "/rides",
            Some(&format!(
                r#"{{"origin":{},"destination":{},"riders":{riders},"now":0.0}}"#,
                o.0, d.0
            )),
        ) {
            Ok(r) if r.status == 200 => r,
            _ => {
                out.errors += 1;
                return out;
            }
        };
        let Some(session) = json_u64(&offer.body, "session") else {
            out.errors += 1;
            return out;
        };
        match client.request("GET", &format!("/sessions/{session}"), None) {
            Ok(r) if r.status == 200 => {}
            _ => {
                out.errors += 1;
                return out;
            }
        }
        match client.request(
            "POST",
            &format!("/sessions/{session}/respond"),
            Some(r#"{"decision":"decline","now":0.0}"#),
        ) {
            Ok(r) if r.status == 200 => {}
            // A concurrent expiry/commit race answers with a typed 4xx;
            // that is protocol behaviour, not an error.
            Ok(r) if r.status == 409 || r.status == 410 => out.conflicts += 1,
            _ => {
                out.errors += 1;
                return out;
            }
        }
        out.latencies_us.push(begin.elapsed().as_micros() as u64);
        out.completed += 1;
    }
    out
}

/// Runs one sweep level against a fresh server over the shared service.
fn run_level(
    service: &std::sync::Arc<RideService>,
    probes: &[(VertexId, VertexId, u32)],
    conns: usize,
    budget: usize,
) -> Level {
    let config = ServerConfig::default()
        .with_addr("127.0.0.1:0")
        .with_threads(8)
        .with_max_conns(MAX_CONNS)
        .with_read_timeout(Duration::from_secs(30))
        .with_idle_timeout(Duration::from_secs(60))
        .with_sse_poll(Duration::from_millis(10))
        .with_drain_timeout(Duration::from_secs(10));
    let mut handle = Server::start(std::sync::Arc::clone(service), config).expect("server start");
    let addr = handle.addr();

    let sessions = (budget / conns).max(1);
    let barrier = Barrier::new(conns + 1);
    let outcomes: Mutex<Vec<ConnOutcome>> = Mutex::new(Vec::with_capacity(conns));
    let stop = AtomicBool::new(false);
    let sse_frames = Mutex::new((0usize, 0usize));

    let mut elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        // SSE drains ride along for the whole storm; they are readers of
        // the shared event log and must never slow the writers down.
        let mut sse_handles = Vec::new();
        for _ in 0..SSE_CONNS {
            let stop = &stop;
            let sse_frames = &sse_frames;
            sse_handles.push(
                std::thread::Builder::new()
                    .stack_size(CLIENT_STACK)
                    .name("e17-sse".into())
                    .spawn_scoped(scope, move || {
                        let Ok(mut reader) = open_sse(addr, "", Duration::from_millis(500)) else {
                            return;
                        };
                        let frames = read_sse_frames(&mut reader, |_| stop.load(Ordering::Relaxed));
                        let missed = frames.iter().filter(|f| f.event == "missed").count();
                        let mut total = sse_frames.lock().unwrap();
                        total.0 += frames.len();
                        total.1 += missed;
                    })
                    .expect("spawn sse"),
            );
        }

        let mut workers = Vec::with_capacity(conns);
        for index in 0..conns {
            let barrier = &barrier;
            let outcomes = &outcomes;
            workers.push(
                std::thread::Builder::new()
                    .stack_size(CLIENT_STACK)
                    .name("e17-conn".into())
                    .spawn_scoped(scope, move || {
                        let out = drive_conn(addr, probes, index, sessions, barrier);
                        outcomes.lock().unwrap().push(out);
                    })
                    .expect("spawn worker"),
            );
        }

        barrier.wait();
        let begin = Instant::now();
        for w in workers {
            let _ = w.join();
        }
        elapsed = begin.elapsed();
        stop.store(true, Ordering::Relaxed);
        for h in sse_handles {
            let _ = h.join();
        }
    });
    handle.shutdown();

    let outcomes = outcomes.into_inner().unwrap();
    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let completed: usize = outcomes.iter().map(|o| o.completed).sum();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let (frames, missed) = *sse_frames.lock().unwrap();
    Level {
        conns,
        completed,
        secs,
        rate: completed as f64 / secs,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        shed: outcomes.iter().filter(|o| o.shed).count(),
        shed_with_retry_after: outcomes.iter().filter(|o| o.shed_with_retry_after).count(),
        connect_errors: outcomes.iter().filter(|o| o.connect_error).count(),
        errors: outcomes.iter().map(|o| o.errors).sum(),
        conflicts: outcomes.iter().map(|o| o.conflicts).sum(),
        sse_frames: frames,
        sse_missed_frames: missed,
    }
}

/// Extracts the E12 in-process baseline (`service_1_submitters`) from the
/// bench report, if present.
fn e12_baseline(report: &str) -> Option<f64> {
    let section = report.find("\"service_1_submitters\"")?;
    let rest = &report[section..];
    let key = rest.find("\"sessions_per_sec\"")?;
    let tail = &rest[key + "\"sessions_per_sec\"".len()..];
    let tail = tail.trim_start_matches([':', ' ']);
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Renders the `e17_wire` section (2-space root indent, matching
/// `perf_report`'s hand-rendered style).
fn render_section(levels: &[Level], e12: Option<f64>) -> String {
    let best = levels.iter().map(|l| l.rate).fold(0.0f64, f64::max);
    let mut out = String::new();
    out.push_str("  \"e17_wire\": {\n");
    out.push_str("    \"single_cpu\": true,\n");
    out.push_str(&format!(
        "    \"threads\": 8, \"max_conns\": {MAX_CONNS}, \"sse_conns\": {SSE_CONNS},\n"
    ));
    match e12 {
        Some(base) => {
            out.push_str(&format!(
                "    \"e12_sessions_per_sec\": {base}, \"best_sessions_per_sec\": {:.1}, \"wire_overhead_pct\": {:.2},\n",
                best,
                (base - best) / base * 100.0
            ));
        }
        None => {
            out.push_str(&format!("    \"best_sessions_per_sec\": {best:.1},\n"));
        }
    }
    out.push_str("    \"rows\": [\n");
    for (i, l) in levels.iter().enumerate() {
        out.push_str(&format!(
            "      {{ \"conns\": {}, \"sessions\": {}, \"secs\": {:.3}, \"sessions_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"shed\": {}, \"shed_rate_pct\": {:.2}, \"connect_errors\": {}, \"errors\": {}, \"conflicts\": {}, \"sse_frames\": {}, \"sse_missed_frames\": {} }}{}\n",
            l.conns,
            l.completed,
            l.secs,
            l.rate,
            l.p50_us,
            l.p99_us,
            l.shed,
            l.shed as f64 / l.conns as f64 * 100.0,
            l.connect_errors,
            l.errors,
            l.conflicts,
            l.sse_frames,
            l.sse_missed_frames,
            if i + 1 < levels.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n");
    out.push_str("  }");
    out
}

/// Merges the section into the report file: replaces an existing
/// `e17_wire` object or appends a new one before the closing brace.
fn merge_into_report(path: &str, section: &str) -> std::io::Result<()> {
    let mut text = std::fs::read_to_string(path)?;
    if let Some(key) = text.find("\"e17_wire\"") {
        // Walk back over whitespace to a separating comma, forward over
        // the object's balanced braces.
        let mut start = key;
        while start > 0 && text.as_bytes()[start - 1].is_ascii_whitespace() {
            start -= 1;
        }
        let had_comma = start > 0 && text.as_bytes()[start - 1] == b',';
        if had_comma {
            start -= 1;
        }
        let open = key + text[key..].find('{').expect("e17_wire object");
        let mut depth = 0usize;
        let mut end = open;
        for (offset, byte) in text.as_bytes()[open..].iter().enumerate() {
            match byte {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + offset + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        text.replace_range(start..end, "");
    }
    let root_close = text.rfind('}').expect("root object");
    let trimmed = text[..root_close].trim_end();
    let glue = if trimmed.ends_with(['{', ',']) {
        ""
    } else {
        ","
    };
    let merged = format!("{trimmed}{glue}\n{section}\n}}\n");
    std::fs::write(path, merged)
}

fn main() {
    let budget: usize = std::env::var("PTRIDER_WIRE_SESSIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048);
    let params = WorldParams {
        city_side: 30,
        vehicles: 400,
        warm_assignments: 100,
        grid_side: 10,
        ..WorldParams::default()
    };
    println!(
        "[e17] world: {}x{} city, {} vehicles; watermark {MAX_CONNS} conns, {budget} sessions/level",
        params.city_side, params.city_side, params.vehicles
    );
    let mut world = build_world(params, EngineConfig::paper_defaults(), 0);
    world.engine.set_matcher(MatcherKind::DualSide);
    let probes: Vec<(VertexId, VertexId, u32)> = TripGenerator::new(
        world.engine.network(),
        TripConfig {
            num_trips: 256,
            seed: params.seed ^ 0xe17,
            ..TripConfig::default()
        },
    )
    .generate()
    .iter()
    .map(|t| (t.origin, t.destination, t.riders))
    .filter(|(o, d, _)| o != d)
    .collect();
    let service = std::sync::Arc::new(
        RideService::from_engine(world.engine)
            .with_service_config(ServiceConfig::default().with_offer_ttl_secs(1e12)),
    );

    let mut levels = Vec::new();
    let mut failed = false;
    for conns in SWEEP {
        let level = run_level(&service, &probes, conns, budget);
        println!(
            "[e17] conns={:>5} sessions={:>5} rate={:>7.1}/s p50={:>8.1}us p99={:>9.1}us shed={} connect_errors={} errors={} conflicts={} sse_frames={}",
            level.conns,
            level.completed,
            level.rate,
            level.p50_us,
            level.p99_us,
            level.shed,
            level.connect_errors,
            level.errors,
            level.conflicts,
            level.sse_frames,
        );
        // Below the watermark the storm must be loss-free; above it the
        // overflow must be shed politely (503 + Retry-After) and the rest
        // must still be served loss-free.
        if level.errors > 0 {
            eprintln!(
                "[e17] FAIL: {} protocol errors at {} conns",
                level.errors, conns
            );
            failed = true;
        }
        if conns + SSE_CONNS <= MAX_CONNS && (level.shed > 0 || level.connect_errors > 0) {
            eprintln!(
                "[e17] FAIL: {} sheds / {} connect errors below the watermark",
                level.shed, level.connect_errors
            );
            failed = true;
        }
        if level.shed > 0 && level.shed_with_retry_after != level.shed {
            eprintln!(
                "[e17] FAIL: {}/{} sheds arrived without Retry-After",
                level.shed - level.shed_with_retry_after,
                level.shed
            );
            failed = true;
        }
        if conns > MAX_CONNS && level.shed == 0 {
            eprintln!("[e17] FAIL: no sheds observed above the watermark");
            failed = true;
        }
        levels.push(level);
    }

    let report_path =
        std::env::var("PTRIDER_BENCH_JSON").unwrap_or_else(|_| "BENCH_e9.json".to_string());
    let e12 = std::fs::read_to_string(&report_path)
        .ok()
        .as_deref()
        .and_then(e12_baseline);
    let section = render_section(&levels, e12);
    println!("{section}");
    match merge_into_report(&report_path, &section) {
        Ok(()) => println!("[e17] merged into {report_path}"),
        Err(e) => println!("[e17] not merged into {report_path}: {e}"),
    }

    if failed {
        eprintln!("[e17] FAIL");
        std::process::exit(1);
    }
    println!("[e17] PASS");
}
