//! CI smoke gate for parallel preprocessing: on one mid-size synthetic
//! city, the parallel CH builder and the per-level parallel CCH
//! customization must answer **bit-identically** to the sequential paths
//! and to Dijkstra. Exits non-zero on any divergence, so the CI matrix
//! (`PTRIDER_PREPROCESS_THREADS={1,4}`) fails loudly instead of shipping a
//! hierarchy that silently drifted.
//!
//! Run with `cargo run --release -p ptrider-bench --bin preprocess_smoke`
//! (optionally `-- <city_side> <sample_pairs>`; defaults 80 and 96).

use ptrider_datagen::{synthetic_city, CityConfig};
use ptrider_roadnet::{
    ch, dijkstra, CchTopology, ChConfig, ContractionHierarchy, TrafficModel, VertexId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(80);
    let pairs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(96);
    let net = synthetic_city(&CityConfig {
        cols: side,
        rows: side,
        seed: 0x5310,
        ..CityConfig::default()
    });
    let n = net.num_vertices() as u32;
    eprintln!(
        "[preprocess_smoke] city {side}x{side} ({n} vertices), env threads {}",
        ch::preprocess_threads()
    );

    let config = ChConfig::default();
    let t0 = Instant::now();
    let seq = ContractionHierarchy::build_with_threads(&net, &config, 1).expect("sequential build");
    let seq_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let par = ContractionHierarchy::build_with_threads(&net, &config, 4).expect("parallel build");
    let par_secs = t0.elapsed().as_secs_f64();
    eprintln!(
        "[preprocess_smoke] ch build: seq {seq_secs:.2}s ({} shortcuts), par(4) {par_secs:.2}s \
         ({} shortcuts)",
        seq.num_shortcuts(),
        par.num_shortcuts()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(0xeece);
    let mut failures = 0usize;
    for _ in 0..pairs {
        let u = VertexId(rng.gen_range(0..n));
        let v = VertexId(rng.gen_range(0..n));
        let exact = dijkstra::distance(&net, u, v).unwrap_or(f64::INFINITY);
        for (label, ch) in [("seq", &seq), ("par", &par)] {
            let got = ch.distance(u, v);
            if got.to_bits() != exact.to_bits() && !(got.is_infinite() && exact.is_infinite()) {
                eprintln!("[preprocess_smoke] DIVERGED {label} {u}->{v}: {got} vs {exact}");
                failures += 1;
            }
        }
    }

    let t0 = Instant::now();
    let topo = CchTopology::build(&net).expect("cch topology");
    eprintln!(
        "[preprocess_smoke] cch topology {:.2}s ({} arcs, {} triangles, {} levels, separator \
         max {} total {})",
        t0.elapsed().as_secs_f64(),
        topo.num_arcs(),
        topo.num_triangles(),
        topo.num_levels(),
        topo.separator_stats().max_separator,
        topo.separator_stats().total_separator,
    );
    let mut model = TrafficModel::free_flow(&net);
    for v in net.vertices() {
        for i in net.out_arc_range(v) {
            let t = net.arc_target(i);
            if v < t && rng.gen_bool(0.3) {
                model.set_segment_factor(&net, v, t, rng.gen_range(1.0..4.0));
            }
        }
    }
    model.bump_version();
    let scaled = model.scaled_weights(&net);
    let t0 = Instant::now();
    let one = topo.customize_with_threads(&scaled, 1);
    let one_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let four = topo.customize_with_threads(&scaled, 4);
    let four_secs = t0.elapsed().as_secs_f64();
    eprintln!("[preprocess_smoke] customize: seq {one_secs:.3}s, par(4) {four_secs:.3}s");
    let metric = net.with_metric(scaled).expect("metric network");
    for _ in 0..pairs {
        let u = VertexId(rng.gen_range(0..n));
        let v = VertexId(rng.gen_range(0..n));
        let a = one.distance(u, v);
        let b = four.distance(u, v);
        if a.to_bits() != b.to_bits() && !(a.is_infinite() && b.is_infinite()) {
            eprintln!("[preprocess_smoke] DIVERGED customize 1 vs 4 {u}->{v}: {a} vs {b}");
            failures += 1;
        }
        let exact = dijkstra::distance(&metric, u, v).unwrap_or(f64::INFINITY);
        if a.to_bits() != exact.to_bits() && !(a.is_infinite() && exact.is_infinite()) {
            eprintln!("[preprocess_smoke] DIVERGED customize vs dijkstra {u}->{v}: {a} vs {exact}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("[preprocess_smoke] FAILED: {failures} divergent answers");
        std::process::exit(1);
    }
    eprintln!("[preprocess_smoke] OK: {pairs} pairs bit-identical across all builders");
}
