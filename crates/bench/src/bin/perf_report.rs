//! Machine-readable performance report: writes `BENCH_e9.json` with the
//! E2-style matching latency, the E9-style update throughput and an
//! oracle-level microbenchmark, each measured per backend:
//!
//! * **baseline** — landmark acceleration off, sequential verification
//!   (the closest runnable stand-in for the pre-refactor oracle, which
//!   additionally allocated per query and serialised on one mutex; the
//!   microbenchmark isolates that part);
//! * **optimized_alt** — ALT landmarks on, parallel verification in `Auto`;
//! * **optimized_ch** — the contraction-hierarchy backend, parallel
//!   verification in `Auto`.
//!
//! The report also checks that the ALT and CH backends return the same
//! skylines on one identical world (`skylines_match_alt`), and quotes the
//! CH preprocessing cost (build time, shortcut count).
//!
//! Run with `cargo run --release -p ptrider-bench --bin perf_report`
//! (optionally `-- <vehicles> <probes>`). The JSON is hand-rendered — the
//! build environment has no serde_json — and is meant to be committed as
//! `BENCH_e9.json` so the perf trajectory is tracked across PRs.

use ptrider_bench::{
    build_world, build_world_legacy_oracle, build_world_with_oracle, match_probe, BenchWorld,
    WorldParams,
};
use ptrider_core::{
    BatchAdmission, BatchOutcome, Decision, DistanceBackend, EngineConfig, GridConfig, Journal,
    JournalConfig, MatcherKind, OptionId, ParallelMode, PtRider, Request, RideService,
    ServiceConfig,
};
use ptrider_datagen::{
    BurstConfig, CongestionConfig, CongestionProfile, TimedTrip, TripConfig, TripGenerator,
};
use ptrider_roadnet::{
    astar, dijkstra, CchTopology, ContractionHierarchy, DistanceOracle, VertexId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Clone, Copy, Default)]
struct MatcherNumbers {
    mean_us: f64,
    verified_per_req: f64,
    pruned_per_req: f64,
    exact_per_req: f64,
    options_per_req: f64,
}

fn measure_matcher(engine: &PtRider, kind: MatcherKind, probes: &[TimedTrip]) -> MatcherNumbers {
    // Cold-cache measurement: a warmed cache would answer every exact query
    // from the shards and hide the exact-backend and bound-tightness
    // differences this report exists to track. The cache still warms up
    // *within* the pass, as it would in production.
    engine.oracle().clear();
    let mut verified = 0usize;
    let mut pruned = 0usize;
    let mut exact = 0u64;
    let mut options = 0usize;
    let start = Instant::now();
    for (i, trip) in probes.iter().enumerate() {
        let r = match_probe(engine, kind, trip, i as u64);
        verified += r.stats.vehicles_verified;
        pruned += r.stats.vehicles_pruned;
        exact += r.stats.exact_distance_computations;
        options += r.options.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let n = probes.len().max(1) as f64;
    MatcherNumbers {
        mean_us: elapsed * 1e6 / n,
        verified_per_req: verified as f64 / n,
        pruned_per_req: pruned as f64 / n,
        exact_per_req: exact as f64 / n,
        options_per_req: options as f64 / n,
    }
}

fn measure_all_matchers(world: &BenchWorld) -> Vec<(MatcherKind, MatcherNumbers)> {
    MatcherKind::all()
        .iter()
        .map(|&k| (k, measure_matcher(&world.engine, k, &world.probes)))
        .collect()
}

#[derive(Clone, Copy, Default)]
struct UpdateNumbers {
    location_updates_per_sec: f64,
    submit_choose_per_sec: f64,
}

fn measure_updates(world: &mut BenchWorld, rounds: usize) -> UpdateNumbers {
    let engine = &mut world.engine;
    let mut rng = ChaCha8Rng::seed_from_u64(0x0e9);
    let ids: Vec<_> = engine.vehicles().map(|v| v.id()).collect();

    let start = Instant::now();
    let mut updates = 0u64;
    for round in 0..rounds {
        for &id in &ids {
            let loc = engine.vehicle(id).unwrap().location();
            let neighbours: Vec<(VertexId, f64)> = engine.network().neighbors(loc).collect();
            if neighbours.is_empty() {
                continue;
            }
            let (next, dist) = neighbours[rng.gen_range(0..neighbours.len())];
            engine.location_update(id, next, dist).unwrap();
            updates += 1;
        }
        let _ = round;
    }
    let location_updates_per_sec = updates as f64 / start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut cycles = 0u64;
    for (k, trip) in world
        .probes
        .iter()
        .cycle()
        .take(world.probes.len() * 2)
        .enumerate()
    {
        let (id, options) = engine.submit(trip.origin, trip.destination, trip.riders, k as f64);
        if let Some(option) = options.first() {
            if engine.choose(id, option, k as f64).is_err() {
                let _ = engine.decline(id);
            }
        } else {
            let _ = engine.decline(id);
        }
        cycles += 1;
    }
    let submit_choose_per_sec = cycles as f64 / start.elapsed().as_secs_f64();

    UpdateNumbers {
        location_updates_per_sec,
        submit_choose_per_sec,
    }
}

struct OracleMicro {
    vertices: usize,
    allocating_dijkstra_us: f64,
    scratch_dijkstra_us: f64,
    alt_astar_us: f64,
    ch_query_us: f64,
    ch_build_secs: f64,
    ch_shortcuts: usize,
}

/// Oracle-level microbenchmark over one network: the legacy allocating
/// Dijkstra, the scratch Dijkstra, the ALT A* and the CH point query on
/// identical random pairs, plus the CH preprocessing cost.
fn measure_oracle(
    net: &ptrider_core::RoadNetwork,
    grid: &ptrider_roadnet::GridIndex,
    landmarks: &ptrider_roadnet::LandmarkIndex,
    samples: usize,
) -> (OracleMicro, ContractionHierarchy) {
    let ch_build_start = Instant::now();
    let ch = ContractionHierarchy::build(net).expect("city graphs must contract");
    let ch_build_secs = ch_build_start.elapsed().as_secs_f64();

    let n = net.num_vertices() as u32;
    let mut rng = ChaCha8Rng::seed_from_u64(0xfeed);
    let pairs: Vec<(VertexId, VertexId)> = (0..samples)
        .map(|_| (VertexId(rng.gen_range(0..n)), VertexId(rng.gen_range(0..n))))
        .collect();

    let time = |f: &mut dyn FnMut(VertexId, VertexId)| {
        let start = Instant::now();
        for &(u, v) in &pairs {
            f(u, v);
        }
        start.elapsed().as_secs_f64() * 1e6 / pairs.len().max(1) as f64
    };

    let allocating = time(&mut |u, v| {
        let _ = dijkstra::distance_allocating(net, u, v);
    });
    let scratch = time(&mut |u, v| {
        let _ = dijkstra::distance(net, u, v);
    });
    let alt = time(&mut |u, v| {
        let _ = astar::distance_with_landmarks(net, u, v, Some(grid), Some(landmarks));
    });
    let ch_us = time(&mut |u, v| {
        let _ = ch.distance(u, v);
    });

    (
        OracleMicro {
            vertices: net.num_vertices(),
            allocating_dijkstra_us: allocating,
            scratch_dijkstra_us: scratch,
            alt_astar_us: alt,
            ch_query_us: ch_us,
            ch_build_secs,
            ch_shortcuts: ch.num_shortcuts(),
        },
        ch,
    )
}

/// Canonical skyline signature. CH distances are bit-identical to Dijkstra
/// (path unpacking), so the backends must agree on the *exact* option
/// multiset, duplicates included.
fn canonical(options: &[ptrider_core::RideOption]) -> Vec<(u32, u64, u64)> {
    let mut v: Vec<(u32, u64, u64)> = options
        .iter()
        .map(|o| (o.vehicle.0, o.pickup_dist.to_bits(), o.price.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

/// Matches every probe on the ALT world through both backends (read-only on
/// identical vehicle states) and reports whether all skylines agree
/// bit-for-bit. Both probes run through *fresh* oracles so their memo
/// caches see the same query sequence — the cache's undirected `(v, u)`
/// mirror stores the forward-direction fold, so oracles with different
/// cache histories can differ in the last bit even on one backend.
fn skylines_match(
    world: &BenchWorld,
    alt_oracle: &DistanceOracle,
    ch_oracle: &DistanceOracle,
) -> bool {
    world.probes.iter().enumerate().all(|(i, trip)| {
        let request = Request::new(
            ptrider_core::RequestId(900_000 + i as u64),
            trip.origin,
            trip.destination,
            trip.riders,
            trip.time_secs,
        );
        let alt =
            world
                .engine
                .match_request_with_oracle(MatcherKind::DualSide, &request, alt_oracle);
        let ch = world
            .engine
            .match_request_with_oracle(MatcherKind::DualSide, &request, ch_oracle);
        match (alt, ch) {
            (Ok(a), Ok(c)) => canonical(&a.options) == canonical(&c.options),
            _ => false,
        }
    })
}

fn json_matchers(out: &mut String, label: &str, rows: &[(MatcherKind, MatcherNumbers)]) {
    let _ = writeln!(out, "    \"{label}\": {{");
    for (i, (kind, m)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "      \"{kind}\": {{ \"mean_us\": {:.2}, \"vehicles_verified_per_req\": {:.2}, \
             \"vehicles_pruned_per_req\": {:.2}, \"exact_distances_per_req\": {:.2}, \
             \"options_per_req\": {:.2} }}{comma}",
            m.mean_us, m.verified_per_req, m.pruned_per_req, m.exact_per_req, m.options_per_req
        );
    }
    let _ = writeln!(out, "    }},");
}

fn json_updates(out: &mut String, label: &str, u: &UpdateNumbers, comma: &str) {
    let _ = writeln!(
        out,
        "    \"{label}\": {{ \"location_updates_per_sec\": {:.0}, \"submit_choose_per_sec\": {:.0} }}{comma}",
        u.location_updates_per_sec, u.submit_choose_per_sec
    );
}

fn dual(rows: &[(MatcherKind, MatcherNumbers)]) -> MatcherNumbers {
    rows.iter()
        .find(|(k, _)| *k == MatcherKind::DualSide)
        .unwrap()
        .1
}

#[derive(Clone, Copy, Default)]
struct BurstNumbers {
    requests_per_sec: f64,
    assigned: u64,
    partitions_per_burst: f64,
    rematch_rate: f64,
}

/// One outcome's bit-level signature: request id, chosen index, and the
/// option skyline's (vehicle, pickup bits, price bits) triples.
type OutcomeSignature = (u64, Option<usize>, Vec<(u32, u64, u64)>);

/// Canonical bit-level signature of a batch outcome list.
fn outcome_signature(outcomes: &[BatchOutcome]) -> Vec<OutcomeSignature> {
    outcomes
        .iter()
        .map(|o| {
            (
                o.request.0,
                o.chosen,
                o.options
                    .iter()
                    .map(|r| (r.vehicle.0, r.pickup_dist.to_bits(), r.price.to_bits()))
                    .collect(),
            )
        })
        .collect()
}

/// Replays the burst stream through `submit_batch_greedy` on a fresh world
/// (first option chosen, so conflicts and re-matches really occur) and
/// reports throughput plus the conflict-graph work counters.
///
/// The pickup radius is capped at 3 km so candidate sets are *local*, as
/// they are on real city scales — with the paper's 12 km default on this
/// small benchmark city every vehicle is a candidate for every request and
/// each burst collapses into one fully sequential partition.
fn measure_burst_admission(
    params: WorldParams,
    admission: BatchAdmission,
    pool_size: usize,
    bursts: &[Vec<(VertexId, VertexId, u32)>],
) -> (BurstNumbers, Vec<BatchOutcome>) {
    let config = EngineConfig::paper_defaults()
        .with_max_pickup_dist(3_000.0)
        .with_batch_admission(admission)
        .with_pool_size(pool_size);
    let mut world = build_world(params, config, 0);
    world.engine.set_matcher(MatcherKind::DualSide);
    let engine = &mut world.engine;
    let mut outcomes = Vec::new();
    let mut requests = 0u64;
    let start = Instant::now();
    for (k, burst) in bursts.iter().enumerate() {
        requests += burst.len() as u64;
        outcomes.extend(engine.submit_batch_greedy(burst, k as f64, |options| {
            if options.is_empty() {
                None
            } else {
                Some(0)
            }
        }));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = engine.stats();
    let n_bursts = bursts.len().max(1) as f64;
    (
        BurstNumbers {
            requests_per_sec: requests as f64 / elapsed.max(1e-9),
            assigned: stats.requests_chosen,
            partitions_per_burst: stats.batch_partitions as f64 / n_bursts,
            rematch_rate: if stats.batch_requests > 0 {
                stats.batch_rematches as f64 / stats.batch_requests as f64
            } else {
                0.0
            },
        },
        outcomes,
    )
}

fn json_burst(out: &mut String, label: &str, b: &BurstNumbers, comma: &str) {
    let _ = writeln!(
        out,
        "    \"{label}\": {{ \"requests_per_sec\": {:.0}, \"assigned\": {}, \
         \"partitions_per_burst\": {:.2}, \"rematch_rate\": {:.3} }}{comma}",
        b.requests_per_sec, b.assigned, b.partitions_per_burst, b.rematch_rate
    );
}

#[derive(Clone, Default)]
struct TrafficNumbers {
    vertices: usize,
    cch_topology_secs: f64,
    cch_arcs: usize,
    cch_triangles: usize,
    ch_customize_secs: f64,
    ch_full_rebuild_secs: f64,
    alt_query_us_under_traffic: f64,
    ch_query_us_customized: f64,
    oracle_apply_traffic_secs: f64,
    customized_matches_dijkstra: bool,
    congested_arcs: usize,
    max_factor: f64,
}

/// E13: on the city-scale graph, compare a traffic epoch served by a CCH
/// customization pass against a full hierarchy rebuild and against ALT
/// queries on the congested metric.
fn measure_traffic(
    city: &std::sync::Arc<ptrider_core::RoadNetwork>,
    grid: &std::sync::Arc<ptrider_roadnet::GridIndex>,
    landmarks: &ptrider_roadnet::LandmarkIndex,
) -> TrafficNumbers {
    let mut out = TrafficNumbers {
        vertices: city.num_vertices(),
        ..TrafficNumbers::default()
    };
    let started = Instant::now();
    let topo = std::sync::Arc::new(CchTopology::build(city).expect("city graphs repair"));
    out.cch_topology_secs = started.elapsed().as_secs_f64();
    out.cch_arcs = topo.num_arcs();
    out.cch_triangles = topo.num_triangles();

    // One morning-rush epoch from the packaged congestion profile.
    let profile = CongestionProfile::build(city, CongestionConfig::default());
    let model = profile.model_at(city, 8.0 * 3600.0);
    out.congested_arcs = model.congested_arcs();
    out.max_factor = model.max_factor();
    let scaled = model.scaled_weights(city);
    let metric = city.with_metric(scaled.clone()).expect("valid metric");

    let reps = 3;
    let started = Instant::now();
    let mut repaired = None;
    for _ in 0..reps {
        repaired = Some(topo.customize(&scaled));
    }
    out.ch_customize_secs = started.elapsed().as_secs_f64() / reps as f64;
    let repaired = repaired.expect("reps > 0");

    let started = Instant::now();
    let rebuilt = ContractionHierarchy::build(&metric).expect("city graphs contract");
    out.ch_full_rebuild_secs = started.elapsed().as_secs_f64();
    drop(rebuilt);

    let mut rng = ChaCha8Rng::seed_from_u64(0xe13);
    let n = city.num_vertices() as u32;
    let pairs: Vec<(VertexId, VertexId)> = (0..256)
        .map(|_| (VertexId(rng.gen_range(0..n)), VertexId(rng.gen_range(0..n))))
        .collect();
    let started = Instant::now();
    for &(u, v) in &pairs {
        let _ = repaired.distance(u, v);
    }
    out.ch_query_us_customized = started.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
    let started = Instant::now();
    for &(u, v) in &pairs {
        let _ = astar::distance_with_landmarks(&metric, u, v, Some(grid), Some(landmarks));
    }
    out.alt_query_us_under_traffic = started.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;

    out.customized_matches_dijkstra = pairs.iter().take(48).all(|&(u, v)| {
        let exact = dijkstra::distance(&metric, u, v).unwrap_or(f64::INFINITY);
        let got = repaired.distance(u, v);
        got.to_bits() == exact.to_bits() || (got.is_infinite() && exact.is_infinite())
    });

    // End-to-end oracle epoch (scale + swap + customize + invalidate),
    // seeded with the topology measured above so the ~seconds-scale
    // nested-dissection build is paid exactly once per report.
    let oracle = DistanceOracle::with_backend(
        std::sync::Arc::clone(city),
        std::sync::Arc::clone(grid),
        None,
        DistanceBackend::Ch,
    )
    .with_repair_topology(std::sync::Arc::clone(&topo));
    let started = Instant::now();
    oracle.apply_traffic(&model);
    out.oracle_apply_traffic_secs = started.elapsed().as_secs_f64();
    out
}

#[derive(Clone, Copy, Default)]
struct ServiceNumbers {
    /// submit → respond(Decline) round-trips per second across all threads.
    sessions_per_sec: f64,
    /// Events published per second while the session storm ran.
    events_per_sec: f64,
    /// Submit-span percentiles in microseconds (0 unless the engine ran at
    /// the `Spans` telemetry level).
    submit_p50_us: f64,
    submit_p99_us: f64,
    verify_p99_us: f64,
    lock_wait_p99_us: f64,
}

/// Drives the `RideService` session lifecycle with `submitters` concurrent
/// threads over a fixed world (declines only, so the world never changes
/// and runs are comparable) and measures round-trip and event throughput.
/// `submitters == 0` measures the sequential `PtRider` facade on the same
/// world and probes — the no-locks baseline the service overhead is judged
/// against.
fn measure_service_throughput(params: WorldParams, submitters: usize) -> ServiceNumbers {
    let rounds = 6usize;
    let config = EngineConfig::paper_defaults();
    let mut world = build_world(params, config, 0);
    world.engine.set_matcher(MatcherKind::DualSide);
    let probes: Vec<(VertexId, VertexId, u32)> = TripGenerator::new(
        world.engine.network(),
        TripConfig {
            num_trips: 192,
            seed: params.seed ^ 0xe12,
            ..TripConfig::default()
        },
    )
    .generate()
    .iter()
    .map(|t| (t.origin, t.destination, t.riders))
    .filter(|(o, d, _)| o != d)
    .collect();

    if submitters == 0 {
        let mut engine = world.engine;
        let start = Instant::now();
        let mut served = 0usize;
        for _ in 0..rounds {
            for &(o, d, riders) in &probes {
                let (id, _) = engine.submit(o, d, riders, 0.0);
                let _ = engine.decline(id);
                served += 1;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        return ServiceNumbers {
            sessions_per_sec: served as f64 / elapsed.max(1e-9),
            ..ServiceNumbers::default()
        };
    }

    let service = ptrider_core::RideService::from_engine(world.engine)
        .with_service_config(ptrider_core::ServiceConfig::default().with_offer_ttl_secs(1e12));
    let served = std::sync::atomic::AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..submitters {
            let service = &service;
            let probes = &probes;
            let served = &served;
            scope.spawn(move || {
                for _ in 0..rounds {
                    for (i, &(o, d, riders)) in probes.iter().enumerate() {
                        if i % submitters != t {
                            continue;
                        }
                        let offer = service
                            .submit(o, d, riders, 0.0)
                            .expect("probe requests are valid");
                        let _ =
                            service.respond(offer.session, ptrider_core::Decision::Decline, 0.0);
                        served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut numbers = ServiceNumbers {
        sessions_per_sec: served.load(std::sync::atomic::Ordering::Relaxed) as f64
            / elapsed.max(1e-9),
        events_per_sec: service.events_published() as f64 / elapsed.max(1e-9),
        ..ServiceNumbers::default()
    };
    let telemetry = service.telemetry();
    if telemetry.spans_enabled() {
        let us = |ns: u64| ns as f64 * 1e-3;
        let submit = telemetry.stage_snapshot(ptrider_core::Stage::ServiceSubmit);
        numbers.submit_p50_us = us(submit.quantile(0.5));
        numbers.submit_p99_us = us(submit.quantile(0.99));
        numbers.verify_p99_us = us(telemetry
            .stage_snapshot(ptrider_core::Stage::MatchVerify)
            .quantile(0.99));
        numbers.lock_wait_p99_us = us(telemetry
            .stage_snapshot(ptrider_core::Stage::ServiceLockWait)
            .quantile(0.99));
    }
    numbers
}

#[derive(Clone, Copy, Default)]
struct TelemetryNumbers {
    off_sessions_per_sec: f64,
    counters_sessions_per_sec: f64,
    spans_sessions_per_sec: f64,
    trace_sessions_per_sec: f64,
    /// Throughput lost with counters / stage histograms / full
    /// request-scoped tracing relative to telemetry off, in percent
    /// (positive = instrumented run was slower).
    counters_overhead_pct: f64,
    spans_overhead_pct: f64,
    trace_overhead_pct: f64,
    submit_p50_us: f64,
    submit_p99_us: f64,
    verify_p99_us: f64,
    lock_wait_p99_us: f64,
}

/// E15: telemetry overhead on the E12 session-storm workload. Runs the
/// same measurement at the `off`, `counters` and `spans` levels — the
/// latter split into stage-histograms-only (`PTRIDER_TRACE_CAPACITY=0`)
/// and full request-scoped tracing (default capacity: span trees,
/// exemplars, lock profiles) — in interleaved rounds (best-of damps
/// scheduler drift) by flipping `PTRIDER_TELEMETRY` between engine
/// constructions. The config is deliberately re-read from the
/// environment at every construction for exactly this in-process A/B.
fn measure_telemetry(params: WorldParams, submitters: usize) -> TelemetryNumbers {
    // (label, PTRIDER_TELEMETRY, PTRIDER_TRACE_CAPACITY; "" = unset).
    let levels = [
        ("off", "off", "0"),
        ("counters", "counters", "0"),
        ("spans", "spans", "0"),
        ("trace", "spans", ""),
    ];
    let mut best = [0.0f64; 4];
    let mut trace_run = ServiceNumbers::default();
    for _ in 0..3 {
        for (i, (label, level, capacity)) in levels.iter().enumerate() {
            std::env::set_var("PTRIDER_TELEMETRY", level);
            if capacity.is_empty() {
                std::env::remove_var("PTRIDER_TRACE_CAPACITY");
            } else {
                std::env::set_var("PTRIDER_TRACE_CAPACITY", capacity);
            }
            let run = measure_service_throughput(params, submitters);
            if run.sessions_per_sec > best[i] {
                best[i] = run.sessions_per_sec;
                if *label == "trace" {
                    trace_run = run;
                }
            }
        }
    }
    std::env::remove_var("PTRIDER_TELEMETRY");
    std::env::remove_var("PTRIDER_TRACE_CAPACITY");
    let overhead = |instrumented: f64| (1.0 - instrumented / best[0].max(1e-9)) * 100.0;
    TelemetryNumbers {
        off_sessions_per_sec: best[0],
        counters_sessions_per_sec: best[1],
        spans_sessions_per_sec: best[2],
        trace_sessions_per_sec: best[3],
        counters_overhead_pct: overhead(best[1]),
        spans_overhead_pct: overhead(best[2]),
        trace_overhead_pct: overhead(best[3]),
        submit_p50_us: trace_run.submit_p50_us,
        submit_p99_us: trace_run.submit_p99_us,
        verify_p99_us: trace_run.verify_p99_us,
        lock_wait_p99_us: trace_run.lock_wait_p99_us,
    }
}

/// Total submit→decline sessions each contention level drives.
const CONTENTION_SESSIONS: usize = 2048;
/// Connection sweep: comfortably under the handler-thread count's queue
/// vs far above it — the two operating points the geo-sharding work
/// compares against.
const CONTENTION_SWEEP: [usize; 2] = [64, 1024];
/// Client stacks can be small: one buffered socket and a counter.
const CONTENTION_CLIENT_STACK: usize = 256 * 1024;

#[derive(Clone, Default)]
struct ContentionLevel {
    conns: usize,
    completed: usize,
    errors: usize,
    /// Every lock site that saw traffic, profiler summaries in
    /// registration order. The headline is `ledger` — the admission
    /// writer: journal order == admission order is enforced inside its
    /// critical section, and the decline storm never takes
    /// `world.write` (submit matches under `world.read`; only commits
    /// and ticks write).
    sites: Vec<ptrider_core::LockSiteSummary>,
}

/// Contention profile of the service's lock sites under a wire-level
/// storm: the same submit→decline session driven through the HTTP front
/// door at 64 vs 1024 concurrent connections. Each level gets a fresh
/// service (fresh lock sites) built with full tracing enabled, so the
/// numbers are the lock profiler's own view of the serialization points
/// — the quantitative baseline the geo-sharding work measures itself
/// against.
fn measure_contention(params: WorldParams) -> Vec<ContentionLevel> {
    use ptrider_bench::wire::{json_u64, WireClient};
    use ptrider_server::{Server, ServerConfig};
    use std::sync::{Arc, Barrier, Mutex};
    use std::time::Duration;

    let mut out = Vec::new();
    for &conns in &CONTENTION_SWEEP {
        std::env::set_var("PTRIDER_TELEMETRY", "spans");
        let mut world = build_world(params, EngineConfig::paper_defaults(), 0);
        std::env::remove_var("PTRIDER_TELEMETRY");
        world.engine.set_matcher(MatcherKind::DualSide);
        let probes: Vec<(VertexId, VertexId, u32)> = TripGenerator::new(
            world.engine.network(),
            TripConfig {
                num_trips: 192,
                seed: params.seed ^ 0xc017,
                ..TripConfig::default()
            },
        )
        .generate()
        .iter()
        .map(|t| (t.origin, t.destination, t.riders))
        .filter(|(o, d, _)| o != d)
        .collect();
        let service = Arc::new(
            RideService::from_engine(world.engine)
                .with_service_config(ServiceConfig::default().with_offer_ttl_secs(1e12)),
        );
        assert!(service.telemetry().tracing_enabled());

        let config = ServerConfig::default()
            .with_addr("127.0.0.1:0")
            .with_threads(8)
            .with_max_conns(CONTENTION_SWEEP[CONTENTION_SWEEP.len() - 1] * 2)
            .with_read_timeout(Duration::from_secs(30))
            .with_idle_timeout(Duration::from_secs(60));
        let mut handle = Server::start(Arc::clone(&service), config).expect("server start");
        let addr = handle.addr();

        let sessions = (CONTENTION_SESSIONS / conns).max(1);
        let barrier = Barrier::new(conns + 1);
        let tallies: Mutex<(usize, usize)> = Mutex::new((0, 0));
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(conns);
            for index in 0..conns {
                let barrier = &barrier;
                let tallies = &tallies;
                let probes = &probes;
                workers.push(
                    std::thread::Builder::new()
                        .stack_size(CONTENTION_CLIENT_STACK)
                        .name("contention-conn".into())
                        .spawn_scoped(scope, move || {
                            let mut client = None;
                            for _ in 0..3 {
                                match WireClient::connect(addr, Duration::from_secs(30)) {
                                    Ok(c) => {
                                        client = Some(c);
                                        break;
                                    }
                                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                                }
                            }
                            let Some(mut client) = client else {
                                barrier.wait();
                                let mut t = tallies.lock().unwrap();
                                t.1 += sessions;
                                return;
                            };
                            barrier.wait();
                            let (mut completed, mut errors) = (0usize, 0usize);
                            for s in 0..sessions {
                                let (o, d, riders) =
                                    probes[(index * sessions + s) % probes.len()];
                                let offer = client.request(
                                    "POST",
                                    "/rides",
                                    Some(&format!(
                                        r#"{{"origin":{},"destination":{},"riders":{riders},"now":0.0}}"#,
                                        o.0, d.0
                                    )),
                                );
                                let session = match offer {
                                    Ok(r) if r.status == 200 => json_u64(&r.body, "session"),
                                    _ => None,
                                };
                                let Some(session) = session else {
                                    errors += 1;
                                    break;
                                };
                                match client.request(
                                    "POST",
                                    &format!("/sessions/{session}/respond"),
                                    Some(r#"{"decision":"decline","now":0.0}"#),
                                ) {
                                    Ok(r) if r.status == 200 || r.status == 409 || r.status == 410 => {
                                        completed += 1;
                                    }
                                    _ => {
                                        errors += 1;
                                        break;
                                    }
                                }
                            }
                            let mut t = tallies.lock().unwrap();
                            t.0 += completed;
                            t.1 += errors;
                        })
                        .expect("spawn contention worker"),
                );
            }
            barrier.wait();
            for w in workers {
                let _ = w.join();
            }
        });
        handle.shutdown();

        let (completed, errors) = *tallies.lock().unwrap();
        let report = service.telemetry().contention_report();
        assert!(
            report.site("ledger").is_some(),
            "ledger site registered under spans"
        );
        out.push(ContentionLevel {
            conns,
            completed,
            errors,
            sites: report
                .sites
                .into_iter()
                .filter(|s| s.acquisitions > 0)
                .collect(),
        });
    }
    out
}

#[derive(Clone, Copy, Default)]
struct JournalNumbers {
    unjournaled_sessions_per_sec: f64,
    journaled_sessions_per_sec: f64,
    fsync_every_append_sessions_per_sec: f64,
    append_overhead_pct: f64,
    snapshot_secs: f64,
    replayed_ops: u64,
    recover_secs: f64,
    recovered_bit_identical: bool,
}

/// E14: session-lifecycle throughput with the admission WAL off, on
/// (default fsync batching) and paranoid (fsync every append), plus the
/// snapshot write cost and a bit-identity-checked crash-recovery replay.
fn measure_journal() -> JournalNumbers {
    let net = ptrider_datagen::synthetic_city(&ptrider_datagen::CityConfig {
        cols: 60,
        rows: 60,
        seed: 20090529,
        ..ptrider_datagen::CityConfig::default()
    });
    // Distinct trips throughout: replaying one probe set would warm the
    // oracle cache and shrink the per-admission matching work to
    // microseconds, overstating the journal's relative cost far beyond
    // anything a production commit path would see.
    let probes: Vec<(VertexId, VertexId, u32)> = TripGenerator::new(
        &net,
        TripConfig {
            num_trips: 1536,
            seed: 0xe14,
            ..TripConfig::default()
        },
    )
    .generate()
    .iter()
    .map(|t| (t.origin, t.destination, t.riders))
    .filter(|(o, d, _)| o != d)
    .collect();
    let temp_dir = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("ptrider-e14-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let service = |journal: Option<Journal>| {
        let svc = RideService::new(
            net.clone(),
            GridConfig::with_dimensions(12, 12),
            EngineConfig::paper_defaults(),
        )
        .with_service_config(ServiceConfig::default().with_offer_ttl_secs(1e12));
        let svc = match journal {
            Some(journal) => svc.with_journal(journal),
            None => svc,
        };
        let n = net.num_vertices() as u32;
        for i in 0..120u32 {
            svc.add_vehicle(VertexId((i * 997) % n));
        }
        svc
    };
    // One cold pass per service: every probe is a fresh trip, each service
    // owns a fresh oracle, so all three measure identical admission work.
    // Declines leave the world unchanged.
    let storm_rate = |svc: &RideService| {
        let start = Instant::now();
        let mut served = 0usize;
        for &(o, d, riders) in &probes {
            let offer = svc.submit(o, d, riders, 0.0).expect("probes are valid");
            let _ = svc.respond(offer.session, Decision::Decline, 0.0);
            served += 1;
        }
        served as f64 / start.elapsed().as_secs_f64().max(1e-9)
    };
    // A cold pass cannot be repeated on one service, but it can be repeated
    // on a fresh service; best-of-N filters out writeback storms and other
    // machine noise that would otherwise land on whichever side is unlucky.
    let rounds = 3;
    let best_rate = |build: &dyn Fn() -> RideService| {
        let mut best = 0f64;
        for _ in 0..rounds {
            let svc = build();
            best = best.max(storm_rate(&svc));
        }
        best
    };
    let unjournaled = best_rate(&|| service(None));

    let wal_dir = temp_dir("wal");
    let journaled = best_rate(&|| {
        service(Some(
            Journal::create(&wal_dir, JournalConfig::default()).unwrap(),
        ))
    });
    let journaled_svc = service(Some(
        Journal::create(&wal_dir, JournalConfig::default()).unwrap(),
    ));
    storm_rate(&journaled_svc);
    let start = Instant::now();
    journaled_svc.snapshot().expect("journal attached");
    let snapshot_secs = start.elapsed().as_secs_f64();
    drop(journaled_svc);

    let paranoid_dir = temp_dir("fsync1");
    let paranoid = best_rate(&|| {
        service(Some(
            Journal::create(
                &paranoid_dir,
                JournalConfig::default()
                    .with_fsync_every(1)
                    .with_inline_sync(true),
            )
            .unwrap(),
        ))
    });

    // A scripted "day" whose journal the recovery replays: confirm every
    // third offer so real fleet state survives into the tail.
    let day_dir = temp_dir("day");
    let svc = service(Some(
        Journal::create(&day_dir, JournalConfig::default()).unwrap(),
    ));
    for (i, &(o, d, riders)) in probes.iter().enumerate() {
        let offer = svc.submit(o, d, riders, i as f64).expect("valid");
        let decision = if i % 3 == 0 && !offer.options.is_empty() {
            Decision::Choose(OptionId(0))
        } else {
            Decision::Decline
        };
        let _ = svc.respond(offer.session, decision, i as f64);
    }
    let live_fingerprint = svc.fingerprint();
    let replayed_ops = svc.journal_next_seq().expect("journal attached");
    drop(svc);
    let start = Instant::now();
    let engine = PtRider::new(
        net.clone(),
        GridConfig::with_dimensions(12, 12),
        EngineConfig::paper_defaults(),
    );
    let recovered = RideService::recover(
        engine,
        ServiceConfig::default().with_offer_ttl_secs(1e12),
        &day_dir,
        JournalConfig::default(),
    )
    .expect("recovery succeeds");
    let recover_secs = start.elapsed().as_secs_f64();
    let recovered_bit_identical = recovered.fingerprint() == live_fingerprint;
    drop(recovered);
    for dir in [wal_dir, paranoid_dir, day_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }

    JournalNumbers {
        unjournaled_sessions_per_sec: unjournaled,
        journaled_sessions_per_sec: journaled,
        fsync_every_append_sessions_per_sec: paranoid,
        append_overhead_pct: (unjournaled / journaled.max(1e-9) - 1.0) * 100.0,
        snapshot_secs,
        replayed_ops,
        recover_secs,
        recovered_bit_identical,
    }
}

/// One measured point of the E16 preprocessing scaling sweep.
struct SweepRow {
    side: usize,
    vertices: usize,
    ch_build_secs_seq: f64,
    ch_build_secs_par: f64,
    ch_shortcuts: usize,
    query_us: f64,
    cch: Option<SweepCch>,
}

/// CCH columns of a sweep row; absent above [`SWEEP_CCH_MAX_VERTICES`]
/// (the witness-free triangle table grows super-linearly and dominates the
/// whole report's runtime long before the CH builder does).
struct SweepCch {
    topology_secs: f64,
    triangles: usize,
    levels: usize,
    customize_secs_seq: f64,
    customize_secs_par: f64,
    separator_max: usize,
    separator_total: usize,
    boundary_vertices: usize,
}

/// Worker count for the sweep's explicit parallel measurements (the env
/// default resolves to 1 on a single-CPU container, which would silently
/// measure the sequential path twice).
const SWEEP_PAR_THREADS: usize = 4;
/// CCH topology/customization cap for the sweep (see [`SweepCch`]).
const SWEEP_CCH_MAX_VERTICES: usize = 45_000;

fn measure_preprocess_sweep(max_vertices: usize) -> Vec<SweepRow> {
    let config = ptrider_roadnet::ChConfig::default();
    let mut rows = Vec::new();
    for side in [100usize, 120, 160, 200, 316, 448] {
        if side * side > max_vertices {
            continue;
        }
        let city = ptrider_datagen::synthetic_city(&ptrider_datagen::CityConfig {
            cols: side,
            rows: side,
            seed: 0xe16,
            ..ptrider_datagen::CityConfig::default()
        });
        let vertices = city.num_vertices();
        eprintln!("[perf_report] e16 sweep: {side}x{side} ({vertices} vertices) ...");

        let t = Instant::now();
        let seq = ContractionHierarchy::build_with_threads(&city, &config, 1)
            .expect("sweep city must contract");
        let ch_build_secs_seq = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let par = ContractionHierarchy::build_with_threads(&city, &config, SWEEP_PAR_THREADS)
            .expect("sweep city must contract in parallel");
        let ch_build_secs_par = t.elapsed().as_secs_f64();

        let mut rng = ChaCha8Rng::seed_from_u64(side as u64 ^ 0xe16);
        let n = vertices as u32;
        let pairs: Vec<(VertexId, VertexId)> = (0..200)
            .map(|_| (VertexId(rng.gen_range(0..n)), VertexId(rng.gen_range(0..n))))
            .collect();
        let t = Instant::now();
        for &(u, v) in &pairs {
            std::hint::black_box(seq.distance(u, v));
        }
        let query_us = t.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64;
        // Bit-identity spot check: the parallel build must answer exactly
        // what the sequential build answers.
        for &(u, v) in pairs.iter().take(32) {
            let (a, b) = (seq.distance(u, v), par.distance(u, v));
            assert!(
                a.to_bits() == b.to_bits() || (a.is_infinite() && b.is_infinite()),
                "e16 sweep: parallel CH diverged at side {side}: {u}->{v} {a} vs {b}"
            );
        }

        let cch = if vertices <= SWEEP_CCH_MAX_VERTICES {
            let t = Instant::now();
            let topo = CchTopology::build(&city).expect("sweep city must repair");
            let topology_secs = t.elapsed().as_secs_f64();
            let profile = CongestionProfile::build(&city, CongestionConfig::default());
            let model = profile.model_at(&city, 8.0 * 3600.0);
            let scaled = model.scaled_weights(&city);
            let t = Instant::now();
            let one = topo.customize_with_threads(&scaled, 1);
            let customize_secs_seq = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let four = topo.customize_with_threads(&scaled, SWEEP_PAR_THREADS);
            let customize_secs_par = t.elapsed().as_secs_f64();
            for &(u, v) in pairs.iter().take(32) {
                let (a, b) = (one.distance(u, v), four.distance(u, v));
                assert!(
                    a.to_bits() == b.to_bits() || (a.is_infinite() && b.is_infinite()),
                    "e16 sweep: parallel customize diverged at side {side}: {u}->{v} {a} vs {b}"
                );
            }
            let stats = topo.separator_stats();
            Some(SweepCch {
                topology_secs,
                triangles: topo.num_triangles(),
                levels: topo.num_levels(),
                customize_secs_seq,
                customize_secs_par,
                separator_max: stats.max_separator,
                separator_total: stats.total_separator,
                boundary_vertices: stats.boundary_vertices,
            })
        } else {
            eprintln!(
                "[perf_report] e16 sweep: skipping CCH above {SWEEP_CCH_MAX_VERTICES} vertices"
            );
            None
        };
        eprintln!(
            "[perf_report] e16 sweep: side {side}: ch build seq {ch_build_secs_seq:.2}s / \
             par({SWEEP_PAR_THREADS}) {ch_build_secs_par:.2}s, query {query_us:.1}us{}",
            cch.as_ref().map_or(String::new(), |c| format!(
                ", customize seq {:.3}s / par {:.3}s",
                c.customize_secs_seq, c.customize_secs_par
            ))
        );
        rows.push(SweepRow {
            side,
            vertices,
            ch_build_secs_seq,
            ch_build_secs_par,
            ch_shortcuts: par.num_shortcuts(),
            query_us,
            cch,
        });
    }
    rows
}

fn main() {
    let mut args = std::env::args().skip(1);
    let vehicles: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(800);
    let probes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let sweep_max_vertices: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(210_000);

    let params = WorldParams {
        vehicles,
        warm_assignments: vehicles / 4,
        ..WorldParams::default()
    };

    eprintln!(
        "[perf_report] building baseline world (legacy oracle: global lock, allocating \
         Dijkstra, no ALT/batching; sequential verify) ..."
    );
    ptrider_core::set_parallel_mode(ParallelMode::Sequential);
    let baseline_config = EngineConfig::paper_defaults().with_num_landmarks(0);
    let mut baseline_world = build_world_legacy_oracle(params, baseline_config, probes);
    let baseline_e2 = measure_all_matchers(&baseline_world);
    let baseline_e9 = measure_updates(&mut baseline_world, 3);
    drop(baseline_world);

    eprintln!("[perf_report] building optimized ALT world (landmarks, parallel verify) ...");
    ptrider_core::set_parallel_mode(ParallelMode::Auto);
    let alt_config = EngineConfig::paper_defaults();
    let mut alt_world = build_world(params, alt_config, probes);
    let alt_e2 = measure_all_matchers(&alt_world);

    // Oracle micro on the match-world city (small: the backends are near
    // break-even here) and on a city-scale graph (25k+ vertices: where the
    // hierarchy's asymptotic advantage shows).
    eprintln!("[perf_report] oracle micro on the match-world city ...");
    let world_lm = ptrider_roadnet::LandmarkIndex::build_auto(alt_world.engine.network(), 8);
    let (micro_world, ch) = measure_oracle(
        alt_world.engine.network(),
        alt_world.engine.grid(),
        &world_lm,
        256,
    );
    eprintln!(
        "[perf_report] CH built in {:.2}s ({} shortcuts)",
        micro_world.ch_build_secs, micro_world.ch_shortcuts
    );
    eprintln!("[perf_report] oracle micro on the city-scale graph ...");
    let city_scale_side = 160usize;
    let big_city = std::sync::Arc::new(ptrider_datagen::synthetic_city(
        &ptrider_datagen::CityConfig {
            cols: city_scale_side,
            rows: city_scale_side,
            seed: params.seed,
            ..ptrider_datagen::CityConfig::default()
        },
    ));
    let big_grid = std::sync::Arc::new(ptrider_roadnet::GridIndex::build(
        &big_city,
        ptrider_core::GridConfig::with_dimensions(24, 24),
    ));
    let big_lm = ptrider_roadnet::LandmarkIndex::build_auto(&big_city, 8);
    let (micro_city, big_ch) = measure_oracle(&big_city, &big_grid, &big_lm, 256);

    eprintln!(
        "[perf_report] e13: traffic repair (customize vs rebuild vs ALT) on the city-scale \
         graph ..."
    );
    let e13 = measure_traffic(&big_city, &big_grid, &big_lm);
    eprintln!(
        "[perf_report] e13: customize {:.3}s vs full rebuild {:.3}s ({:.1}x), exact: {}",
        e13.ch_customize_secs,
        e13.ch_full_rebuild_secs,
        e13.ch_full_rebuild_secs / e13.ch_customize_secs.max(1e-12),
        e13.customized_matches_dijkstra
    );
    drop(big_ch);

    // Backend skyline cross-check on the warmed ALT world.
    let ch = std::sync::Arc::new(ch);
    let fresh_alt_oracle = DistanceOracle::new(
        alt_world.engine.oracle().network_arc(),
        alt_world.engine.oracle().grid_arc(),
    );
    let ch_oracle = DistanceOracle::with_contraction_hierarchy(
        alt_world.engine.oracle().network_arc(),
        alt_world.engine.oracle().grid_arc(),
        None,
        std::sync::Arc::clone(&ch),
    );
    let skylines_ok = skylines_match(&alt_world, &fresh_alt_oracle, &ch_oracle);
    eprintln!("[perf_report] ALT vs CH skylines match: {skylines_ok}");
    let alt_e9 = measure_updates(&mut alt_world, 3);
    drop(alt_world);

    eprintln!("[perf_report] building optimized CH world (hierarchy backend, parallel verify) ...");
    // Reuse the hierarchy the micro already built — the world's city is
    // generated from the same params, so the ranks/arcs line up exactly.
    let ch_config = EngineConfig::paper_defaults().with_distance_backend(DistanceBackend::Ch);
    let mut ch_world = build_world_with_oracle(params, ch_config, probes, |net, grid| {
        DistanceOracle::with_contraction_hierarchy(net, grid, None, ch)
    });
    assert_eq!(
        ch_world.engine.oracle().backend(),
        DistanceBackend::Ch,
        "CH world must actually run the CH backend"
    );
    let ch_e2 = measure_all_matchers(&ch_world);
    // Backend observability (the silent-fallback satellite): what is the
    // CH world actually running, and why, if it fell back.
    let ch_effective_backend = ch_world.engine.oracle().backend().to_string();
    let ch_backend_fallback = ch_world.engine.oracle().backend_fallback();
    let ch_e9 = measure_updates(&mut ch_world, 3);
    drop(ch_world);

    eprintln!("[perf_report] burst admission: sequential vs conflict-graph (pools 1/2/4) ...");
    // A larger city than the matcher world: burst partitioning only shows
    // once the (capped) pickup radius stops covering the whole map.
    let burst_params = WorldParams {
        city_side: 100,
        ..params
    };
    let burst_city = ptrider_datagen::synthetic_city(&ptrider_datagen::CityConfig {
        cols: burst_params.city_side,
        rows: burst_params.city_side,
        seed: burst_params.seed,
        ..ptrider_datagen::CityConfig::default()
    });
    let burst_shape = BurstConfig {
        num_bursts: 6,
        burst_size: 64,
        start_secs: 0.0,
        period_secs: 1.0,
    };
    let burst_trips = TripGenerator::new(
        &burst_city,
        TripConfig {
            seed: burst_params.seed ^ 0xe11,
            num_trips: 0,
            ..TripConfig::default()
        },
    )
    .generate_bursts(&burst_shape);
    let bursts: Vec<Vec<(VertexId, VertexId, u32)>> = burst_trips
        .chunks(burst_shape.burst_size)
        .map(|chunk| {
            chunk
                .iter()
                .map(|t| (t.origin, t.destination, t.riders))
                .collect()
        })
        .collect();
    let (seq_burst, seq_outcomes) =
        measure_burst_admission(burst_params, BatchAdmission::Sequential, 1, &bursts);
    let mut cg_bursts: Vec<(usize, BurstNumbers)> = Vec::new();
    let mut burst_outcomes_match = true;
    for pool_size in [1usize, 2, 4] {
        let (numbers, outcomes) = measure_burst_admission(
            burst_params,
            BatchAdmission::ConflictGraph,
            pool_size,
            &bursts,
        );
        burst_outcomes_match &= outcome_signature(&outcomes) == outcome_signature(&seq_outcomes);
        cg_bursts.push((pool_size, numbers));
    }
    eprintln!(
        "[perf_report] conflict-graph outcomes match sequential (all pool sizes): \
         {burst_outcomes_match}"
    );

    eprintln!("[perf_report] service-layer session throughput (facade vs 1/2/4 submitters) ...");
    let svc_facade = measure_service_throughput(params, 0);
    let svc_rows: Vec<(usize, ServiceNumbers)> = [1usize, 2, 4]
        .iter()
        .map(|&threads| (threads, measure_service_throughput(params, threads)))
        .collect();

    eprintln!(
        "[perf_report] e15: telemetry overhead (off vs counters vs spans vs full tracing) on \
         the e12 storm ..."
    );
    let e15 = measure_telemetry(params, 2);
    eprintln!(
        "[perf_report] e15: counters {:+.1}%, spans {:+.1}%, tracing {:+.1}% vs off; submit \
         p50 {:.1}us p99 {:.1}us",
        e15.counters_overhead_pct,
        e15.spans_overhead_pct,
        e15.trace_overhead_pct,
        e15.submit_p50_us,
        e15.submit_p99_us
    );

    eprintln!(
        "[perf_report] contention: lock-site waits under a wire storm at {:?} connections ...",
        CONTENTION_SWEEP
    );
    let contention = measure_contention(params);
    for level in &contention {
        for site in &level.sites {
            eprintln!(
                "[perf_report] contention @ {:>4} conns {:>12}: wait p50 {:.1}us p99 {:.1}us \
                 max {:.1}us ({} contended / {} acquisitions; {} sessions, {} errors)",
                level.conns,
                site.name,
                site.wait_p50_ns as f64 * 1e-3,
                site.wait_p99_ns as f64 * 1e-3,
                site.wait_max_ns as f64 * 1e-3,
                site.contended,
                site.acquisitions,
                level.completed,
                level.errors
            );
        }
    }

    eprintln!("[perf_report] e14: journal append overhead, snapshot and recovery replay ...");
    let e14 = measure_journal();
    eprintln!(
        "[perf_report] e14: append overhead {:+.1}%, snapshot {:.1}ms, recover {} ops in \
         {:.1}ms, bit-identical: {}",
        e14.append_overhead_pct,
        e14.snapshot_secs * 1e3,
        e14.replayed_ops,
        e14.recover_secs * 1e3,
        e14.recovered_bit_identical
    );

    eprintln!(
        "[perf_report] e16: preprocessing scaling sweep (cap {sweep_max_vertices} vertices) ..."
    );
    let sweep = measure_preprocess_sweep(sweep_max_vertices);

    let dual_base = dual(&baseline_e2);
    let dual_alt = dual(&alt_e2);
    let dual_ch = dual(&ch_e2);

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"world\": {{ \"city_side\": {}, \"vehicles\": {}, \"warm_assignments\": {}, \
         \"grid_side\": {}, \"probes\": {}, \"seed\": {} }},",
        params.city_side,
        params.vehicles,
        params.warm_assignments,
        params.grid_side,
        probes,
        params.seed
    );
    let preprocess_env = std::env::var("PTRIDER_PREPROCESS_THREADS").ok();
    let _ = writeln!(
        out,
        "  \"runtime\": {{ \"detected_cores\": {}, \"resolved_default_pool_size\": {}, \
         \"oracle_cache_shards\": {}, \"preprocess_threads\": {}, \
         \"preprocess_threads_env\": {}, \"single_cpu\": {} }},",
        ptrider_core::detected_parallelism(),
        ptrider_core::MatchRuntime::from_config(0).parallelism(),
        ptrider_roadnet::num_cache_shards(),
        ptrider_roadnet::preprocess_threads(),
        preprocess_env
            .as_deref()
            .map_or("null".to_string(), |v| format!(
                "\"{}\"",
                v.replace('"', "'")
            )),
        ptrider_core::detected_parallelism() == 1
    );
    let _ = writeln!(out, "  \"oracle_microbench_us_per_query\": {{");
    for (label, micro, comma) in [
        ("match_world_city", &micro_world, ","),
        ("city_scale", &micro_city, ""),
    ] {
        let _ = writeln!(out, "    \"{label}\": {{");
        let _ = writeln!(out, "      \"vertices\": {},", micro.vertices);
        let _ = writeln!(
            out,
            "      \"allocating_dijkstra\": {:.2},",
            micro.allocating_dijkstra_us
        );
        let _ = writeln!(
            out,
            "      \"scratch_dijkstra\": {:.2},",
            micro.scratch_dijkstra_us
        );
        let _ = writeln!(out, "      \"alt_astar\": {:.2},", micro.alt_astar_us);
        let _ = writeln!(out, "      \"ch_query\": {:.3},", micro.ch_query_us);
        let _ = writeln!(out, "      \"ch_build_secs\": {:.3},", micro.ch_build_secs);
        let _ = writeln!(out, "      \"ch_shortcuts\": {},", micro.ch_shortcuts);
        let _ = writeln!(
            out,
            "      \"speedup_allocating_vs_alt\": {:.2},",
            micro.allocating_dijkstra_us / micro.alt_astar_us.max(1e-9)
        );
        let _ = writeln!(
            out,
            "      \"speedup_alt_vs_ch\": {:.2}",
            micro.alt_astar_us / micro.ch_query_us.max(1e-9)
        );
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"backend_equivalence\": {{");
    let _ = writeln!(out, "    \"skylines_match_alt\": {skylines_ok},");
    let _ = writeln!(
        out,
        "    \"ch_effective_backend\": \"{ch_effective_backend}\","
    );
    match &ch_backend_fallback {
        Some(reason) => {
            let _ = writeln!(
                out,
                "    \"ch_backend_fallback\": \"{}\"",
                reason.replace('"', "'")
            );
        }
        None => {
            let _ = writeln!(out, "    \"ch_backend_fallback\": null");
        }
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"e2_matching_latency\": {{");
    json_matchers(&mut out, "baseline", &baseline_e2);
    json_matchers(&mut out, "optimized_alt", &alt_e2);
    json_matchers(&mut out, "optimized_ch", &ch_e2);
    let _ = writeln!(
        out,
        "    \"dual_side_speedup_alt\": {:.2},",
        dual_base.mean_us / dual_alt.mean_us.max(1e-9)
    );
    let _ = writeln!(
        out,
        "    \"dual_side_speedup_ch\": {:.2},",
        dual_base.mean_us / dual_ch.mean_us.max(1e-9)
    );
    let _ = writeln!(
        out,
        "    \"dual_side_verified_reduction\": {:.3}",
        if dual_base.verified_per_req > 0.0 {
            1.0 - dual_alt.verified_per_req / dual_base.verified_per_req
        } else {
            0.0
        }
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"e9_update_throughput\": {{");
    json_updates(&mut out, "baseline", &baseline_e9, ",");
    json_updates(&mut out, "optimized_alt", &alt_e9, ",");
    json_updates(&mut out, "optimized_ch", &ch_e9, ",");
    let _ = writeln!(
        out,
        "    \"location_update_speedup\": {:.2},",
        alt_e9.location_updates_per_sec / baseline_e9.location_updates_per_sec.max(1e-9)
    );
    let _ = writeln!(
        out,
        "    \"submit_choose_speedup\": {:.2}",
        alt_e9.submit_choose_per_sec / baseline_e9.submit_choose_per_sec.max(1e-9)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"e11_burst_admission\": {{");
    let _ = writeln!(
        out,
        "    \"bursts\": {}, \"burst_size\": {},",
        burst_shape.num_bursts, burst_shape.burst_size
    );
    json_burst(&mut out, "sequential", &seq_burst, ",");
    let mut best_cg = 0.0f64;
    for &(pool_size, ref numbers) in &cg_bursts {
        best_cg = best_cg.max(numbers.requests_per_sec);
        json_burst(
            &mut out,
            &format!("conflict_graph_pool{pool_size}"),
            numbers,
            ",",
        );
    }
    let _ = writeln!(
        out,
        "    \"outcomes_match_sequential\": {burst_outcomes_match},"
    );
    let _ = writeln!(
        out,
        "    \"best_speedup_vs_sequential\": {:.2}",
        best_cg / seq_burst.requests_per_sec.max(1e-9)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"e12_service\": {{");
    let _ = writeln!(
        out,
        "    \"sequential_facade_sessions_per_sec\": {:.0},",
        svc_facade.sessions_per_sec
    );
    let mut best_svc = 0.0f64;
    for &(threads, ref numbers) in &svc_rows {
        best_svc = best_svc.max(numbers.sessions_per_sec);
        let _ = writeln!(
            out,
            "    \"service_{threads}_submitters\": {{ \"sessions_per_sec\": {:.0}, \
             \"events_per_sec\": {:.0} }},",
            numbers.sessions_per_sec, numbers.events_per_sec
        );
    }
    let single = svc_rows
        .first()
        .map(|(_, n)| n.sessions_per_sec)
        .unwrap_or(0.0);
    let _ = writeln!(
        out,
        "    \"service_overhead_vs_facade_1_submitter\": {:.3},",
        single / svc_facade.sessions_per_sec.max(1e-9)
    );
    let _ = writeln!(
        out,
        "    \"best_concurrent_speedup_vs_1_submitter\": {:.2}",
        best_svc / single.max(1e-9)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"e13_traffic\": {{");
    let _ = writeln!(out, "    \"vertices\": {},", e13.vertices);
    let _ = writeln!(
        out,
        "    \"congested_arcs\": {}, \"max_factor\": {:.3},",
        e13.congested_arcs, e13.max_factor
    );
    let _ = writeln!(
        out,
        "    \"cch_topology_secs\": {:.3}, \"cch_arcs\": {}, \"cch_triangles\": {},",
        e13.cch_topology_secs, e13.cch_arcs, e13.cch_triangles
    );
    let _ = writeln!(
        out,
        "    \"ch_customize_secs\": {:.4},",
        e13.ch_customize_secs
    );
    let _ = writeln!(
        out,
        "    \"ch_full_rebuild_secs\": {:.4},",
        e13.ch_full_rebuild_secs
    );
    let _ = writeln!(
        out,
        "    \"customize_speedup_vs_rebuild\": {:.2},",
        e13.ch_full_rebuild_secs / e13.ch_customize_secs.max(1e-12)
    );
    let _ = writeln!(
        out,
        "    \"oracle_apply_traffic_secs\": {:.4},",
        e13.oracle_apply_traffic_secs
    );
    let _ = writeln!(
        out,
        "    \"alt_query_us_under_traffic\": {:.2},",
        e13.alt_query_us_under_traffic
    );
    let _ = writeln!(
        out,
        "    \"ch_query_us_customized\": {:.3},",
        e13.ch_query_us_customized
    );
    let _ = writeln!(
        out,
        "    \"customized_matches_dijkstra\": {}",
        e13.customized_matches_dijkstra
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"e14_journal\": {{");
    let _ = writeln!(
        out,
        "    \"unjournaled_sessions_per_sec\": {:.0},",
        e14.unjournaled_sessions_per_sec
    );
    let _ = writeln!(
        out,
        "    \"journaled_sessions_per_sec\": {:.0},",
        e14.journaled_sessions_per_sec
    );
    let _ = writeln!(
        out,
        "    \"fsync_every_append_sessions_per_sec\": {:.0},",
        e14.fsync_every_append_sessions_per_sec
    );
    let _ = writeln!(
        out,
        "    \"append_overhead_pct\": {:.2},",
        e14.append_overhead_pct
    );
    let _ = writeln!(out, "    \"snapshot_secs\": {:.4},", e14.snapshot_secs);
    let _ = writeln!(out, "    \"replayed_ops\": {},", e14.replayed_ops);
    let _ = writeln!(out, "    \"recover_secs\": {:.4},", e14.recover_secs);
    let _ = writeln!(
        out,
        "    \"recovered_bit_identical\": {}",
        e14.recovered_bit_identical
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"e15_telemetry\": {{");
    let _ = writeln!(
        out,
        "    \"off_sessions_per_sec\": {:.0},",
        e15.off_sessions_per_sec
    );
    let _ = writeln!(
        out,
        "    \"counters_sessions_per_sec\": {:.0},",
        e15.counters_sessions_per_sec
    );
    let _ = writeln!(
        out,
        "    \"spans_sessions_per_sec\": {:.0},",
        e15.spans_sessions_per_sec
    );
    let _ = writeln!(
        out,
        "    \"trace_sessions_per_sec\": {:.0},",
        e15.trace_sessions_per_sec
    );
    let _ = writeln!(
        out,
        "    \"counters_overhead_pct\": {:.2},",
        e15.counters_overhead_pct
    );
    let _ = writeln!(
        out,
        "    \"spans_overhead_pct\": {:.2},",
        e15.spans_overhead_pct
    );
    let _ = writeln!(
        out,
        "    \"trace_overhead_pct\": {:.2},",
        e15.trace_overhead_pct
    );
    let _ = writeln!(out, "    \"submit_p50_us\": {:.1},", e15.submit_p50_us);
    let _ = writeln!(out, "    \"submit_p99_us\": {:.1},", e15.submit_p99_us);
    let _ = writeln!(out, "    \"verify_p99_us\": {:.1},", e15.verify_p99_us);
    let _ = writeln!(out, "    \"lock_wait_p99_us\": {:.1}", e15.lock_wait_p99_us);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"contention\": {{");
    let _ = writeln!(out, "    \"admission_writer_site\": \"ledger\",");
    let _ = writeln!(out, "    \"levels\": [");
    for (i, level) in contention.iter().enumerate() {
        let comma = if i + 1 == contention.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "      {{ \"conns\": {}, \"sessions\": {}, \"errors\": {}, \"sites\": [",
            level.conns, level.completed, level.errors
        );
        for (j, site) in level.sites.iter().enumerate() {
            let site_comma = if j + 1 == level.sites.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "        {{ \"site\": \"{}\", \"acquisitions\": {}, \"contended\": {}, \
                 \"wait_p50_us\": {:.1}, \"wait_p99_us\": {:.1}, \"wait_max_us\": {:.1}, \
                 \"hold_p50_us\": {:.1}, \"hold_p99_us\": {:.1} }}{site_comma}",
                site.name,
                site.acquisitions,
                site.contended,
                site.wait_p50_ns as f64 * 1e-3,
                site.wait_p99_ns as f64 * 1e-3,
                site.wait_max_ns as f64 * 1e-3,
                site.hold_p50_ns as f64 * 1e-3,
                site.hold_p99_ns as f64 * 1e-3
            );
        }
        let _ = writeln!(out, "      ] }}{comma}");
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"e16_preprocess_sweep\": {{");
    let _ = writeln!(
        out,
        "    \"par_threads\": {SWEEP_PAR_THREADS}, \"cch_max_vertices\": \
         {SWEEP_CCH_MAX_VERTICES},"
    );
    // Honesty flag: on a 1-CPU container the \"parallel\" rows measure the
    // oversubscribed parallel *code path*, not a multi-core speedup.
    let _ = writeln!(
        out,
        "    \"single_cpu\": {},",
        ptrider_core::detected_parallelism() == 1
    );
    let _ = writeln!(out, "    \"rows\": [");
    for (i, row) in sweep.iter().enumerate() {
        let comma = if i + 1 == sweep.len() { "" } else { "," };
        let _ = write!(
            out,
            "      {{ \"side\": {}, \"vertices\": {}, \"ch_build_secs_seq\": {:.3}, \
             \"ch_build_secs_par\": {:.3}, \"ch_shortcuts\": {}, \"query_us\": {:.2}, ",
            row.side,
            row.vertices,
            row.ch_build_secs_seq,
            row.ch_build_secs_par,
            row.ch_shortcuts,
            row.query_us
        );
        match &row.cch {
            Some(c) => {
                let _ = writeln!(
                    out,
                    "\"cch\": {{ \"topology_secs\": {:.3}, \"triangles\": {}, \"levels\": {}, \
                     \"customize_secs_seq\": {:.4}, \"customize_secs_par\": {:.4}, \
                     \"separator_max\": {}, \"separator_total\": {}, \
                     \"boundary_vertices\": {} }} }}{comma}",
                    c.topology_secs,
                    c.triangles,
                    c.levels,
                    c.customize_secs_seq,
                    c.customize_secs_par,
                    c.separator_max,
                    c.separator_total,
                    c.boundary_vertices
                );
            }
            None => {
                let _ = writeln!(out, "\"cch\": null }}{comma}");
            }
        }
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");

    std::fs::write("BENCH_e9.json", &out).expect("write BENCH_e9.json");
    println!("{out}");
    eprintln!("[perf_report] wrote BENCH_e9.json");
}
