//! Machine-readable performance report: writes `BENCH_e9.json` with the
//! E2-style matching latency, the E9-style update throughput and an
//! oracle-level microbenchmark, each measured twice:
//!
//! * **baseline** — landmark acceleration off, sequential verification
//!   (the closest runnable stand-in for the pre-refactor oracle, which
//!   additionally allocated per query and serialised on one mutex; the
//!   microbenchmark isolates that part);
//! * **optimized** — ALT landmarks on, parallel verification in `Auto`.
//!
//! Run with `cargo run --release -p ptrider-bench --bin perf_report`
//! (optionally `-- <vehicles> <probes>`). The JSON is hand-rendered — the
//! build environment has no serde_json — and is meant to be committed as
//! `BENCH_e9.json` so the perf trajectory is tracked across PRs.

use ptrider_bench::{build_world, build_world_legacy_oracle, match_probe, BenchWorld, WorldParams};
use ptrider_core::{EngineConfig, MatcherKind, ParallelMode, PtRider};
use ptrider_datagen::TimedTrip;
use ptrider_roadnet::{astar, dijkstra, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Clone, Copy, Default)]
struct MatcherNumbers {
    mean_us: f64,
    verified_per_req: f64,
    pruned_per_req: f64,
    exact_per_req: f64,
    options_per_req: f64,
}

fn measure_matcher(engine: &PtRider, kind: MatcherKind, probes: &[TimedTrip]) -> MatcherNumbers {
    // Cold-cache measurement: a warmed cache would answer every exact query
    // from the shards and hide the exact-backend and bound-tightness
    // differences this report exists to track. The cache still warms up
    // *within* the pass, as it would in production.
    engine.oracle().clear();
    let mut verified = 0usize;
    let mut pruned = 0usize;
    let mut exact = 0u64;
    let mut options = 0usize;
    let start = Instant::now();
    for (i, trip) in probes.iter().enumerate() {
        let r = match_probe(engine, kind, trip, i as u64);
        verified += r.stats.vehicles_verified;
        pruned += r.stats.vehicles_pruned;
        exact += r.stats.exact_distance_computations;
        options += r.options.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let n = probes.len().max(1) as f64;
    MatcherNumbers {
        mean_us: elapsed * 1e6 / n,
        verified_per_req: verified as f64 / n,
        pruned_per_req: pruned as f64 / n,
        exact_per_req: exact as f64 / n,
        options_per_req: options as f64 / n,
    }
}

#[derive(Clone, Copy, Default)]
struct UpdateNumbers {
    location_updates_per_sec: f64,
    submit_choose_per_sec: f64,
}

fn measure_updates(world: &mut BenchWorld, rounds: usize) -> UpdateNumbers {
    let engine = &mut world.engine;
    let mut rng = ChaCha8Rng::seed_from_u64(0x0e9);
    let ids: Vec<_> = engine.vehicles().map(|v| v.id()).collect();

    let start = Instant::now();
    let mut updates = 0u64;
    for round in 0..rounds {
        for &id in &ids {
            let loc = engine.vehicle(id).unwrap().location();
            let neighbours: Vec<(VertexId, f64)> = engine.network().neighbors(loc).collect();
            if neighbours.is_empty() {
                continue;
            }
            let (next, dist) = neighbours[rng.gen_range(0..neighbours.len())];
            engine.location_update(id, next, dist).unwrap();
            updates += 1;
        }
        let _ = round;
    }
    let location_updates_per_sec = updates as f64 / start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut cycles = 0u64;
    for (k, trip) in world
        .probes
        .iter()
        .cycle()
        .take(world.probes.len() * 2)
        .enumerate()
    {
        let (id, options) = engine.submit(trip.origin, trip.destination, trip.riders, k as f64);
        if let Some(option) = options.first() {
            if engine.choose(id, option, k as f64).is_err() {
                let _ = engine.decline(id);
            }
        } else {
            let _ = engine.decline(id);
        }
        cycles += 1;
    }
    let submit_choose_per_sec = cycles as f64 / start.elapsed().as_secs_f64();

    UpdateNumbers {
        location_updates_per_sec,
        submit_choose_per_sec,
    }
}

struct OracleMicro {
    allocating_dijkstra_us: f64,
    scratch_dijkstra_us: f64,
    alt_astar_us: f64,
}

fn measure_oracle(engine: &PtRider, samples: usize) -> OracleMicro {
    let net = engine.network();
    let oracle = engine.oracle();
    let n = net.num_vertices() as u32;
    let mut rng = ChaCha8Rng::seed_from_u64(0xfeed);
    let pairs: Vec<(VertexId, VertexId)> = (0..samples)
        .map(|_| (VertexId(rng.gen_range(0..n)), VertexId(rng.gen_range(0..n))))
        .collect();

    let time = |f: &mut dyn FnMut(VertexId, VertexId)| {
        let start = Instant::now();
        for &(u, v) in &pairs {
            f(u, v);
        }
        start.elapsed().as_secs_f64() * 1e6 / pairs.len().max(1) as f64
    };

    let allocating = time(&mut |u, v| {
        let _ = dijkstra::distance_allocating(net, u, v);
    });
    let scratch = time(&mut |u, v| {
        let _ = dijkstra::distance(net, u, v);
    });
    let alt = time(&mut |u, v| {
        let _ = astar::distance_with_landmarks(net, u, v, Some(engine.grid()), oracle.landmarks());
    });

    OracleMicro {
        allocating_dijkstra_us: allocating,
        scratch_dijkstra_us: scratch,
        alt_astar_us: alt,
    }
}

fn json_matchers(out: &mut String, label: &str, rows: &[(MatcherKind, MatcherNumbers)]) {
    let _ = writeln!(out, "    \"{label}\": {{");
    for (i, (kind, m)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "      \"{kind}\": {{ \"mean_us\": {:.2}, \"vehicles_verified_per_req\": {:.2}, \
             \"vehicles_pruned_per_req\": {:.2}, \"exact_distances_per_req\": {:.2}, \
             \"options_per_req\": {:.2} }}{comma}",
            m.mean_us, m.verified_per_req, m.pruned_per_req, m.exact_per_req, m.options_per_req
        );
    }
    let _ = writeln!(out, "    }},");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let vehicles: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(800);
    let probes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);

    let params = WorldParams {
        vehicles,
        warm_assignments: vehicles / 4,
        ..WorldParams::default()
    };

    eprintln!(
        "[perf_report] building baseline world (legacy oracle: global lock, allocating \
         Dijkstra, no ALT/batching; sequential verify) ..."
    );
    ptrider_core::set_parallel_mode(ParallelMode::Sequential);
    let baseline_config = EngineConfig::paper_defaults().with_num_landmarks(0);
    let mut baseline_world = build_world_legacy_oracle(params, baseline_config, probes);
    let baseline_e2: Vec<(MatcherKind, MatcherNumbers)> = MatcherKind::all()
        .iter()
        .map(|&k| {
            (
                k,
                measure_matcher(&baseline_world.engine, k, &baseline_world.probes),
            )
        })
        .collect();
    let baseline_e9 = measure_updates(&mut baseline_world, 3);
    drop(baseline_world);

    eprintln!("[perf_report] building optimized world (ALT landmarks, parallel verify) ...");
    ptrider_core::set_parallel_mode(ParallelMode::Auto);
    let optimized_config = EngineConfig::paper_defaults();
    let mut optimized_world = build_world(params, optimized_config, probes);
    let optimized_e2: Vec<(MatcherKind, MatcherNumbers)> = MatcherKind::all()
        .iter()
        .map(|&k| {
            (
                k,
                measure_matcher(&optimized_world.engine, k, &optimized_world.probes),
            )
        })
        .collect();
    let optimized_e9 = measure_updates(&mut optimized_world, 3);
    let micro = measure_oracle(&optimized_world.engine, 256);

    let dual_base = baseline_e2
        .iter()
        .find(|(k, _)| *k == MatcherKind::DualSide)
        .unwrap()
        .1;
    let dual_opt = optimized_e2
        .iter()
        .find(|(k, _)| *k == MatcherKind::DualSide)
        .unwrap()
        .1;

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"world\": {{ \"city_side\": {}, \"vehicles\": {}, \"warm_assignments\": {}, \
         \"grid_side\": {}, \"probes\": {}, \"seed\": {} }},",
        params.city_side,
        params.vehicles,
        params.warm_assignments,
        params.grid_side,
        probes,
        params.seed
    );
    let _ = writeln!(out, "  \"oracle_microbench_us_per_query\": {{");
    let _ = writeln!(
        out,
        "    \"allocating_dijkstra\": {:.2},",
        micro.allocating_dijkstra_us
    );
    let _ = writeln!(
        out,
        "    \"scratch_dijkstra\": {:.2},",
        micro.scratch_dijkstra_us
    );
    let _ = writeln!(out, "    \"alt_astar\": {:.2},", micro.alt_astar_us);
    let _ = writeln!(
        out,
        "    \"speedup_allocating_vs_alt\": {:.2}",
        micro.allocating_dijkstra_us / micro.alt_astar_us.max(1e-9)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"e2_matching_latency\": {{");
    json_matchers(&mut out, "baseline", &baseline_e2);
    json_matchers(&mut out, "optimized", &optimized_e2);
    let _ = writeln!(
        out,
        "    \"dual_side_speedup\": {:.2},",
        dual_base.mean_us / dual_opt.mean_us.max(1e-9)
    );
    let _ = writeln!(
        out,
        "    \"dual_side_verified_reduction\": {:.3}",
        if dual_base.verified_per_req > 0.0 {
            1.0 - dual_opt.verified_per_req / dual_base.verified_per_req
        } else {
            0.0
        }
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"e9_update_throughput\": {{");
    let _ = writeln!(
        out,
        "    \"baseline\": {{ \"location_updates_per_sec\": {:.0}, \"submit_choose_per_sec\": {:.0} }},",
        baseline_e9.location_updates_per_sec, baseline_e9.submit_choose_per_sec
    );
    let _ = writeln!(
        out,
        "    \"optimized\": {{ \"location_updates_per_sec\": {:.0}, \"submit_choose_per_sec\": {:.0} }},",
        optimized_e9.location_updates_per_sec, optimized_e9.submit_choose_per_sec
    );
    let _ = writeln!(
        out,
        "    \"location_update_speedup\": {:.2},",
        optimized_e9.location_updates_per_sec / baseline_e9.location_updates_per_sec.max(1e-9)
    );
    let _ = writeln!(
        out,
        "    \"submit_choose_speedup\": {:.2}",
        optimized_e9.submit_choose_per_sec / baseline_e9.submit_choose_per_sec.max(1e-9)
    );
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");

    std::fs::write("BENCH_e9.json", &out).expect("write BENCH_e9.json");
    println!("{out}");
    eprintln!("[perf_report] wrote BENCH_e9.json");
}
