//! CI gate: telemetry must stay (close to) free when enabled.
//!
//! Runs the E12-style session storm three times per round on identically
//! seeded worlds:
//!
//! * `PTRIDER_TELEMETRY=off` — the baseline;
//! * `spans` with `PTRIDER_TRACE_CAPACITY=0` — stage histograms only
//!   (request-scoped tracing disabled), held to the histogram budget
//!   (default 5%, override with `PTRIDER_TELEMETRY_GATE_PCT`);
//! * `spans` with the default trace capacity — full request-scoped
//!   tracing (span trees, exemplars, lock profiles), held to the tracing
//!   budget (7%, or the histogram budget when that is set higher).
//!
//! Keeps the best round per level to damp scheduler noise and fails
//! (exit code 1) when either instrumented build loses more than its
//! budget.
//!
//! Run with `cargo run --release -p ptrider-bench --bin telemetry_gate`.
//! The interleaved A/B/C works in one process because `TelemetryConfig::
//! from_env` re-reads the environment at every engine construction.

use ptrider_bench::{build_world, WorldParams};
use ptrider_core::{Decision, EngineConfig, MatcherKind, RideService, ServiceConfig, VertexId};
use ptrider_datagen::{TripConfig, TripGenerator};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

const SUBMITTERS: usize = 2;
const ROUNDS_PER_RUN: usize = 3;
const AB_ROUNDS: usize = 3;

/// One session storm at the telemetry level currently in the environment;
/// returns declined-sessions per second.
fn storm(params: WorldParams) -> f64 {
    let mut world = build_world(params, EngineConfig::paper_defaults(), 0);
    world.engine.set_matcher(MatcherKind::DualSide);
    let probes: Vec<(VertexId, VertexId, u32)> = TripGenerator::new(
        world.engine.network(),
        TripConfig {
            num_trips: 128,
            seed: params.seed ^ 0xe15,
            ..TripConfig::default()
        },
    )
    .generate()
    .iter()
    .map(|t| (t.origin, t.destination, t.riders))
    .filter(|(o, d, _)| o != d)
    .collect();

    let service = RideService::from_engine(world.engine)
        .with_service_config(ServiceConfig::default().with_offer_ttl_secs(1e12));
    let served = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let service = &service;
            let probes = &probes;
            let served = &served;
            scope.spawn(move || {
                for _ in 0..ROUNDS_PER_RUN {
                    for (i, &(o, d, riders)) in probes.iter().enumerate() {
                        if i % SUBMITTERS != t {
                            continue;
                        }
                        let offer = service
                            .submit(o, d, riders, 0.0)
                            .expect("probe requests are valid");
                        let _ = service.respond(offer.session, Decision::Decline, 0.0);
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    served.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let budget_pct: f64 = std::env::var("PTRIDER_TELEMETRY_GATE_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    // Smaller world than perf_report so the gate stays CI-friendly.
    let params = WorldParams {
        city_side: 30,
        vehicles: 400,
        warm_assignments: 100,
        grid_side: 10,
        ..WorldParams::default()
    };

    let trace_budget_pct = budget_pct.max(7.0);
    // (label, PTRIDER_TELEMETRY, PTRIDER_TRACE_CAPACITY, budget vs off).
    let legs: [(&str, &str, &str, Option<f64>); 3] = [
        ("off", "off", "0", None),
        ("spans", "spans", "0", Some(budget_pct)),
        ("trace", "spans", "", Some(trace_budget_pct)),
    ];
    let mut best = [0.0f64; 3];
    eprintln!(
        "telemetry_gate: {AB_ROUNDS} interleaved rounds, {} vehicles, budgets {budget_pct:.1}% (spans) / {trace_budget_pct:.1}% (trace)",
        params.vehicles
    );
    for round in 0..AB_ROUNDS {
        for (i, (label, level, capacity, _)) in legs.iter().enumerate() {
            std::env::set_var("PTRIDER_TELEMETRY", level);
            if capacity.is_empty() {
                std::env::remove_var("PTRIDER_TRACE_CAPACITY");
            } else {
                std::env::set_var("PTRIDER_TRACE_CAPACITY", capacity);
            }
            let rate = storm(params);
            if rate > best[i] {
                best[i] = rate;
            }
            eprintln!("  round {round} {label:>5}: {rate:>10.0} sessions/s");
        }
    }
    std::env::remove_var("PTRIDER_TELEMETRY");
    std::env::remove_var("PTRIDER_TRACE_CAPACITY");

    let mut failed = false;
    println!("off   : {:>10.0} sessions/s (best of {AB_ROUNDS})", best[0]);
    for (i, (label, _, _, budget)) in legs.iter().enumerate().skip(1) {
        let overhead_pct = (1.0 - best[i] / best[0].max(1e-9)) * 100.0;
        let budget = budget.expect("instrumented legs carry a budget");
        println!(
            "{label:<6}: {:>10.0} sessions/s — overhead {overhead_pct:.2}% (budget {budget:.1}%)",
            best[i]
        );
        if overhead_pct > budget {
            eprintln!("FAIL: telemetry {label} overhead {overhead_pct:.2}% exceeds {budget:.1}%");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS");
}
