//! CI gate: telemetry must stay (close to) free when enabled.
//!
//! Runs the E12-style session storm twice per round — once with
//! `PTRIDER_TELEMETRY=off` and once with `PTRIDER_TELEMETRY=spans` — on
//! identically seeded worlds, keeps the best round per level to damp
//! scheduler noise, and fails (exit code 1) when the spans build loses
//! more than the budget (default 5%, override with
//! `PTRIDER_TELEMETRY_GATE_PCT`).
//!
//! Run with `cargo run --release -p ptrider-bench --bin telemetry_gate`.
//! The interleaved A/B works in one process because `TelemetryConfig::
//! from_env` re-reads the environment at every engine construction.

use ptrider_bench::{build_world, WorldParams};
use ptrider_core::{Decision, EngineConfig, MatcherKind, RideService, ServiceConfig, VertexId};
use ptrider_datagen::{TripConfig, TripGenerator};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

const SUBMITTERS: usize = 2;
const ROUNDS_PER_RUN: usize = 3;
const AB_ROUNDS: usize = 3;

/// One session storm at the telemetry level currently in the environment;
/// returns declined-sessions per second.
fn storm(params: WorldParams) -> f64 {
    let mut world = build_world(params, EngineConfig::paper_defaults(), 0);
    world.engine.set_matcher(MatcherKind::DualSide);
    let probes: Vec<(VertexId, VertexId, u32)> = TripGenerator::new(
        world.engine.network(),
        TripConfig {
            num_trips: 128,
            seed: params.seed ^ 0xe15,
            ..TripConfig::default()
        },
    )
    .generate()
    .iter()
    .map(|t| (t.origin, t.destination, t.riders))
    .filter(|(o, d, _)| o != d)
    .collect();

    let service = RideService::from_engine(world.engine)
        .with_service_config(ServiceConfig::default().with_offer_ttl_secs(1e12));
    let served = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let service = &service;
            let probes = &probes;
            let served = &served;
            scope.spawn(move || {
                for _ in 0..ROUNDS_PER_RUN {
                    for (i, &(o, d, riders)) in probes.iter().enumerate() {
                        if i % SUBMITTERS != t {
                            continue;
                        }
                        let offer = service
                            .submit(o, d, riders, 0.0)
                            .expect("probe requests are valid");
                        let _ = service.respond(offer.session, Decision::Decline, 0.0);
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    served.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let budget_pct: f64 = std::env::var("PTRIDER_TELEMETRY_GATE_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    // Smaller world than perf_report so the gate stays CI-friendly.
    let params = WorldParams {
        city_side: 30,
        vehicles: 400,
        warm_assignments: 100,
        grid_side: 10,
        ..WorldParams::default()
    };

    let levels = ["off", "spans"];
    let mut best = [0.0f64; 2];
    eprintln!(
        "telemetry_gate: {AB_ROUNDS} interleaved rounds, {} vehicles, budget {budget_pct:.1}%",
        params.vehicles
    );
    for round in 0..AB_ROUNDS {
        for (i, level) in levels.iter().enumerate() {
            std::env::set_var("PTRIDER_TELEMETRY", level);
            let rate = storm(params);
            if rate > best[i] {
                best[i] = rate;
            }
            eprintln!("  round {round} {level:>5}: {rate:>10.0} sessions/s");
        }
    }
    std::env::remove_var("PTRIDER_TELEMETRY");

    let overhead_pct = (1.0 - best[1] / best[0].max(1e-9)) * 100.0;
    println!("off   : {:>10.0} sessions/s (best of {AB_ROUNDS})", best[0]);
    println!("spans : {:>10.0} sessions/s (best of {AB_ROUNDS})", best[1]);
    println!("spans overhead: {overhead_pct:.2}% (budget {budget_pct:.1}%)");
    if overhead_pct > budget_pct {
        eprintln!("FAIL: telemetry spans overhead {overhead_pct:.2}% exceeds {budget_pct:.1}%");
        std::process::exit(1);
    }
    println!("PASS");
}
