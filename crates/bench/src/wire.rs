//! A minimal blocking HTTP/1.1 client for the wire gates and the E17 load
//! harness.
//!
//! The server under test is the zero-dependency front door in
//! `ptrider-server`; this client mirrors it on the other side of the
//! socket: `Content-Length`-framed requests over a keep-alive connection,
//! plus a tiny SSE frame reader. Everything returns `io::Result` so the
//! load harness can treat a shed (503 + close) or reaped connection as
//! data instead of a panic.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Clone, Debug)]
pub struct WireResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body, `Content-Length` framed.
    pub body: String,
}

impl WireResponse {
    /// Looks a header up case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Extracts `"key":<integer>` from a flat JSON body.
pub fn json_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// A keep-alive client connection.
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connects with a read timeout so a wedged server shows up as an
    /// error, never a hang.
    pub fn connect(addr: SocketAddr, read_timeout: Duration) -> io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        Ok(WireClient { stream })
    }

    /// Sends one request and reads one response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<WireResponse> {
        self.request_with_headers(method, path, body, &[])
    }

    /// [`WireClient::request`] with extra request headers — the tracing
    /// gate sends `traceparent` / `x-request-id` through this.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> io::Result<WireResponse> {
        let body = body.unwrap_or("");
        let mut raw = format!(
            "{method} {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        raw.push_str("\r\n");
        raw.push_str(body);
        self.stream.write_all(raw.as_bytes())?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<WireResponse> {
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            match self.stream.read(&mut byte)? {
                1 => head.push(byte[0]),
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ))
                }
            }
        }
        let head = String::from_utf8_lossy(&head).into_owned();
        let mut lines = head.split("\r\n");
        let status = lines
            .next()
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let headers: Vec<(String, String)> = lines
            .filter(|l| !l.is_empty())
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_lowercase(), v.trim().to_string()))
            .collect();
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        self.stream.read_exact(&mut body)?;
        Ok(WireResponse {
            status,
            headers,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }
}

/// One parsed SSE frame.
#[derive(Clone, Debug)]
pub struct SseFrame {
    /// The `event:` name.
    pub event: String,
    /// The `data:` payload (one line of JSON).
    pub data: String,
}

/// Opens `GET /events{query}` and consumes the response head; the returned
/// reader yields raw SSE lines for [`read_sse_frames`].
pub fn open_sse(
    addr: SocketAddr,
    query: &str,
    read_timeout: Duration,
) -> io::Result<BufReader<TcpStream>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    let raw = format!("GET /events{query} HTTP/1.1\r\nhost: bench\r\n\r\n");
    (&stream).write_all(raw.as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream closed before the head completed",
            ));
        }
        if line.starts_with("HTTP/1.1") && !line.contains("200") {
            return Err(io::Error::other(format!("SSE refused: {}", line.trim())));
        }
        if line == "\r\n" {
            return Ok(reader);
        }
    }
}

/// Reads frames until `stop` says enough or the stream ends (EOF, server
/// close, or read timeout all end the stream — never a hang).
pub fn read_sse_frames(
    reader: &mut BufReader<TcpStream>,
    mut stop: impl FnMut(&[SseFrame]) -> bool,
) -> Vec<SseFrame> {
    let mut frames = Vec::new();
    let mut event = String::new();
    let mut data = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return frames,
            Ok(_) => {}
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if let Some(rest) = trimmed.strip_prefix("event: ") {
            event = rest.to_string();
        } else if let Some(rest) = trimmed.strip_prefix("data: ") {
            data = rest.to_string();
        } else if trimmed.is_empty() && !event.is_empty() {
            frames.push(SseFrame {
                event: std::mem::take(&mut event),
                data: std::mem::take(&mut data),
            });
            if stop(&frames) {
                return frames;
            }
        }
    }
}
