//! E9 — index update throughput (Fig. 2's location / pickup / drop-off
//! updates under a "high simulated update workload").
//!
//! Measures (a) location updates of empty vehicles (cheap: re-register in
//! one cell), (b) location updates of non-empty vehicles (kinetic-tree
//! recompute plus schedule-cell re-registration), and (c) the full
//! assignment cycle (submit + choose) — each under both exact distance
//! backends (`alt` and `ch`), since non-empty updates and assignments are
//! dominated by the exact distances behind kinetic-tree re-annotation.

use criterion::{criterion_group, criterion_main, Criterion};
use ptrider_bench::{build_world, WorldParams};
use ptrider_core::{DistanceBackend, EngineConfig, MatcherKind, PtRider};
use ptrider_roadnet::VertexId;
use ptrider_vehicles::VehicleId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn neighbour_of(engine: &PtRider, v: VertexId, rng: &mut ChaCha8Rng) -> (VertexId, f64) {
    let neighbours: Vec<(VertexId, f64)> = engine.network().neighbors(v).collect();
    neighbours[rng.gen_range(0..neighbours.len())]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_update_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for backend in [DistanceBackend::Alt, DistanceBackend::Ch] {
        let world = build_world(
            WorldParams {
                vehicles: 800,
                warm_assignments: 300,
                ..WorldParams::default()
            },
            EngineConfig::paper_defaults().with_distance_backend(backend),
            64,
        );
        let mut engine = world.engine;
        engine.set_matcher(MatcherKind::DualSide);
        let mut rng = ChaCha8Rng::seed_from_u64(99);

        let empty_ids: Vec<VehicleId> = engine
            .vehicles()
            .filter(|v| v.is_empty())
            .map(|v| v.id())
            .collect();
        let busy_ids: Vec<VehicleId> = engine
            .vehicles()
            .filter(|v| !v.is_empty())
            .map(|v| v.id())
            .collect();
        println!(
            "[E9] backend={backend} fleet: {} empty vehicles, {} non-empty vehicles",
            empty_ids.len(),
            busy_ids.len()
        );

        let mut i = 0usize;
        group.bench_function(format!("{backend}/location_update_empty"), |b| {
            b.iter(|| {
                let id = empty_ids[i % empty_ids.len()];
                i += 1;
                let loc = engine.vehicle(id).unwrap().location();
                let (next, dist) = neighbour_of(&engine, loc, &mut rng);
                engine.location_update(id, next, dist).unwrap();
            })
        });

        if !busy_ids.is_empty() {
            let mut j = 0usize;
            group.bench_function(format!("{backend}/location_update_non_empty"), |b| {
                b.iter(|| {
                    let id = busy_ids[j % busy_ids.len()];
                    j += 1;
                    let loc = engine.vehicle(id).unwrap().location();
                    let (next, dist) = neighbour_of(&engine, loc, &mut rng);
                    engine.location_update(id, next, dist).unwrap();
                })
            });
        }

        let mut k = 0usize;
        group.bench_function(format!("{backend}/submit_choose_cycle"), |b| {
            b.iter(|| {
                let trip = &world.probes[k % world.probes.len()];
                k += 1;
                let (id, options) =
                    engine.submit(trip.origin, trip.destination, trip.riders, k as f64);
                if let Some(option) = options.first() {
                    // Choose and immediately complete nothing: the assignment
                    // itself is the measured cost; declining keeps state bounded.
                    if engine.choose(id, option, k as f64).is_err() {
                        let _ = engine.decline(id);
                    }
                } else {
                    let _ = engine.decline(id);
                }
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
