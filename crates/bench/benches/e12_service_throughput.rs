//! E12 — service-layer session throughput.
//!
//! Drives the `RideService` front door the way a gateway would: several
//! submitter threads share one service (`&self`), each opening sessions
//! (`submit` — read path, parallel under the world read lock) and
//! resolving them (`respond(Decline)` — session table only, leaving the
//! world untouched so iterations are comparable). An event subscriber
//! drains the log concurrently, so the numbers include observability
//! traffic.
//!
//! On a single-core container the submitter counts collapse to the same
//! wall-clock; the interesting output there is that the service facade's
//! locking adds only small overhead over the raw sequential engine. The
//! multi-core scaling row is tracked by `perf_report` (`BENCH_e9.json`,
//! `e12_service` section).

use criterion::{criterion_group, criterion_main, Criterion};
use ptrider_bench::{build_world, WorldParams};
use ptrider_core::{Decision, EngineConfig, MatcherKind, RideService, ServiceConfig};
use ptrider_datagen::{TripConfig, TripGenerator};
use ptrider_roadnet::VertexId;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_service_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let params = WorldParams {
        vehicles: 600,
        warm_assignments: 200,
        ..WorldParams::default()
    };
    let config = EngineConfig::paper_defaults();
    let world = build_world(params, config, 0);
    let mut engine = world.engine;
    engine.set_matcher(MatcherKind::DualSide);
    let service = RideService::from_engine(engine)
        .with_service_config(ServiceConfig::default().with_offer_ttl_secs(1e12));

    let probes: Vec<(VertexId, VertexId, u32)> = TripGenerator::new(
        service.network(),
        TripConfig {
            num_trips: 128,
            seed: params.seed ^ 0xe12,
            ..TripConfig::default()
        },
    )
    .generate()
    .iter()
    .map(|t| (t.origin, t.destination, t.riders))
    .filter(|(o, d, _)| o != d)
    .collect();

    for submitters in [1usize, 2, 4] {
        group.bench_function(format!("submit_decline/{submitters}_threads"), |b| {
            b.iter(|| {
                let served = std::sync::atomic::AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for t in 0..submitters {
                        let service = &service;
                        let probes = &probes;
                        let served = &served;
                        scope.spawn(move || {
                            for (i, &(o, d, riders)) in probes.iter().enumerate() {
                                if i % submitters != t {
                                    continue;
                                }
                                let offer = service
                                    .submit(o, d, riders, 0.0)
                                    .expect("probe requests are valid");
                                let _ = service.respond(offer.session, Decision::Decline, 0.0);
                                served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        });
                    }
                });
                criterion::black_box(served.load(std::sync::atomic::Ordering::Relaxed))
            })
        });
        // Keep the session table bounded across iterations.
        service.prune_resolved();
    }

    // Event-log drain throughput: how fast an observer can pull the
    // transition trail the sessions above produced.
    group.bench_function("event_drain", |b| {
        b.iter(|| {
            let mut cursor = service.subscribe();
            criterion::black_box(service.poll_events(&mut cursor).len())
        })
    });

    println!(
        "[E12] sessions={} events_published={} runtime_parallelism={}",
        service.num_sessions(),
        service.events_published(),
        service.runtime().parallelism()
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
